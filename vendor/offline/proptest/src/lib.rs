//! Offline mini-proptest: a *functional* subset of the proptest 1.x API.
//!
//! This container builds with no network access, so the real crate cannot be
//! fetched. Unlike a typecheck-only stub, this implementation actually runs
//! every property-test body: `proptest!` expands to a `#[test]` fn that
//! samples each strategy with a deterministic per-test RNG and executes the
//! body `ProptestConfig::cases` times, reporting the failing inputs before
//! propagating the panic. There is no shrinking — a failing case is reported
//! as drawn.
//!
//! Supported surface (what this workspace uses):
//! - `proptest! { #![proptest_config(..)]? #[test] fn name(id in strategy, ..) { .. } .. }`
//!   (arguments must be plain identifiers, not destructuring patterns)
//! - integer `Range`/`RangeInclusive` strategies, `any::<bool|ints>()`
//! - `prop::collection::vec(strategy, len | range)`
//! - tuples of strategies up to arity 6, `Just`, `Strategy::prop_map`,
//!   `Strategy::prop_perturb`
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` (panic on failure,
//!   like the real macros under a test runner)

pub mod test_runner {
    /// Deterministic splitmix64 RNG. Seeded per test from the test's full
    /// module path so failures reproduce exactly across runs and machines.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Seed from a test name (fnv1a-64 of the path).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform value in `[0, n)`. `n == 0` returns 0.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// An independent RNG stream (handed to `prop_perturb` closures).
        pub fn fork(&mut self) -> TestRng {
            TestRng::from_seed(self.next_u64())
        }
    }

    /// Subset of proptest's `Config`: only `cases` matters here.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values. `Debug` on the value lets the runner print
    /// the inputs of a failing case.
    pub trait Strategy {
        type Value: Debug;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_perturb<O: Debug, F: Fn(Self::Value, TestRng) -> O>(self, f: F) -> Perturb<Self, F>
        where
            Self: Sized,
        {
            Perturb { inner: self, f }
        }
    }

    /// Always the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct Perturb<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value, TestRng) -> O> Strategy for Perturb<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            let v = self.inner.sample(rng);
            let fork = rng.fork();
            (self.f)(v, fork)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => { $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    // span == 0 means the full u64 domain: take any value.
                    if span == 0 {
                        rng.next_u64() as $t
                    } else {
                        (lo + rng.below(span) as i128) as $t
                    }
                }
            }
        )* };
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:ident . $i:tt),+))*) => { $(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )* };
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized + Debug {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => { $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )* };
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length domain for [`vec`]: `[min, max)`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.min < self.size.max_excl, "empty vec size range");
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Expands each `#[test] fn name(arg in strategy, ..) { body }` item into a
/// plain `#[test] fn name()` that runs `cases` sampled executions of the
/// body. The generated fn keeps the item's attributes (including `#[test]`)
/// and is directly callable, which lets suites write meta-tests asserting
/// that property bodies really execute.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest {} failed at case {}/{} with inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __inputs,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors proptest's `prelude::prop` module re-exports.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        let mut c = TestRng::for_test("x::z");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..10_000 {
            let v = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::sample(&(1usize..=32), &mut rng);
            assert!((1..=32).contains(&w));
            let s = Strategy::sample(&(-4i32..5), &mut rng);
            assert!((-4..5).contains(&s));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = TestRng::for_test("vec");
        for _ in 0..1_000 {
            let v = Strategy::sample(&crate::collection::vec(0u8..16, 1..300), &mut rng);
            assert!((1..300).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 16));
            let fixed = Strategy::sample(&crate::collection::vec(any::<bool>(), 32), &mut rng);
            assert_eq!(fixed.len(), 32);
        }
    }

    #[test]
    fn perturb_forks_the_rng() {
        let mut rng = TestRng::for_test("perturb");
        let strat = Just(()).prop_perturb(|_, mut rng| rng.next_u32());
        let a = Strategy::sample(&strat, &mut rng);
        let b = Strategy::sample(&strat, &mut rng);
        // Different draws from the parent stream → different forks.
        assert_ne!(a, b);
    }

    // The load-bearing guarantee the review demanded: `proptest!` bodies
    // actually execute. The generated fn is called directly and a counter
    // proves every case ran.
    use std::sync::atomic::{AtomicU32, Ordering};
    static CASES: AtomicU32 = AtomicU32::new(0);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn counted_body(_x in 0u64..8) {
            CASES.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn proptest_macro_executes_every_case() {
        CASES.store(0, Ordering::SeqCst);
        counted_body();
        assert_eq!(CASES.load(Ordering::SeqCst), 64);
    }

    proptest! {
        #[test]
        fn default_case_count_applies(_x in 0u64..8) {}
    }

    #[test]
    fn failing_bodies_panic_out() {
        let r = std::panic::catch_unwind(|| {
            proptest! {
                #[test]
                fn must_fail(x in 0u64..8) {
                    prop_assert!(x > 100, "always false");
                }
            }
            must_fail();
        });
        assert!(r.is_err(), "a failing property must fail the test");
    }
}
