//! Offline mini-serde_json: *functional* `to_string` / `to_string_pretty` /
//! `from_str` over the `Value` tree of the sibling `serde` shim.
//!
//! Output format matches real serde_json where this workspace can observe
//! it: compact form has no whitespace (`{"k":1,"v":[2,3]}`), pretty form
//! indents by two spaces, strings escape `"`, `\\` and control characters,
//! and non-finite floats render as `null`. Integers print exactly; floats
//! print via Rust's shortest round-trip `Display`.

use serde::value::{DeError, Value};
use std::fmt;

#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.msg)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// -------------------------------------------------------------- rendering

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_repr(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string();
    }
    let s = format!("{f}");
    // serde_json always keeps floats recognizably floats.
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn render(v: &Value, pretty: bool, indent: usize, out: &mut String) {
    let pad = |n: usize| "  ".repeat(n);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => out.push_str(&float_repr(*f)),
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&pad(indent + 1));
                }
                render(item, pretty, indent + 1, out);
            }
            if pretty {
                out.push('\n');
                out.push_str(&pad(indent));
            }
            out.push(']');
        }
        Value::Map(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&pad(indent + 1));
                }
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(val, pretty, indent + 1, out);
            }
            if pretty {
                out.push('\n');
                out.push_str(&pad(indent));
            }
            out.push('}');
        }
    }
}

pub fn to_string<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), false, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), true, 0, &mut out);
    Ok(out)
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    s: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.at < self.s.len() && self.s[self.at].is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.at).copied()
    }

    fn eat(&mut self, c: u8) -> Result<()> {
        self.ws();
        if self.s.get(self.at) == Some(&c) {
            self.at += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char,
                self.at,
                self.s.get(self.at).map(|b| *b as char)
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(_) => self.number(),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value> {
        self.ws();
        if self.s[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("expected {word} at byte {}", self.at)))
        }
    }

    fn number(&mut self) -> Result<Value> {
        self.ws();
        let start = self.at;
        while self
            .s
            .get(self.at)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.at])
            .map_err(|_| Error::new(format!("bad number at byte {start}")))?;
        if text.is_empty() {
            return Err(Error::new(format!("bad number at byte {start}")));
        }
        // Exact integers stay integers (u64::MAX must round-trip).
        if !text.contains(['.', 'e', 'E']) {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if n <= i64::MAX as u64 + 1 {
                        return Ok(Value::I64((n as i128).wrapping_neg() as i64));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number {text:?} at byte {start}")))
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.at) {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.s.get(self.at) {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.at + 1..self.at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        Some(&c) => out.push(c as char),
                        None => return Err(Error::new("unterminated escape")),
                    }
                    self.at += 1;
                }
                Some(&c) => {
                    let len = match c {
                        c if c < 0x80 => 1,
                        c if c >= 0xf0 => 4,
                        c if c >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .s
                        .get(self.at..self.at + len)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| Error::new("bad UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.at += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Seq(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Seq(out));
                }
                other => {
                    return Err(Error::new(format!("expected , or ] in array, found {other:?}")))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Map(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.eat(b':')?;
            out.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Map(out));
                }
                other => {
                    return Err(Error::new(format!("expected , or }} in object, found {other:?}")))
                }
            }
        }
    }
}

/// Parse JSON text into a [`Value`] tree (the shim's analogue of
/// `serde_json::Value` for callers that want untyped access).
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser { s: s.as_bytes(), at: 0 };
    let v = p.value()?;
    p.ws();
    if p.at != p.s.len() {
        return Err(Error::new(format!("trailing content at byte {}", p.at)));
    }
    Ok(v)
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(s: &'a str) -> Result<T> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_matches_serde_json_shape() {
        let v = Value::Map(vec![
            ("schema_version".into(), Value::U64(2)),
            ("name".into(), Value::Str("a\"b".into())),
            ("xs".into(), Value::Seq(vec![Value::U64(1), Value::I64(-2), Value::F64(0.5)])),
            ("none".into(), Value::Null),
        ]);
        let mut out = String::new();
        render(&v, false, 0, &mut out);
        assert_eq!(out, r#"{"schema_version":2,"name":"a\"b","xs":[1,-2,0.5],"none":null}"#);
    }

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Map(vec![
            ("max".into(), Value::U64(u64::MAX)),
            ("min".into(), Value::I64(i64::MIN)),
            ("f".into(), Value::F64(1.0)),
            ("tiny".into(), Value::F64(1.25e-9)),
            ("s".into(), Value::Str("päck\n".into())),
            ("b".into(), Value::Bool(true)),
            ("empty_seq".into(), Value::Seq(vec![])),
            ("empty_map".into(), Value::Map(vec![])),
        ]);
        let mut compact = String::new();
        render(&v, false, 0, &mut compact);
        let back = parse_value(&compact).expect("parse");
        // 1.0 renders as "1.0" and re-reads as F64.
        assert_eq!(back, v);
        let mut pretty = String::new();
        render(&v, true, 0, &mut pretty);
        assert_eq!(parse_value(&pretty).expect("parse"), v);
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(parse_value("{ \"a\": ").is_err());
        assert!(parse_value("nope").is_err());
        assert!(parse_value("{} x").is_err());
        assert!(parse_value("").is_err());
    }

    #[test]
    fn nonfinite_floats_render_null() {
        let mut out = String::new();
        render(&Value::F64(f64::NAN), false, 0, &mut out);
        assert_eq!(out, "null");
    }
}
