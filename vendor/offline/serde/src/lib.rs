//! Offline mini-serde: a *functional* subset of the serde 1.x surface.
//!
//! This container builds with no network access, so the real crate cannot be
//! fetched. The workspace only ever derives `Serialize`/`Deserialize` and
//! hands values to `serde_json`, so this shim replaces serde's visitor
//! architecture with a small self-describing [`value::Value`] tree:
//! `Serialize` lowers a value into the tree, `Deserialize` rebuilds one from
//! it, and `serde_json` renders/parses the tree. Derives come from the
//! sibling `serde_derive` shim and honor
//! `#[serde(skip_serializing_if = "path")]`.
//!
//! Deliberate deviations from real serde, chosen for this workspace:
//! - map-typed fields serialize in sorted-key order (determinism first);
//! - `f64`/`f32` deserialize `null` as NaN, mirroring that non-finite floats
//!   serialize as `null` (real serde_json errors on the way back in).

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    use std::fmt;

    /// A self-describing serialized value (JSON data model plus an exact
    /// split of integers into signed/unsigned so `u64::MAX` round-trips).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        U64(u64),
        I64(i64),
        F64(f64),
        Str(String),
        Seq(Vec<Value>),
        Map(Vec<(String, Value)>),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Map(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
                Value::Str(_) => "string",
                Value::Seq(_) => "array",
                Value::Map(_) => "object",
            }
        }
    }

    /// Typed-decode failure: which field/element and why.
    #[derive(Debug, Clone, PartialEq)]
    pub struct DeError {
        pub msg: String,
    }

    impl DeError {
        pub fn msg(msg: impl Into<String>) -> Self {
            DeError { msg: msg.into() }
        }

        pub fn context(self, ctx: &str) -> Self {
            DeError {
                msg: format!("{ctx}: {}", self.msg),
            }
        }
    }

    impl fmt::Display for DeError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for DeError {}
}

use value::{DeError, Value};

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize<'de>: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ------------------------------------------------------------- primitives

macro_rules! ser_unsigned {
    ($($t:ty),*) => { $(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )* };
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => { $(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )* };
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

fn int_from_value(v: &Value) -> Result<i128, DeError> {
    match v {
        Value::U64(n) => Ok(i128::from(*n)),
        Value::I64(n) => Ok(i128::from(*n)),
        Value::F64(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Ok(*f as i128),
        other => Err(DeError::msg(format!("expected integer, got {}", other.kind()))),
    }
}

macro_rules! de_int {
    ($($t:ty),*) => { $(
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = int_from_value(v)?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::msg(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )* };
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // Non-finite floats serialize as null; accept them back as NaN.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::msg(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::msg(format!("expected single-char string, got {}", other.kind()))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {}", other.kind()))),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self[..].to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self[..].to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {}", other.kind()))),
        }
    }
}

macro_rules! tuple_serde {
    ($(($($n:ident . $i:tt),+))*) => { $(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<'de, $($n: Deserialize<'de>),+> Deserialize<'de> for ($($n,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const ARITY: usize = [$($i),+].len();
                match v {
                    Value::Seq(s) if s.len() == ARITY => {
                        Ok(($($n::from_value(&s[$i])?,)+))
                    }
                    other => Err(DeError::msg(format!(
                        "expected {ARITY}-element array, got {}", other.kind()
                    ))),
                }
            }
        }
    )* };
}
tuple_serde! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output (this workspace's golden files
        // depend on byte-stable artifacts).
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(pairs)
    }
}

// -------------------------------------------------- derive support helpers

/// Helpers the `serde_derive` shim expands calls to. Not part of real
/// serde's public API; only generated code uses them.
pub mod de {
    use super::{DeError, Deserialize, Value};

    /// Decode field `name` of object `v`; a missing field decodes from
    /// `Null` so `Option` fields default to `None` and everything else
    /// reports the missing key.
    pub fn field<'de, T: Deserialize<'de>>(v: &Value, name: &str) -> Result<T, DeError> {
        match v {
            Value::Map(_) => T::from_value(v.get(name).unwrap_or(&Value::Null))
                .map_err(|e| e.context(&format!("field `{name}`"))),
            other => Err(DeError::msg(format!("expected object, got {}", other.kind()))),
        }
    }

    /// Decode field `name` of object `v`, substituting `Default::default()`
    /// when the key is absent (`#[serde(default)]`: lets a schema grow
    /// fields while older serialized forms keep deserializing).
    pub fn field_or_default<'de, T: Deserialize<'de> + Default>(
        v: &Value,
        name: &str,
    ) -> Result<T, DeError> {
        match v {
            Value::Map(_) => match v.get(name) {
                Some(val) => {
                    T::from_value(val).map_err(|e| e.context(&format!("field `{name}`")))
                }
                None => Ok(T::default()),
            },
            other => Err(DeError::msg(format!("expected object, got {}", other.kind()))),
        }
    }

    /// Decode element `i` of a sequence (tuple structs / tuple variants).
    pub fn elem<'de, T: Deserialize<'de>>(s: &[Value], i: usize, ctx: &str) -> Result<T, DeError> {
        let v = s
            .get(i)
            .ok_or_else(|| DeError::msg(format!("{ctx}: missing element {i}")))?;
        T::from_value(v).map_err(|e| e.context(ctx))
    }
}
