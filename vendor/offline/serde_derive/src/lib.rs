//! Offline mini-serde_derive: *functional* `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` for the shapes this workspace declares, built on
//! the `Value`-tree model of the sibling `serde` shim (no `syn`/`quote` —
//! a hand-rolled token walk).
//!
//! Supported input shapes:
//! - named-field structs (lifetimes-only generics), honoring
//!   `#[serde(skip_serializing_if = "path")]` on fields;
//! - tuple structs (newtype structs serialize transparently, wider tuples
//!   as arrays);
//! - enums with unit and tuple variants, using serde's externally-tagged
//!   representation (`"Unit"`, `{"Newtype": v}`, `{"Tuple": [a, b]}`).
//!
//! Unsupported shapes (struct variants, type/const generics, other serde
//! attributes) produce a `compile_error!` naming the gap instead of a
//! silently wrong impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ------------------------------------------------------------ input model

struct Field {
    name: String,
    skip_if: Option<String>,
    /// `#[serde(default)]`: a missing key deserializes to `Default::default()`.
    use_default: bool,
}

/// One parsed `#[serde(..)]` field attribute.
enum SerdeAttr {
    None,
    SkipIf(String),
    Default,
}

struct Variant {
    name: String,
    arity: usize,
    is_struct_like: bool,
}

enum Shape {
    Named { fields: Vec<Field> },
    Tuple { arity: usize },
    Enum { variants: Vec<Variant> },
}

struct Input {
    name: String,
    /// Lifetime parameter text, e.g. `'a, 'b` (empty when non-generic).
    generics: String,
    shape: Shape,
}

fn err(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// --------------------------------------------------------------- parsing

/// Walk to the `struct`/`enum` keyword, skipping attributes and doc
/// comments (which arrive as `#`/`#!` + bracket groups, never as top-level
/// idents), then read name, optional lifetime generics, and the body group.
fn parse(input: TokenStream) -> Result<Input, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut is_enum = false;
    loop {
        match toks.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                is_enum = true;
                break;
            }
            Some(_) => i += 1,
            None => return Err("no struct/enum keyword in derive input".into()),
        }
    }
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("missing type name after struct/enum".into()),
    };
    i += 1;

    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1usize;
            while let Some(tt) = toks.get(i) {
                if let TokenTree::Punct(p) = tt {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                if !matches!(tt, TokenTree::Ident(id) if id.to_string() == "'")
                    && !generics.is_empty()
                    && !matches!(tt, TokenTree::Punct(p) if p.as_char() == '\'')
                {
                    // separator handled below
                }
                let is_tick = matches!(tt, TokenTree::Punct(p) if p.as_char() == '\'');
                generics.push_str(&tt.to_string());
                if !is_tick {
                    generics.push(' ');
                }
                i += 1;
            }
            let g = generics.trim().to_string();
            if g.contains(|c: char| c.is_alphabetic()) && !g.contains('\'') {
                return Err(format!("type/const generics on `{name}` are not supported by the offline serde_derive shim"));
            }
            generics = g;
        }
    }

    // Body: brace group (named struct or enum) or paren group (tuple
    // struct, followed by `;`).
    let body = loop {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if is_enum {
                    return Err("unexpected paren body on enum".into());
                }
                return Ok(Input {
                    name,
                    generics,
                    shape: Shape::Tuple {
                        arity: count_top_level_fields(g.stream()),
                    },
                });
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
                return Err(format!("where-clauses on `{name}` are not supported by the offline serde_derive shim"));
            }
            Some(_) => i += 1,
            None => return Err(format!("missing body for `{name}`")),
        }
    };

    let shape = if is_enum {
        Shape::Enum {
            variants: parse_variants(body.stream())?,
        }
    } else {
        Shape::Named {
            fields: parse_named_fields(body.stream())?,
        }
    };
    Ok(Input { name, generics, shape })
}

/// Count comma-separated segments at angle-depth 0 (tuple struct / tuple
/// variant arity), ignoring a trailing comma.
fn count_top_level_fields(ts: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut seg_has_tokens = false;
    let mut angle = 0i32;
    let mut prev_dash = false;
    for tt in ts {
        match &tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '<' {
                    angle += 1;
                } else if c == '>' && !prev_dash && angle > 0 {
                    angle -= 1;
                } else if c == ',' && angle == 0 {
                    if seg_has_tokens {
                        arity += 1;
                    }
                    seg_has_tokens = false;
                    prev_dash = false;
                    continue;
                }
                prev_dash = c == '-';
                seg_has_tokens = true;
            }
            _ => {
                prev_dash = false;
                seg_has_tokens = true;
            }
        }
    }
    if seg_has_tokens {
        arity += 1;
    }
    arity
}

/// Extract `skip_serializing_if = "path"` or `default` from a
/// `#[serde(..)]` attribute group, if present. Any other serde attribute
/// is an error (better loud than silently ignored).
fn serde_attr(group_tokens: Vec<TokenTree>) -> Result<SerdeAttr, String> {
    match (group_tokens.first(), group_tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(inner))) if id.to_string() == "serde" => {
            let inner_toks: Vec<TokenTree> = inner.stream().into_iter().collect();
            match (inner_toks.first(), inner_toks.get(1), inner_toks.get(2)) {
                (
                    Some(TokenTree::Ident(key)),
                    Some(TokenTree::Punct(eq)),
                    Some(TokenTree::Literal(lit)),
                ) if key.to_string() == "skip_serializing_if" && eq.as_char() == '=' => {
                    let raw = lit.to_string();
                    Ok(SerdeAttr::SkipIf(raw.trim_matches('"').to_string()))
                }
                (Some(TokenTree::Ident(key)), None, None) if key.to_string() == "default" => {
                    Ok(SerdeAttr::Default)
                }
                _ => Err(format!(
                    "unsupported #[serde(..)] attribute `{}` (offline shim understands only skip_serializing_if and default)",
                    inner
                )),
            }
        }
        _ => Ok(SerdeAttr::None), // not a serde attribute (doc comment etc.)
    }
}

fn parse_named_fields(ts: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let mut skip_if = None;
        let mut use_default = false;
        // Attributes / doc comments.
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                match serde_attr(g.stream().into_iter().collect())? {
                    SerdeAttr::SkipIf(s) => skip_if = Some(s),
                    SerdeAttr::Default => use_default = true,
                    SerdeAttr::None => {}
                }
                i += 1;
            } else {
                return Err("dangling # in field attributes".into());
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = toks.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => break,
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type: consume until a comma at angle-depth 0. `->`
        // inside fn-pointer types must not close an angle bracket.
        let mut angle = 0i32;
        let mut prev_dash = false;
        while let Some(tt) = toks.get(i) {
            if let TokenTree::Punct(p) = tt {
                let c = p.as_char();
                if c == '<' {
                    angle += 1;
                } else if c == '>' && !prev_dash && angle > 0 {
                    angle -= 1;
                } else if c == ',' && angle == 0 {
                    i += 1;
                    break;
                }
                prev_dash = c == '-';
            } else {
                prev_dash = false;
            }
            i += 1;
        }
        fields.push(Field { name, skip_if, use_default });
    }
    Ok(fields)
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        // Attributes / doc comments.
        while let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                serde_attr(g.stream().into_iter().collect())?;
                i += 1;
            } else {
                return Err("dangling # in variant attributes".into());
            }
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
            None => break,
        };
        i += 1;
        let mut arity = 0usize;
        let mut is_struct_like = false;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = count_top_level_fields(g.stream());
                    i += 1;
                }
                Delimiter::Brace => {
                    is_struct_like = true;
                    i += 1;
                }
                _ => {}
            }
        }
        // Skip to the next comma (covers `= discriminant`).
        while let Some(tt) = toks.get(i) {
            i += 1;
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, arity, is_struct_like });
    }
    Ok(variants)
}

// --------------------------------------------------------------- codegen

fn ser_impl_header(input: &Input) -> String {
    let n = &input.name;
    let g = &input.generics;
    if g.is_empty() {
        format!("impl ::serde::Serialize for {n}")
    } else {
        format!("impl<{g}> ::serde::Serialize for {n}<{g}>")
    }
}

fn de_impl_header(input: &Input) -> String {
    let n = &input.name;
    let g = &input.generics;
    if g.is_empty() {
        format!("impl<'de> ::serde::Deserialize<'de> for {n}")
    } else {
        format!("impl<'de, {g}> ::serde::Deserialize<'de> for {n}<{g}>")
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = match parse(input) {
        Ok(p) => p,
        Err(e) => return err(&e),
    };
    let body = match &input.shape {
        Shape::Named { fields } => {
            let mut pushes = String::new();
            for f in fields {
                let name = &f.name;
                let push = format!(
                    "__fields.push((::std::string::String::from({name:?}), \
                     ::serde::Serialize::to_value(&self.{name})));"
                );
                match &f.skip_if {
                    Some(path) => {
                        pushes.push_str(&format!("if !({path}(&self.{name})) {{ {push} }}\n"));
                    }
                    None => {
                        pushes.push_str(&push);
                        pushes.push('\n');
                    }
                }
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::value::Value::Map(__fields)"
            )
        }
        Shape::Tuple { arity: 0 } => "::serde::value::Value::Seq(::std::vec::Vec::new())".into(),
        Shape::Tuple { arity: 1 } => "::serde::Serialize::to_value(&self.0)".into(),
        Shape::Tuple { arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Seq(vec![{}])", elems.join(", "))
        }
        Shape::Enum { variants } => {
            let ty = &input.name;
            let mut arms = String::new();
            for v in variants {
                if v.is_struct_like {
                    return err(&format!(
                        "struct variant `{ty}::{}` is not supported by the offline serde_derive shim",
                        v.name
                    ));
                }
                let vn = &v.name;
                match v.arity {
                    0 => arms.push_str(&format!(
                        "{ty}::{vn} => ::serde::value::Value::Str(::std::string::String::from({vn:?})),\n"
                    )),
                    1 => arms.push_str(&format!(
                        "{ty}::{vn}(__f0) => ::serde::value::Value::Map(vec![(\
                         ::std::string::String::from({vn:?}), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    n => {
                        let binds: Vec<String> = (0..n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{ty}::{vn}({}) => ::serde::value::Value::Map(vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::value::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n{} {{\n fn to_value(&self) -> ::serde::value::Value {{\n{body}\n }}\n}}",
        ser_impl_header(&input)
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = match parse(input) {
        Ok(p) => p,
        Err(e) => return err(&e),
    };
    let ty = &input.name;
    let body = match &input.shape {
        Shape::Named { fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let helper = if f.use_default { "field_or_default" } else { "field" };
                    format!("{0}: ::serde::de::{helper}(__v, {0:?})?", f.name)
                })
                .collect();
            format!("::std::result::Result::Ok({ty} {{ {} }})", inits.join(", "))
        }
        Shape::Tuple { arity: 1 } => {
            format!("::std::result::Result::Ok({ty}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple { arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::de::elem(__s, {i}, {ty:?})?"))
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::value::Value::Seq(__s) if __s.len() == {arity} => \
                 ::std::result::Result::Ok({ty}({elems})),\n\
                 __other => ::std::result::Result::Err(::serde::value::DeError::msg(\
                 format!(\"expected {arity}-element array for {ty}, got {{}}\", __other.kind()))),\n\
                 }}",
                elems = elems.join(", ")
            )
        }
        Shape::Enum { variants } => {
            let mut arms = String::new();
            for v in variants {
                if v.is_struct_like {
                    return err(&format!(
                        "struct variant `{ty}::{}` is not supported by the offline serde_derive shim",
                        v.name
                    ));
                }
                let vn = &v.name;
                match v.arity {
                    0 => arms.push_str(&format!(
                        "::serde::value::Value::Str(__s) if __s == {vn:?} => \
                         ::std::result::Result::Ok({ty}::{vn}),\n"
                    )),
                    1 => arms.push_str(&format!(
                        "::serde::value::Value::Map(__m) if __m.len() == 1 && __m[0].0 == {vn:?} => \
                         ::std::result::Result::Ok({ty}::{vn}(\
                         ::serde::Deserialize::from_value(&__m[0].1)?)),\n"
                    )),
                    n => {
                        let elems: Vec<String> = (0..n)
                            .map(|i| format!("::serde::de::elem(__s, {i}, {vn:?})?"))
                            .collect();
                        arms.push_str(&format!(
                            "::serde::value::Value::Map(__m) if __m.len() == 1 && __m[0].0 == {vn:?} => \
                             match &__m[0].1 {{\n\
                             ::serde::value::Value::Seq(__s) if __s.len() == {n} => \
                             ::std::result::Result::Ok({ty}::{vn}({elems})),\n\
                             __other => ::std::result::Result::Err(::serde::value::DeError::msg(\
                             format!(\"expected {n}-element array for variant {ty}::{vn}, got {{}}\", \
                             __other.kind()))),\n\
                             }},\n",
                            elems = elems.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n{arms}\
                 __other => ::std::result::Result::Err(::serde::value::DeError::msg(\
                 format!(\"no variant of {ty} matches {{:?}}\", __other))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n{} {{\n fn from_value(__v: &::serde::value::Value) \
         -> ::std::result::Result<Self, ::serde::value::DeError> {{\n{body}\n }}\n}}",
        de_impl_header(&input)
    )
    .parse()
    .unwrap()
}
