//! Offline typecheck stub for criterion 0.5: mirrors the API surface the
//! workspace benches use (groups, bench_function, iter/iter_batched,
//! sample_size/measurement_time/warm_up_time/throughput) with inert
//! bodies that run each closure once.

use std::marker::PhantomData;
use std::time::Duration;

pub struct Bencher;

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _ = routine();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = routine(setup());
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let _ = routine(&mut setup());
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

#[derive(Debug, Clone)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

// The id text is carried for API fidelity; this smoke harness never
// prints per-bench reports, so nothing reads it.
pub struct BenchmarkId(#[allow(dead_code)] String);

impl BenchmarkId {
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

pub struct BenchmarkGroup<'a, M = WallTime> {
    _parent: &'a mut Criterion,
    _m: PhantomData<M>,
}

pub struct WallTime;

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<ID: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        _id: ID,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher);
        self
    }

    pub fn bench_with_input<ID: IntoBenchmarkId, I: ?Sized, F>(
        &mut self,
        _id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        f(&mut Bencher, input);
        self
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, _group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            _m: PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _id: &str, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

pub fn black_box<T>(dummy: T) -> T {
    std::hint::black_box(dummy)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
