//! Offline mini-rand: a functional subset of rand 0.8 (the workspace
//! declares the dependency with `small_rng` but currently rolls its own
//! deterministic RNG in `ndp-common::rng`; this shim keeps the declared
//! surface real for any future use). `SmallRng` is splitmix64-seeded
//! xoshiro256++, matching rand's "small, fast, not cryptographic" contract —
//! the exact stream differs from upstream, which this workspace never
//! depends on.

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub trait Rng: RngCore {
    fn gen_range<T: UniformSampled>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Integer types `gen_range` can draw (uniform via modulo; bias is
/// irrelevant at simulation scales).
pub trait UniformSampled: Copy {
    fn sample<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => { $(
        impl UniformSampled for $t {
            fn sample<R: RngCore>(rng: &mut R, range: std::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u64;
                (range.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )* };
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ with splitmix64 seeding.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

pub use rngs::SmallRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let s = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }
}
