//! # standardized-ndp
//!
//! A full reproduction of *"Toward Standardized Near-Data Processing with
//! Unrestricted Data Placement for GPUs"* (Kim, Chatterjee, O'Connor, Hsieh —
//! SC'17) as a Rust workspace: a cycle-level GPU + HMC-stack simulator with
//! the paper's partitioned-execution NDP mechanism, offload-block compiler,
//! hill-climbing dynamic offload controller, cache-locality-aware gating,
//! energy model, and the ten evaluated workloads.
//!
//! This facade crate re-exports the workspace's public API; the runnable
//! entry points live in `examples/` (quickstart and scenario binaries) and
//! in the `ndp-bench` crate (one harness binary per paper table/figure).
//!
//! ## Quickstart
//!
//! ```
//! use standardized_ndp::prelude::*;
//!
//! // Build the Fig. 2 vector-addition kernel at a small scale.
//! let scale = Scale { warps: 64, iters: 4 };
//! let program = Workload::Vadd.build(&scale);
//!
//! // Simulate it on the baseline and on the NDP system.
//! let mut cfg = SystemConfig::baseline();
//! cfg.gpu.num_sms = 8;
//! let base = System::new(cfg.clone(), &program).run(10_000_000).unwrap();
//! cfg.offload = OffloadPolicy::Static(0.6);
//! let ndp = System::new(cfg, &program).run(10_000_000).unwrap();
//!
//! assert!(!base.timed_out && !ndp.timed_out);
//! // The NDP run keeps the vector data off the GPU links.
//! assert!(ndp.gpu_link_bytes < base.gpu_link_bytes);
//! ```

#![forbid(unsafe_code)]

pub use ndp_common as common;
pub use ndp_compiler as compiler;
pub use ndp_core as core_sim;
pub use ndp_dram as dram;
pub use ndp_energy as energy;
pub use ndp_gpu as gpu;
pub use ndp_hmc as hmc;
pub use ndp_isa as isa;
pub use ndp_memnet as memnet;
pub use ndp_nsu as nsu;
pub use ndp_workloads as workloads;

/// The commonly-used types in one import.
pub mod prelude {
    pub use ndp_common::config::{OffloadPolicy, SystemConfig};
    pub use ndp_common::error::SimError;
    pub use ndp_common::fault::{FaultConfig, FaultStats};
    pub use ndp_common::footprint::RaceDetector;
    pub use ndp_common::obs::{Obs, ObsConfig, ObsReport, PerfConfig, PerfReport};
    pub use ndp_common::watchdog::StallReport;
    pub use ndp_compiler::{compile, CompilerConfig};
    pub use ndp_core::experiments::{run_matrix, run_workload};
    pub use ndp_core::{RunResult, System};
    pub use ndp_energy::{energy, Activity, EnergyParams};
    pub use ndp_workloads::{Scale, Workload, WORKLOADS};
}
