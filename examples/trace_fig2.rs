//! Fig. 2 walkthrough: trace the packet-level life of offload-block
//! instances for the vector-addition kernel and print the ①–⑨ message
//! sequence of the partitioned execution model.
//!
//! Run: `cargo run --release --example trace_fig2`

use standardized_ndp::prelude::*;

fn main() {
    let program = Workload::Vadd.build(&Scale { warps: 8, iters: 1 });
    let mut cfg = SystemConfig::naive_ndp();
    cfg.gpu.num_sms = 2;
    let mut sys = System::new(cfg, &program);
    sys.enable_trace(10_000);
    for _ in 0..200_000u64 {
        sys.tick();
        if sys.is_done() {
            break;
        }
    }
    let token = sys.tracer.first_token().expect("an offload happened");
    println!("{}", sys.tracer.render_instance(token));
    println!(
        "Legend (paper Fig. 2(b)): OffloadCmd = ①, Rdf = ②③ (read requests,\n\
         addresses generated on the GPU), RdfResp = ⑤⑥ (DRAM data forwarded\n\
         to the target NSU over the memory network), Wta = ④ (store\n\
         addresses), NsuWrite/NsuWriteAck = ⑦⑧, OffloadAck = ⑨."
    );
}
