//! Divergent-gather scenario (§4.4): BFS-style indirect loads.
//!
//! Demonstrates the bandwidth-saving property of single-indirect-load
//! offload blocks: a divergent `x = B[A[i]]` gather touches up to 32 cache
//! lines per warp. The baseline fetches each 128 B line to the GPU and uses
//! 4 bytes of it; the NDP system gathers the touched words at the NSU and
//! returns only the packed register in the ACK packet.
//!
//! Run: `cargo run --release --example divergent_gather`

use standardized_ndp::prelude::*;

fn main() {
    let scale = Scale {
        warps: 512,
        iters: 12,
    };
    let program = Workload::Bfs.build(&scale);
    let kernel = compile(&program, &CompilerConfig::default());

    println!("BFS offload blocks found by the analyzer:");
    for b in &kernel.blocks {
        println!(
            "  block {}: {} NSU instrs, indirect = {}, score = {}",
            b.id,
            b.nsu_len(),
            b.indirect,
            b.score
        );
    }
    let indirect = kernel.blocks.iter().filter(|b| b.indirect).count();
    assert_eq!(indirect, 2, "the two gathers become §4.4 blocks");

    let mut cfg = SystemConfig::baseline();
    cfg.gpu.num_sms = 16;
    let base = System::new(cfg.clone(), &program).run(40_000_000).unwrap();
    cfg.offload = OffloadPolicy::Static(0.4); // the paper's best BFS ratio
    let ndp = System::new(cfg, &program).run(40_000_000).unwrap();

    println!(
        "\nbaseline : {:>9} cycles, {:>8} KB GPU-link traffic",
        base.cycles,
        base.gpu_link_bytes / 1024
    );
    println!(
        "NDP(0.4) : {:>9} cycles, {:>8} KB GPU-link traffic",
        ndp.cycles,
        ndp.gpu_link_bytes / 1024
    );
    println!(
        "speedup {:.3}× — divergence filtering avoids fetching untouched words",
        base.cycles as f64 / ndp.cycles as f64
    );
    println!(
        "L1 read hit rate (baseline): {:.1}% — gathers mostly miss, as intended",
        base.l1.read_hit_rate() * 100.0
    );
}
