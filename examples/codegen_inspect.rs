//! Inspect the offload-block compiler's output for every workload
//! (Fig. 3-style listings plus Table 1 shape).
//!
//! Run: `cargo run --release --example codegen_inspect [workload]`

use standardized_ndp::prelude::*;

fn main() {
    let filter = std::env::args().nth(1);
    let scale = Scale::tiny(); // code structure is scale-invariant
    for w in WORKLOADS {
        if let Some(f) = &filter {
            if !w.name().eq_ignore_ascii_case(f) {
                continue;
            }
        }
        let program = w.build(&scale);
        let kernel = compile(&program, &CompilerConfig::default());
        println!("════════ {} — {} ════════", w.name(), w.description());
        println!(
            "blocks: {:?} NSU instrs (Table 1 says {:?})\n",
            kernel.nsu_lens(),
            w.table1_sizes()
        );
        println!("{}", ndp_isa::disasm::disasm_gpu(&program, &kernel.blocks));
        for b in &kernel.blocks {
            println!(
                "--- NSU code, block {} (live-in {:?}, live-out {:?}) ---",
                b.id, b.live_in, b.live_out
            );
            println!("{}", ndp_isa::disasm::disasm_nsu(b));
        }
    }
}
