//! Quickstart: the Fig. 2 vector-addition walkthrough.
//!
//! Compiles `C[i] = A[i] + B[i]` with the offload-block analyzer, prints the
//! GPU and NSU code (Fig. 3 style), then simulates the kernel on the
//! baseline execution model and under partitioned-execution NDP, reporting
//! the headline effect: the vector data stops crossing the GPU's off-chip
//! links.
//!
//! Run: `cargo run --release --example quickstart`

use standardized_ndp::prelude::*;

fn main() {
    let scale = Scale {
        warps: 512,
        iters: 8,
    };
    let program = Workload::Vadd.build(&scale);
    let kernel = compile(&program, &CompilerConfig::default());

    println!("=== offload-block analysis (§3) ===\n");
    println!("{}", ndp_isa::disasm::disasm_gpu(&program, &kernel.blocks));
    for b in &kernel.blocks {
        println!("--- NSU code for block {} (Fig. 3(b)) ---", b.id);
        println!("{}", ndp_isa::disasm::disasm_nsu(b));
    }

    println!("=== simulation ===\n");
    let mut cfg = SystemConfig::baseline();
    cfg.gpu.num_sms = 16;
    let base = System::new(cfg.clone(), &program).run(20_000_000).unwrap();
    cfg.offload = OffloadPolicy::Static(0.6);
    let ndp = System::new(cfg, &program).run(20_000_000).unwrap();

    println!(
        "baseline : {:>9} cycles, {:>8} KB over GPU links",
        base.cycles,
        base.gpu_link_bytes / 1024
    );
    println!(
        "NDP(0.6) : {:>9} cycles, {:>8} KB over GPU links, {:>8} KB over the memory network",
        ndp.cycles,
        ndp.gpu_link_bytes / 1024,
        ndp.memnet_bytes / 1024
    );
    println!(
        "speedup  : {:.3}×   GPU-link traffic: {:.1}× less",
        base.cycles as f64 / ndp.cycles as f64,
        base.gpu_link_bytes as f64 / ndp.gpu_link_bytes as f64
    );
    println!(
        "offloaded: {:.0}% of block instances; {} warp-instructions ran on NSUs",
        ndp.offload_fraction() * 100.0,
        ndp.nsu_instrs
    );
}
