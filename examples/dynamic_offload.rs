//! Dynamic offload-ratio scenario (§7.2): Algorithm 1 in action.
//!
//! Runs one memory-intensive workload under every static offload ratio and
//! under the hill-climbing controller, showing that the dynamic policy
//! lands near the best static point without knowing it in advance — and
//! that the cache-locality gate (§7.3) rescues a cache-friendly workload
//! the ratio controller alone cannot fix.
//!
//! Run: `cargo run --release --example dynamic_offload`

use standardized_ndp::prelude::*;

fn sweep(w: Workload, scale: &Scale) {
    println!("--- {} ---", w.name());
    let program = w.build(scale);
    let shrink = |mut c: SystemConfig| {
        c.gpu.num_sms = 16;
        c
    };
    let base = System::new(shrink(SystemConfig::baseline()), &program)
        .run(40_000_000)
        .unwrap();
    print!("speedup over baseline:");
    for r in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let run = System::new(shrink(SystemConfig::ndp_static(r)), &program)
            .run(40_000_000)
            .unwrap();
        print!("  {:.1}→{:.3}", r, base.cycles as f64 / run.cycles as f64);
    }
    let dy = System::new(shrink(SystemConfig::ndp_dynamic()), &program)
        .run(40_000_000)
        .unwrap();
    let dyc = System::new(shrink(SystemConfig::ndp_dynamic_cache()), &program)
        .run(40_000_000)
        .unwrap();
    println!(
        "\n  NDP(Dyn) {:.3} (achieved ratio {:.2});  NDP(Dyn)_Cache {:.3} (ratio {:.2})\n",
        base.cycles as f64 / dy.cycles as f64,
        dy.offload_fraction(),
        base.cycles as f64 / dyc.cycles as f64,
        dyc.offload_fraction(),
    );
}

fn main() {
    let scale = Scale {
        warps: 1024,
        iters: 16,
    };
    // A streaming workload the controller should push toward offloading...
    sweep(Workload::Kmn, &scale);
    // ...and a cache-friendly stencil the gate should suppress (§7.3).
    sweep(Workload::Stn, &scale);
}
