#!/bin/bash
# Regenerate every paper table/figure at the recorded scale.
cd /root/repo
export NDP_WARPS=1024 NDP_ITERS=8 NDP_EPOCH=2000
R=results
# One entry per harness binary: make_report globs results/*.txt, so adding
# a binary here is the only step needed to get it into REPORT.md.
BINS="table1 table2 fig5 overhead fig9 fig7 fig8 fig10 fig11 \
      inval_traffic nsu_freq bigger_gpu nsu_cache ablate bicg_fine"
for b in $BINS; do
    ./target/release/$b > $R/$b.txt 2>&1
done
# Simulator self-profile: per-stage host-time/idle attribution for the
# recorded scale (NDP_PERF_* env tunes stride and heartbeat cadence).
NDP_PERF=1 ./target/release/obs_report > $R/perf_report.txt 2>&1
# Core throughput baseline for regression gating (BENCH_core.json).
./target/release/bench_baseline --out $R/BENCH_core.json > $R/bench_baseline.txt 2>&1
./target/release/make_report
echo ALL_DONE
