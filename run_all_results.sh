#!/bin/bash
# Regenerate every paper table/figure at the recorded scale.
cd /root/repo
export NDP_WARPS=1024 NDP_ITERS=8 NDP_EPOCH=2000
R=results
./target/release/table1 > $R/table1.txt 2>&1
./target/release/table2 > $R/table2.txt 2>&1
./target/release/fig5 > $R/fig5.txt 2>&1
./target/release/overhead > $R/overhead.txt 2>&1
./target/release/fig9 > $R/fig9.txt 2>&1
./target/release/fig7 > $R/fig7.txt 2>&1
./target/release/fig8 > $R/fig8.txt 2>&1
./target/release/fig10 > $R/fig10.txt 2>&1
./target/release/fig11 > $R/fig11.txt 2>&1
./target/release/inval_traffic > $R/inval_traffic.txt 2>&1
./target/release/nsu_freq > $R/nsu_freq.txt 2>&1
./target/release/bigger_gpu > $R/bigger_gpu.txt 2>&1
./target/release/nsu_cache > $R/nsu_cache.txt 2>&1
./target/release/ablate > $R/ablate.txt 2>&1
./target/release/bicg_fine > $R/bicg_fine.txt 2>&1
./target/release/make_report
echo ALL_DONE
