#!/bin/bash
# Regenerate every paper table/figure at the recorded scale.
#
#   --resume-dir DIR   Periodically checkpoint every simulation into DIR and
#                      resume any cell that already has a matching snapshot,
#                      so an interrupted sweep continues from its last saved
#                      boundary instead of restarting. Results are
#                      byte-identical to an uninterrupted sweep (DESIGN.md §13).
cd /root/repo
while [ $# -gt 0 ]; do
    case "$1" in
        --resume-dir)
            [ -n "$2" ] || { echo "usage: $0 [--resume-dir DIR]" >&2; exit 2; }
            RESUME_DIR=$2
            shift 2
            ;;
        *)
            echo "unknown argument: $1" >&2
            echo "usage: $0 [--resume-dir DIR]" >&2
            exit 2
            ;;
    esac
done
if [ -n "$RESUME_DIR" ]; then
    mkdir -p "$RESUME_DIR"
    export NDP_CHECKPOINT_EVERY=${NDP_CHECKPOINT_EVERY:-1000000}
    export NDP_CHECKPOINT_PATH="$RESUME_DIR"
    export NDP_RESUME="$RESUME_DIR"
fi
export NDP_WARPS=1024 NDP_ITERS=8 NDP_EPOCH=2000
R=results
# One entry per harness binary: make_report globs results/*.txt, so adding
# a binary here is the only step needed to get it into REPORT.md.
BINS="table1 table2 fig5 overhead fig9 fig7 fig8 fig10 fig11 \
      inval_traffic nsu_freq bigger_gpu nsu_cache ablate bicg_fine"
for b in $BINS; do
    ./target/release/$b > $R/$b.txt 2>&1
done
# Simulator self-profile: per-stage host-time/idle attribution for the
# recorded scale (NDP_PERF_* env tunes stride and heartbeat cadence).
NDP_PERF=1 ./target/release/obs_report > $R/perf_report.txt 2>&1
# Core throughput baseline for regression gating (BENCH_core.json).
./target/release/bench_baseline --out $R/BENCH_core.json > $R/bench_baseline.txt 2>&1
# Per-stage shared-state footprint report: which controller fields keep
# tick:sms sequential, and which stages are parallel-safe (DESIGN.md §16).
./target/release/ndp_lint --quiet --footprint-report $R/parallel_footprint.txt
./target/release/make_report
echo ALL_DONE
