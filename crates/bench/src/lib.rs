//! Benchmark & figure-regeneration harness.
//!
//! Binaries (one per paper table/figure — see DESIGN.md §4):
//! `table1`, `table2`, `fig5`, `fig7`, `fig8`, `fig9`, `fig10`, `fig11`,
//! `inval_traffic`, `bigger_gpu`, `nsu_freq`, `overhead`, plus `calibrate`
//! (quick whole-matrix sanity sweep). Criterion micro-benchmarks live in
//! `benches/`.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod jsonio;

use ndp_core::experiments::{run_matrix, Matrix, DEFAULT_MAX_CYCLES};
use ndp_core::result::RunResult;
use ndp_workloads::{Scale, Workload};

/// Default evaluation scale for the harness binaries. Override with
/// `NDP_WARPS` / `NDP_ITERS` environment variables.
pub fn harness_scale() -> Scale {
    use ndp_common::env::parse_or_die;
    Scale {
        warps: parse_or_die("NDP_WARPS").unwrap_or(Scale::eval().warps),
        iters: parse_or_die("NDP_ITERS").unwrap_or(Scale::eval().iters),
    }
}

/// Run a config × workload matrix at the harness scale. The Algorithm 1
/// epoch length follows `NDP_EPOCH` (cycles) so that scaled-down runs still
/// span enough epochs for the hill climber to converge.
pub fn run(configs: &[(&str, ndp_common::SystemConfig)], workloads: &[Workload]) -> Matrix {
    let epoch: u64 = ndp_common::env::parse_or_die("NDP_EPOCH").unwrap_or(30_000);
    let configs: Vec<(&str, ndp_common::SystemConfig)> = configs
        .iter()
        .map(|(n, c)| {
            let mut c = c.clone();
            c.hill_climb.epoch_cycles = epoch;
            (*n, c)
        })
        .collect();
    run_matrix(&configs, workloads, &harness_scale(), DEFAULT_MAX_CYCLES)
}

/// Print a speedup-vs-baseline table for a matrix (Fig. 7/9 format) with a
/// GMEAN column.
pub fn print_speedups(m: &Matrix, baseline: &str) {
    let mut headers: Vec<&str> = vec!["Workload"];
    for c in &m.configs {
        headers.push(c);
    }
    let mut rows = vec![];
    for (wi, w) in m.workloads.iter().enumerate() {
        let mut row = vec![w.name().to_string()];
        let b = m.config_index(baseline).expect("baseline present");
        for ci in 0..m.configs.len() {
            row.push(format!(
                "{:.3}",
                m.results[b][wi].cycles as f64 / m.results[ci][wi].cycles as f64
            ));
        }
        rows.push(row);
    }
    // GMEAN row.
    let mut gm = vec!["GMEAN".to_string()];
    for ci in 0..m.configs.len() {
        let sp = m.speedups(&m.configs[ci], baseline);
        gm.push(match ndp_common::stats::geomean(&sp) {
            Some(g) => format!("{g:.3}"),
            None => "n/a".to_string(),
        });
    }
    rows.push(gm);
    println!("{}", ndp_core::table::render(&headers, &rows));
    for row in m.results.iter().flatten() {
        if row.timed_out {
            println!("WARNING: {} / {} timed out", row.config, row.workload);
        }
    }
}

/// Surface timed-out runs loudly on stderr (the in-table WARNING lines are
/// easy to miss in redirected output) and return how many there were.
pub fn warn_timeouts(m: &Matrix) -> usize {
    let mut n = 0;
    for row in m.results.iter().flatten() {
        if row.timed_out {
            eprintln!(
                "error: run timed out at the safety cycle cap: {} / {} ({} cycles) — \
                 figures derived from it are invalid",
                row.config, row.workload, row.cycles
            );
            n += 1;
        }
    }
    if n > 0 {
        eprintln!("error: {n} run(s) timed out; set NDP_STRICT_TIMEOUT=1 to make this fatal");
    }
    n
}

/// Warn about timeouts and, when `NDP_STRICT_TIMEOUT=1` is set, exit
/// nonzero so CI and scripts cannot silently consume truncated results.
pub fn enforce_timeouts(m: &Matrix) {
    let n = warn_timeouts(m);
    let strict = ndp_common::env::flag_or_die("NDP_STRICT_TIMEOUT").unwrap_or(false);
    if n > 0 && strict {
        std::process::exit(2);
    }
}

/// Dump the raw matrix as JSON next to the textual table (for EXPERIMENTS.md
/// bookkeeping and regression diffs).
pub fn dump_json(path: &str, m: &Matrix) {
    #[derive(serde::Serialize)]
    struct Row<'a> {
        config: &'a str,
        workload: &'a str,
        cycles: u64,
        gpu_link_bytes: u64,
        memnet_bytes: u64,
        nsu_instrs: u64,
        offload_fraction: f64,
    }
    let rows: Vec<Row> = m
        .configs
        .iter()
        .enumerate()
        .flat_map(|(ci, c)| {
            m.workloads
                .iter()
                .enumerate()
                .map(move |(wi, w)| (ci, c, wi, w))
        })
        .map(|(ci, c, wi, w)| {
            let r: &RunResult = &m.results[ci][wi];
            Row {
                config: c,
                workload: w.name(),
                cycles: r.cycles,
                gpu_link_bytes: r.gpu_link_bytes,
                memnet_bytes: r.memnet_bytes,
                nsu_instrs: r.nsu_instrs,
                offload_fraction: r.offload_fraction(),
            }
        })
        .collect();
    // Fail loudly: a figure run whose JSON silently vanishes poisons every
    // downstream regression diff.
    let s = serde_json::to_string_pretty(&rows)
        .unwrap_or_else(|e| panic!("could not serialize {path}: {e}"));
    if let Err(e) = std::fs::write(path, s) {
        eprintln!("error: could not write {path}: {e}");
        std::process::exit(1);
    }
}
