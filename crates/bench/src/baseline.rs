//! Throughput baseline for the core simulator (`BENCH_core.json`).
//!
//! The cycle-skipping rework planned for the core loop (ROADMAP item 1)
//! needs two guarantees before it lands: the model's outputs must not
//! change (the golden determinism test pins that), and host throughput
//! must not regress (this module pins that). [`measure`] runs a fixed
//! workload set, records simulated-cycles-per-second plus the per-stage
//! idle fractions from the perf self-profile, and [`check`] compares a
//! fresh measurement against a committed baseline with a tolerance band.
//!
//! The `bench_baseline` binary is the CLI for both directions:
//!
//! ```text
//! cargo run --release -p ndp-bench --bin bench_baseline -- --out BENCH_core.json
//! cargo run --release -p ndp-bench --bin bench_baseline -- --check BENCH_core.json
//! ```

use std::time::Instant;

use ndp_common::obs::perf::{PerfConfig, StagePerf};
use ndp_common::SystemConfig;
use ndp_core::system::System;
use ndp_workloads::{Scale, Workload};
use serde::{Deserialize, Serialize};

/// Version stamp of the `BENCH_core.json` document. v2 added the
/// per-stage `skip_frac` column from the event-driven core; v3 added the
/// checkpoint cost columns (`ckpt_bytes`, `ckpt_save_ns`, `ckpt_restore_ns`).
pub const BENCH_SCHEMA_VERSION: u32 = 3;

/// One benchmark scenario: a configuration and a workload set at a fixed
/// scale, timed over `reps` repetitions (best rep wins, to shed scheduler
/// noise).
pub struct BenchSpec {
    pub name: &'static str,
    pub config_name: &'static str,
    pub workloads: &'static [Workload],
    pub scale: Scale,
    pub num_sms: usize,
    pub reps: u32,
}

impl BenchSpec {
    pub fn config(&self) -> SystemConfig {
        let mut cfg = match self.config_name {
            "ndp_dynamic_cache" => SystemConfig::ndp_dynamic_cache(),
            other => panic!("unknown bench config {other:?}"),
        };
        cfg.gpu.num_sms = self.num_sms;
        cfg
    }
}

/// The golden-test recipe: the `fig7_small` sweep's NDP column (8 SMs,
/// 64 warps × 4 iters over Vadd/Bfs/Bprop). Small enough for CI smoke.
pub fn fig7_small() -> BenchSpec {
    BenchSpec {
        name: "fig7_small",
        config_name: "ndp_dynamic_cache",
        workloads: &[Workload::Vadd, Workload::Bfs, Workload::Bprop],
        scale: Scale {
            warps: 64,
            iters: 4,
        },
        num_sms: 8,
        reps: 3,
    }
}

/// The same sweep at a heavier scale (16 SMs, 256 warps × 8 iters): long
/// enough that per-cycle overheads dominate setup costs, which is what the
/// cycle-skipping rework will move.
pub fn fig7_scale() -> BenchSpec {
    BenchSpec {
        name: "fig7_scale",
        config_name: "ndp_dynamic_cache",
        workloads: &[Workload::Vadd, Workload::Bfs, Workload::Bprop],
        scale: Scale {
            warps: 256,
            iters: 8,
        },
        num_sms: 16,
        reps: 2,
    }
}

/// Safety cap for baseline runs; mirrors the golden test's.
const MAX_CYCLES: u64 = 30_000_000;

/// Run every workload of a spec once, uninstrumented, and return the total
/// simulated cycles. This is the timed body shared by [`measure`] and the
/// criterion `core` bench — keep it free of I/O and allocation beyond what
/// the simulation itself does.
pub fn run_once(spec: &BenchSpec) -> u64 {
    let mut cycles = 0u64;
    for w in spec.workloads {
        let program = w.build(&spec.scale);
        let mut sys = System::new(spec.config(), &program);
        // Force profiling off regardless of NDP_PERF: the throughput
        // number must measure the uninstrumented hot loop.
        sys.enable_perf(PerfConfig::default());
        let r = sys.run(MAX_CYCLES).expect("no protocol violation");
        assert!(!r.timed_out, "{}/{} timed out", spec.name, w.name());
        cycles += r.cycles;
    }
    cycles
}

/// Per-stage idle/wall attribution merged across a spec's workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageIdle {
    pub stage: String,
    /// Fraction of this stage's routing invocations that moved nothing.
    pub idle_frac: f64,
    /// Fraction of simulated cycles the quiescence layer proved this stage
    /// had no work and skipped it outright.
    pub skip_frac: f64,
    /// This stage's share of estimated host wall time.
    pub wall_frac: f64,
}

/// One measured scenario in the baseline document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    pub name: String,
    pub config: String,
    pub workloads: Vec<String>,
    pub warps: u32,
    pub iters: u32,
    pub reps: u32,
    /// Total simulated cycles of one rep — deterministic, so a mismatch
    /// against the baseline means the *model* changed, not the host.
    pub sim_cycles: u64,
    /// Best-rep wall time for the whole workload set.
    pub wall_ns: u64,
    /// `sim_cycles / wall_seconds` of the best rep.
    pub cycles_per_sec: f64,
    /// Size of one mid-run checkpoint image of the spec's first workload.
    pub ckpt_bytes: u64,
    /// Wall time to capture + seal that image (`System::snapshot`).
    pub ckpt_save_ns: u64,
    /// Wall time to verify + rebuild a `System` from it (`try_restore`).
    pub ckpt_restore_ns: u64,
    /// Per-stage idle and wall-time shares from one instrumented run.
    pub stage_idle: Vec<StageIdle>,
}

/// The committed baseline document (`BENCH_core.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchBaseline {
    pub schema_version: u32,
    /// `git rev-parse --short=12 HEAD` at measurement time, or "unknown".
    pub git_rev: String,
    pub entries: Vec<BenchEntry>,
}

/// The current commit, for stamping baselines.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Merge per-stage reports from several runs: idle fractions weighted by
/// routing invocations, wall fractions by estimated stage wall time.
fn merge_stage_idle(reports: &[Vec<StagePerf>]) -> Vec<StageIdle> {
    let Some(first) = reports.first() else {
        return Vec::new();
    };
    let mut out: Vec<StageIdle> = Vec::with_capacity(first.len());
    let total_wall: u64 = reports
        .iter()
        .flat_map(|r| r.iter())
        .map(|s| s.est_wall_ns)
        .sum();
    for (i, s) in first.iter().enumerate() {
        let (mut idle, mut routed, mut wall) = (0u64, 0u64, 0u64);
        for r in reports {
            idle += r[i].idle;
            routed += r[i].routed;
            wall += r[i].est_wall_ns;
        }
        let (mut skipped, mut cycles) = (0u64, 0u64);
        for r in reports {
            skipped += r[i].skipped;
            cycles += r[i].invocations + r[i].gated + r[i].skipped;
        }
        out.push(StageIdle {
            stage: s.name.clone(),
            idle_frac: if routed == 0 {
                0.0
            } else {
                idle as f64 / routed as f64
            },
            skip_frac: if cycles == 0 {
                0.0
            } else {
                skipped as f64 / cycles as f64
            },
            wall_frac: if total_wall == 0 {
                0.0
            } else {
                wall as f64 / total_wall as f64
            },
        });
    }
    out
}

/// Measure one spec: best-of-`reps` uninstrumented wall time for the
/// throughput number, plus one profiled pass for the idle attribution
/// (counters are deterministic, so one pass suffices).
pub fn measure(spec: &BenchSpec) -> BenchEntry {
    let mut sim_cycles = 0u64;
    let mut best_ns = u64::MAX;
    for rep in 0..spec.reps.max(1) {
        let t0 = Instant::now();
        let cycles = run_once(spec);
        let ns = t0.elapsed().as_nanos() as u64;
        best_ns = best_ns.min(ns.max(1));
        if rep == 0 {
            sim_cycles = cycles;
        } else {
            assert_eq!(cycles, sim_cycles, "{}: nondeterministic rep", spec.name);
        }
    }

    let mut stage_reports = Vec::new();
    for w in spec.workloads {
        let program = w.build(&spec.scale);
        let mut sys = System::new(spec.config(), &program);
        sys.enable_perf(PerfConfig::on());
        let r = sys.run(MAX_CYCLES).expect("no protocol violation");
        stage_reports.push(r.perf.expect("profiling was enabled").stages);
    }

    // Checkpoint cost probe: snapshot the first workload mid-run and
    // restore the image, timing both directions. One sample per spec is
    // enough — the image size is deterministic and the save/restore cost
    // scales with machine shape, not with how long the run has gone.
    let (ckpt_bytes, ckpt_save_ns, ckpt_restore_ns) = {
        let w = spec.workloads[0];
        let program = w.build(&spec.scale);
        let kernel = std::sync::Arc::new(ndp_compiler::compile(
            &program,
            &ndp_compiler::CompilerConfig::default(),
        ));
        let mut sys = System::new(spec.config(), &program);
        sys.run_until(4_096).expect("no protocol violation");
        let t0 = Instant::now();
        let image = sys.snapshot();
        let save_ns = t0.elapsed().as_nanos() as u64;
        let t1 = Instant::now();
        let restored =
            System::try_restore(spec.config(), kernel, &image).expect("own snapshot restores");
        let restore_ns = t1.elapsed().as_nanos() as u64;
        assert_eq!(restored.cycle(), sys.cycle(), "{}: resume cycle", spec.name);
        (image.len() as u64, save_ns, restore_ns)
    };

    BenchEntry {
        name: spec.name.to_string(),
        config: spec.config_name.to_string(),
        workloads: spec
            .workloads
            .iter()
            .map(|w| w.name().to_string())
            .collect(),
        warps: spec.scale.warps,
        iters: spec.scale.iters,
        reps: spec.reps,
        sim_cycles,
        wall_ns: best_ns,
        cycles_per_sec: sim_cycles as f64 / (best_ns as f64 / 1e9),
        ckpt_bytes,
        ckpt_save_ns,
        ckpt_restore_ns,
        stage_idle: merge_stage_idle(&stage_reports),
    }
}

/// Verdict for one baseline entry re-measured on the current tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntryCheck {
    pub name: String,
    pub baseline_cycles_per_sec: f64,
    pub current_cycles_per_sec: f64,
    /// `current / baseline` — below `1 - tolerance` is a regression.
    pub ratio: f64,
    /// Simulated cycle counts agree (they are deterministic; a mismatch
    /// means the model changed and the baseline must be re-blessed).
    pub sim_cycles_match: bool,
    pub ok: bool,
}

/// Outcome of comparing a fresh measurement against a committed baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckOutcome {
    pub schema_version: u32,
    pub tolerance: f64,
    pub baseline_git_rev: String,
    pub current_git_rev: String,
    /// The committed baseline carried no measurements yet (bootstrap
    /// document): nothing to gate against, so the check passes with a
    /// notice. Populate with `bench_baseline --out BENCH_core.json` on
    /// the reference machine and commit the result.
    pub bootstrap: bool,
    pub entries: Vec<EntryCheck>,
    pub ok: bool,
}

/// Compare `current` entries against their named counterparts in
/// `baseline`. Entries present only in the baseline are ignored (a check
/// may re-measure a subset); a current entry with no baseline counterpart
/// fails the check. An *empty* baseline is the bootstrap state: it gates
/// nothing and the check passes with `bootstrap` set.
pub fn check(baseline: &BenchBaseline, current: &BenchBaseline, tolerance: f64) -> CheckOutcome {
    if baseline.entries.is_empty() {
        return CheckOutcome {
            schema_version: BENCH_SCHEMA_VERSION,
            tolerance,
            baseline_git_rev: baseline.git_rev.clone(),
            current_git_rev: current.git_rev.clone(),
            bootstrap: true,
            entries: Vec::new(),
            ok: true,
        };
    }
    let mut entries = Vec::new();
    let mut all_ok = true;
    for cur in &current.entries {
        let base = baseline.entries.iter().find(|b| b.name == cur.name);
        let e = match base {
            None => {
                all_ok = false;
                EntryCheck {
                    name: cur.name.clone(),
                    baseline_cycles_per_sec: 0.0,
                    current_cycles_per_sec: cur.cycles_per_sec,
                    ratio: f64::INFINITY,
                    sim_cycles_match: false,
                    ok: false,
                }
            }
            Some(b) => {
                let ratio = cur.cycles_per_sec / b.cycles_per_sec;
                let sim_cycles_match = cur.sim_cycles == b.sim_cycles;
                let ok = sim_cycles_match && ratio >= 1.0 - tolerance;
                all_ok &= ok;
                EntryCheck {
                    name: cur.name.clone(),
                    baseline_cycles_per_sec: b.cycles_per_sec,
                    current_cycles_per_sec: cur.cycles_per_sec,
                    ratio,
                    sim_cycles_match,
                    ok,
                }
            }
        };
        entries.push(e);
    }
    all_ok &= !entries.is_empty();
    CheckOutcome {
        schema_version: BENCH_SCHEMA_VERSION,
        tolerance,
        baseline_git_rev: baseline.git_rev.clone(),
        current_git_rev: current.git_rev.clone(),
        bootstrap: false,
        entries,
        ok: all_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, cps: f64, sim: u64) -> BenchEntry {
        BenchEntry {
            name: name.to_string(),
            config: "ndp_dynamic_cache".to_string(),
            workloads: vec!["VADD".to_string()],
            warps: 64,
            iters: 4,
            reps: 3,
            sim_cycles: sim,
            wall_ns: 1_000_000,
            cycles_per_sec: cps,
            ckpt_bytes: 0,
            ckpt_save_ns: 0,
            ckpt_restore_ns: 0,
            stage_idle: Vec::new(),
        }
    }

    fn doc(entries: Vec<BenchEntry>) -> BenchBaseline {
        BenchBaseline {
            schema_version: BENCH_SCHEMA_VERSION,
            git_rev: "test".to_string(),
            entries,
        }
    }

    #[test]
    fn check_passes_within_tolerance() {
        let base = doc(vec![entry("a", 1000.0, 5000)]);
        let cur = doc(vec![entry("a", 900.0, 5000)]);
        let out = check(&base, &cur, 0.15);
        assert!(out.ok, "{out:?}");
        assert!(out.entries[0].sim_cycles_match);
    }

    #[test]
    fn check_fails_on_regression() {
        let base = doc(vec![entry("a", 1000.0, 5000)]);
        let cur = doc(vec![entry("a", 800.0, 5000)]);
        let out = check(&base, &cur, 0.15);
        assert!(!out.ok);
        assert!((out.entries[0].ratio - 0.8).abs() < 1e-12);
    }

    #[test]
    fn check_fails_on_model_change() {
        // Same throughput, different simulated cycle count: the model
        // changed, so the committed baseline is stale.
        let base = doc(vec![entry("a", 1000.0, 5000)]);
        let cur = doc(vec![entry("a", 1000.0, 5001)]);
        let out = check(&base, &cur, 0.15);
        assert!(!out.ok);
        assert!(!out.entries[0].sim_cycles_match);
    }

    #[test]
    fn check_fails_on_unknown_entry_and_empty_current() {
        let base = doc(vec![entry("a", 1000.0, 5000)]);
        let cur = doc(vec![entry("new", 1000.0, 5000)]);
        assert!(!check(&base, &cur, 0.15).ok);
        assert!(
            !check(&base, &doc(vec![]), 0.15).ok,
            "empty check is not a pass"
        );
    }

    #[test]
    fn empty_baseline_is_bootstrap_pass() {
        // Nothing measured yet: the gate has nothing to hold against, and
        // must say so rather than fail every fresh checkout.
        let cur = doc(vec![entry("a", 1000.0, 5000)]);
        let out = check(&doc(vec![]), &cur, 0.15);
        assert!(out.ok, "{out:?}");
        assert!(out.bootstrap);
        assert!(out.entries.is_empty());
    }

    #[test]
    fn merge_weights_by_invocations_and_wall() {
        let a = vec![StagePerf {
            name: "edge:x".to_string(),
            invocations: 10,
            gated: 0,
            skipped: 10,
            idle: 4,
            moved: 6,
            routed: 10,
            est_wall_ns: 300,
            idle_frac: 0.4,
            skip_frac: 0.5,
            wall_frac: 1.0,
        }];
        let b = vec![StagePerf {
            name: "edge:x".to_string(),
            invocations: 30,
            gated: 0,
            skipped: 10,
            idle: 24,
            moved: 6,
            routed: 30,
            est_wall_ns: 100,
            idle_frac: 0.8,
            skip_frac: 0.25,
            wall_frac: 1.0,
        }];
        let merged = merge_stage_idle(&[a, b]);
        assert_eq!(merged.len(), 1);
        assert!((merged[0].idle_frac - 0.7).abs() < 1e-12, "{merged:?}");
        // 20 skipped cycles over (20 + 40) stage-cycles.
        assert!(
            (merged[0].skip_frac - 20.0 / 60.0).abs() < 1e-12,
            "{merged:?}"
        );
        assert!((merged[0].wall_frac - 1.0).abs() < 1e-12);
    }
}
