//! `obs_report` — run one workload with the observability layer enabled and
//! export its transaction-latency / occupancy / protocol-event report.
//!
//! Usage: `obs_report [WORKLOAD] [CONFIG]`
//!
//! `WORKLOAD` is a Table-1 name (default `VADD`); `CONFIG` is one of the
//! Fig. 9 configuration names (default `NDP(Dyn)_Cache`). The run honours
//! the usual `NDP_WARPS` / `NDP_ITERS` / `NDP_EPOCH` scale variables.
//!
//! Outputs:
//!   - a latency/occupancy summary table on stdout,
//!   - a per-stage simulator-performance table on stdout (the perf
//!     self-profile is always enabled here; see DESIGN.md §11),
//!   - `obs_trace.json`  — Chrome trace-event JSON (load in Perfetto),
//!   - `obs_metrics.json` — flat metrics document for scripts,
//!   - `perf_trace.json` — the self-profile as a Perfetto lane.

use ndp_common::obs::{ObsConfig, PerfConfig};
use ndp_core::experiments::fig9_configs;
use ndp_core::system::System;
use ndp_workloads::{workload, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let w: Workload = match args.get(1) {
        Some(name) => workload(name).unwrap_or_else(|| {
            eprintln!("error: unknown workload {name:?}; Table-1 names: VADD, BFS, ...");
            std::process::exit(2);
        }),
        None => Workload::Vadd,
    };
    let cfg_name = args.get(2).map(String::as_str).unwrap_or("NDP(Dyn)_Cache");
    let mut cfg = fig9_configs()
        .into_iter()
        .find(|(n, _)| *n == cfg_name)
        .map(|(_, c)| c)
        .unwrap_or_else(|| {
            let names: Vec<&str> = fig9_configs().iter().map(|(n, _)| *n).collect();
            eprintln!("error: unknown config {cfg_name:?}; one of {names:?}");
            std::process::exit(2);
        });
    cfg.hill_climb.epoch_cycles = ndp_common::env::parse_or_die("NDP_EPOCH").unwrap_or(30_000);

    let scale = ndp_bench::harness_scale();
    let program = w.build(&scale);
    let mut sys = System::new(cfg, &program);
    sys.enable_obs(ObsConfig::on());
    // Profile unconditionally: this binary exists to report, and the
    // strided timer keeps the cost negligible. `NDP_PERF_*` still tunes
    // stride/heartbeat cadence via the config constructor.
    let mut perf_cfg = PerfConfig::from_env();
    perf_cfg.enabled = true;
    sys.enable_perf(perf_cfg);
    let r = sys
        .run(ndp_core::experiments::DEFAULT_MAX_CYCLES)
        .expect("no protocol violation");

    println!(
        "obs_report: {} / {} — {} cycles, {} offload blocks completed\n",
        w.name(),
        cfg_name,
        r.cycles,
        r.offloaded
    );
    let report = r.obs.as_ref().expect("observability was enabled");
    println!("{}", report.summary_text());

    let perf = r.perf.as_ref().expect("profiling was enabled");
    println!("{}", perf.table_text());

    let trace_path = "obs_trace.json";
    let metrics_path = "obs_metrics.json";
    let perf_path = "perf_trace.json";
    std::fs::write(trace_path, report.chrome_trace_json()).expect("write trace");
    std::fs::write(metrics_path, report.metrics_json()).expect("write metrics");
    std::fs::write(perf_path, perf.chrome_trace_json()).expect("write perf trace");
    println!(
        "wrote {trace_path} and {perf_path} (open in https://ui.perfetto.dev) and {metrics_path}"
    );

    if r.timed_out {
        eprintln!(
            "error: run timed out at the safety cycle cap ({} cycles); \
             the report covers a truncated run",
            r.cycles
        );
        let strict = ndp_common::env::flag_or_die("NDP_STRICT_TIMEOUT").unwrap_or(false);
        if strict {
            std::process::exit(2);
        }
    }
}
