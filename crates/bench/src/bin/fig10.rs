//! Fig. 10 — normalized energy for baselines and NDP mechanisms (§7.4).

use ndp_core::experiments::fig10_configs;
use ndp_energy::EnergyParams;
use ndp_workloads::WORKLOADS;

fn main() {
    let m = ndp_bench::run(&fig10_configs(), &WORKLOADS);
    let params = EnergyParams::default();
    println!("Fig. 10: energy breakdown, normalized to Baseline total\n");
    let mut rows = vec![];
    let mut ratios: Vec<Vec<f64>> = vec![vec![]; m.configs.len()];
    for (wi, w) in m.workloads.iter().enumerate() {
        let base = m.results[0][wi].energy(&params).total();
        for (ci, c) in m.configs.iter().enumerate() {
            let e = m.results[ci][wi].energy(&params);
            ratios[ci].push(e.total() / base);
            rows.push(vec![
                w.name().to_string(),
                c.to_string(),
                format!("{:.3}", e.gpu / base),
                format!("{:.3}", e.nsu / base),
                format!("{:.3}", e.intra_hmc / base),
                format!("{:.3}", e.offchip / base),
                format!("{:.3}", e.dram / base),
                format!("{:.3}", e.total() / base),
            ]);
        }
    }
    println!(
        "{}",
        ndp_core::table::render(
            &[
                "Workload",
                "Config",
                "GPU",
                "NSU",
                "IntraHMC",
                "OffchipICNT",
                "DRAM",
                "Total"
            ],
            &rows
        )
    );
    for (ci, c) in m.configs.iter().enumerate() {
        let g = match ndp_common::stats::geomean(&ratios[ci]) {
            Some(g) => format!("{g:.3}"),
            None => "n/a".to_string(),
        };
        println!("GMEAN normalized energy, {c}: {g}");
    }
    println!("(paper: NDP(Dyn) −7.5% avg, NDP(Dyn)_Cache −8.6% avg, up to −37.6% for KMN)");
    ndp_bench::enforce_timeouts(&m);
}
