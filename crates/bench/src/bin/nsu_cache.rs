//! §7.1 suggested fix: "such a workload can benefit from adding a small
//! read-only cache to each NSU with minimal cost." Compares BPROP (the
//! workload that ships its hot 68 B structure off-chip on every offloaded
//! instance) with and without a 4 KB read-only NSU cache.

use ndp_common::SystemConfig;
use ndp_core::experiments::run_workload;
use ndp_workloads::Workload;

fn main() {
    let scale = ndp_bench::harness_scale();
    for w in [Workload::Bprop, Workload::Bicg] {
        let base = run_workload(w, SystemConfig::baseline(), &scale, 40_000_000);
        let plain = run_workload(w, SystemConfig::ndp_static(0.6), &scale, 40_000_000);
        let mut cfg = SystemConfig::ndp_static(0.6);
        cfg.nsu.readonly_cache_bytes = 4096;
        let cached = run_workload(w, cfg, &scale, 40_000_000);
        println!("=== {} (NDP at ratio 0.6) ===", w.name());
        println!(
            "  no NSU cache : {:.3}x speedup, {:>8} KB GPU-link traffic",
            base.cycles as f64 / plain.cycles as f64,
            plain.gpu_link_bytes / 1024
        );
        println!(
            "  4 KB RO cache: {:.3}x speedup, {:>8} KB GPU-link traffic",
            base.cycles as f64 / cached.cycles as f64,
            cached.gpu_link_bytes / 1024
        );
    }
}
