//! Fig. 7 — performance of the naive NDP mechanism vs the baselines (§6).

use ndp_core::experiments::fig7_configs;
use ndp_workloads::WORKLOADS;

fn main() {
    let m = ndp_bench::run(&fig7_configs(), &WORKLOADS);
    println!("Fig. 7: naive NDP vs baselines (speedup over Baseline)\n");
    ndp_bench::print_speedups(&m, "Baseline");
    ndp_bench::dump_json("fig7.json", &m);
    ndp_bench::enforce_timeouts(&m);
}
