//! Design-choice ablations (DESIGN.md §6): RDF cache probing, NSU command
//! buffer depth, and the Algorithm 1 epoch length.

use ndp_common::SystemConfig;
use ndp_core::experiments::run_workload;
use ndp_workloads::{workload, Workload};

fn main() {
    let scale = ndp_bench::harness_scale();
    let wl: Vec<Workload> = match std::env::args().nth(1) {
        Some(n) => vec![workload(&n).expect("workload name")],
        None => vec![Workload::Bprop, Workload::Kmn, Workload::Stn],
    };
    for w in wl {
        println!("=== {} ===", w.name());
        let base = run_workload(w, SystemConfig::baseline(), &scale, 40_000_000);
        let speed = |r: &ndp_core::RunResult| base.cycles as f64 / r.cycles as f64;

        // RDF cache-probe on/off under the dynamic policy.
        let on = run_workload(w, SystemConfig::ndp_dynamic(), &scale, 40_000_000);
        let mut cfg = SystemConfig::ndp_dynamic();
        cfg.nsu.rdf_probes_gpu_cache = false;
        let off = run_workload(w, cfg, &scale, 40_000_000);
        println!(
            "  RDF probes GPU cache: on {:.3}x  off {:.3}x  (link bytes {} vs {})",
            speed(&on),
            speed(&off),
            on.gpu_link_bytes,
            off.gpu_link_bytes
        );

        // Offload command buffer depth (concurrency throttle, §4.3).
        for entries in [2usize, 10, 32] {
            let mut cfg = SystemConfig::ndp_static(0.6);
            cfg.nsu.cmd_entries = entries;
            let r = run_workload(w, cfg, &scale, 40_000_000);
            println!("  cmd buffer {:>2} entries: {:.3}x", entries, speed(&r));
        }

        // Epoch length for the hill climber (§7.2).
        for epoch in [10_000u64, 30_000, 100_000] {
            let mut cfg = SystemConfig::ndp_dynamic();
            cfg.hill_climb.epoch_cycles = epoch;
            let r = run_workload(w, cfg, &scale, 40_000_000);
            println!(
                "  epoch {:>6} cycles: {:.3}x (achieved ratio {:.2})",
                epoch,
                speed(&r),
                r.offload_fraction()
            );
        }
    }
}
