//! §7.3 — sensitivity to a more powerful GPU: double the compute units in
//! every configuration (paper: the proposed mechanism still gains 11.6%).

use ndp_common::SystemConfig;
use ndp_workloads::WORKLOADS;

fn main() {
    let double = |mut c: SystemConfig| {
        c.gpu.num_sms *= 2;
        c
    };
    let configs = vec![
        ("Baseline(2x)", double(SystemConfig::baseline())),
        (
            "NDP(Dyn)_Cache(2x)",
            double(SystemConfig::ndp_dynamic_cache()),
        ),
    ];
    let m = ndp_bench::run(&configs, &WORKLOADS);
    println!("§7.3: doubled compute units (speedup over the 2x baseline)\n");
    ndp_bench::print_speedups(&m, "Baseline(2x)");
    println!("(paper: 11.6% average speedup with 2x compute units)");
}
