//! `ndp-lint` — the static verification suite, as a CLI gate.
//!
//! Runs both passes over everything the repository ships:
//!
//! * **Pass 1 (partition verifier)**: compiles every Table-1 workload and
//!   diffs each offload block's stored annotations (roles, live-in,
//!   live-out, NSU code) against an independent re-derivation from the
//!   program text (`ndp_isa::verify_blocks`).
//! * **Pass 2 (fabric graph)**: lifts the fabric pipeline into a static
//!   graph for every configuration preset and checks routing completeness,
//!   credit acquire/release pairing, and bounded wait-for cycles
//!   (`ndp_core::fabric_graph`).
//! * **Environment hygiene**: any `NDP_`-prefixed variable the simulator
//!   does not understand is reported as a likely typo.
//!
//! Exit codes: `0` everything clean, `1` findings were printed, `2` usage
//! error. CI runs this as the `lint-model` job.

use ndp_compiler::{compile, CompilerConfig};
use ndp_core::fabric_graph;
use ndp_workloads::{Scale, WORKLOADS};

use ndp_common::config::SystemConfig;

fn usage() -> ! {
    eprintln!(
        "usage: ndp_lint [--quiet] [--drop-edge NAME] [--drop-watch STAGE EDGE] \
         [--drop-wake STAGE SOURCE] [--drop-footprint NODE] [--footprint-report PATH]"
    );
    eprintln!("  static model checks; exits 1 if any finding is printed");
    eprintln!("  --drop-* flags mutate the lifted graph before checking (mutation");
    eprintln!("  testing: a dropped edge/watch/wake-source/footprint must produce a finding)");
    eprintln!("  --footprint-report writes the per-stage shared-state conflict report");
    eprintln!("  (the parallel-tick worklist) to PATH ('-' for stdout)");
    std::process::exit(2);
}

/// A graph mutation requested on the command line, applied to every
/// preset's lifted graph before checking. Used to demonstrate (in CI or by
/// hand) that the soundness passes actually catch a dropped pipeline edge,
/// an unwatched in-edge, an unobserved internal wake source, or a missing
/// shared-state footprint declaration.
#[allow(clippy::enum_variant_names)] // "Drop" is the operation, not noise
enum Mutation {
    DropEdge(String),
    DropWatch(String, String),
    DropWake(String, String),
    DropFootprint(String),
}

fn main() {
    let mut quiet = false;
    let mut mutations: Vec<Mutation> = Vec::new();
    let mut report_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--quiet" | "-q" => quiet = true,
            "--drop-edge" => mutations.push(Mutation::DropEdge(take())),
            "--drop-watch" => mutations.push(Mutation::DropWatch(take(), take())),
            "--drop-wake" => mutations.push(Mutation::DropWake(take(), take())),
            "--drop-footprint" => mutations.push(Mutation::DropFootprint(take())),
            "--footprint-report" => report_path = Some(take()),
            _ => usage(),
        }
    }

    let mut findings = 0usize;
    let mut emit = |line: String| {
        findings += 1;
        println!("{line}");
    };

    // Pass 1: every workload at both the smoke and the default scale (loop
    // trip counts differ, so the derived live sets can too).
    for (scale_name, scale) in [("tiny", Scale::tiny()), ("default", Scale::default())] {
        for w in WORKLOADS {
            let program = match w.try_build(&scale) {
                Ok(p) => p,
                Err(e) => {
                    emit(format!("{} [{scale_name}]: build failed: {e}", w.name()));
                    continue;
                }
            };
            let kernel = compile(&program, &CompilerConfig::default());
            for d in ndp_isa::verify_blocks(&kernel.program, &kernel.blocks) {
                emit(format!("{} [{scale_name}]: {d}", w.name()));
            }
        }
    }

    // Pass 2: the lifted fabric graph under every configuration preset.
    let presets: [(&str, SystemConfig); 6] = [
        ("baseline", SystemConfig::baseline()),
        ("baseline_more_core", SystemConfig::baseline_more_core()),
        ("naive_ndp", SystemConfig::naive_ndp()),
        ("ndp_static", SystemConfig::ndp_static(0.5)),
        ("ndp_dynamic", SystemConfig::ndp_dynamic()),
        ("ndp_dynamic_cache", SystemConfig::ndp_dynamic_cache()),
    ];
    for (name, cfg) in &presets {
        let mut g = fabric_graph(cfg);
        for m in &mutations {
            let applied = match m {
                Mutation::DropEdge(e) => g.remove_edge(e),
                Mutation::DropWatch(s, e) => g.remove_watch(s, e),
                Mutation::DropWake(s, w) => g.remove_wake(s, w),
                Mutation::DropFootprint(n) => g.remove_footprint(n),
            };
            if !applied {
                emit(format!("fabric [{name}]: mutation target not found"));
            }
        }
        for d in g.check() {
            emit(format!("fabric [{name}]: {d}"));
        }
    }

    // Conflict report: the per-stage shared-state footprints of the
    // canonical dynamic preset (the footprint registry is config-
    // independent), rendered from an *unmutated* graph — the report
    // documents the real machine even when mutations are being tested.
    if let Some(path) = &report_path {
        let report = fabric_graph(&SystemConfig::ndp_dynamic()).footprint_report();
        if path == "-" {
            print!("{report}");
        } else if let Err(e) = std::fs::write(path, &report) {
            eprintln!("ndp_lint: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }

    // Environment hygiene: unknown NDP_* names are almost always typos of a
    // real knob, and a typoed knob silently does nothing.
    for (var, suggestion) in ndp_common::env::unknown_ndp_vars() {
        match suggestion {
            Some(s) => emit(format!("env: unknown variable {var} (did you mean {s}?)")),
            None => emit(format!("env: unknown variable {var}")),
        }
    }

    if findings == 0 {
        if !quiet {
            let blocks: usize = WORKLOADS
                .iter()
                .map(|w| compile(&w.build(&Scale::default()), &CompilerConfig::default()))
                .map(|k| k.blocks.len())
                .sum();
            println!(
                "ndp-lint: clean ({} workloads x 2 scales, {blocks} offload blocks, {} fabric presets)",
                WORKLOADS.len(),
                presets.len()
            );
        }
        std::process::exit(0);
    }
    eprintln!("ndp-lint: {findings} finding(s)");
    std::process::exit(1);
}
