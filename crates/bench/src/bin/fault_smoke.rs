//! `fault_smoke` — robustness smoke test: wedge the credit protocol on
//! purpose and verify the watchdog diagnoses it.
//!
//! The run arms the deterministic fault injector in withhold-credits mode
//! (every NSU credit return is discarded), shrinks the command buffer so
//! the pools drain almost immediately, and arms the forward-progress
//! watchdog. A healthy robustness layer aborts the run early and attaches
//! a [`StallReport`] naming the starved credit pool; the report is printed
//! in full.
//!
//! Exit status: `0` when the wedge was detected and correctly diagnosed,
//! `1` otherwise — so CI can gate on it.
//!
//! Usage: `fault_smoke` (no arguments; `NDP_WATCHDOG` overrides the
//! default 4096-cycle threshold).

use ndp_common::config::SystemConfig;
use ndp_common::fault::FaultConfig;
use ndp_core::system::System;
use ndp_workloads::{Scale, Workload};

fn main() {
    let threshold: u64 = ndp_common::env::parse_or_die("NDP_WATCHDOG")
        .filter(|&t| t > 0)
        .unwrap_or(4_096);

    let mut cfg = SystemConfig::naive_ndp();
    cfg.gpu.num_sms = 8;
    cfg.nsu.cmd_entries = 2;
    let program = Workload::Vadd.build(&Scale {
        warps: 64,
        iters: 4,
    });

    let mut sys = System::new(cfg, &program);
    sys.set_watchdog(Some(threshold));
    sys.inject_faults(FaultConfig {
        withhold_credits: true,
        ..Default::default()
    });

    println!(
        "fault_smoke: withholding all NSU credit returns, watchdog threshold {threshold} cycles"
    );
    let r = match sys.run(200_000) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: expected a stall, got a protocol violation: {e}");
            std::process::exit(1);
        }
    };

    let Some(stall) = r.stall.as_deref() else {
        eprintln!(
            "FAIL: run {} without a StallReport (cycles {})",
            if r.timed_out {
                "timed out"
            } else {
                "completed"
            },
            r.cycles
        );
        std::process::exit(1);
    };

    println!("{stall}");
    if let Some(f) = r.faults {
        println!(
            "injected faults: {} credit returns withheld",
            f.credits_withheld
        );
    }

    let named = stall.to_string().contains("credit pool exhausted");
    let drained = stall.credits.iter().any(|c| c.in_use == c.capacity);
    if !r.timed_out || !named || !drained {
        eprintln!(
            "FAIL: diagnosis incomplete (timed_out={}, pool named={named}, pool drained={drained})",
            r.timed_out
        );
        std::process::exit(1);
    }
    println!(
        "OK: wedge detected at cycle {} ({} cycles without progress)",
        stall.cycle, stall.stalled_for
    );
}
