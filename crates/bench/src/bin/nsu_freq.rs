//! §7.6 — performance sensitivity to the NSU clock: 350 MHz vs 175 MHz
//! (paper: 175 MHz retains most of the benefit — 14.1% avg vs 17.9%).

use ndp_common::SystemConfig;
use ndp_workloads::WORKLOADS;

fn main() {
    let slow = |mut c: SystemConfig| {
        c.nsu.clock_mhz = 175;
        c
    };
    let configs = vec![
        ("Baseline", SystemConfig::baseline()),
        ("NDP@350MHz", SystemConfig::ndp_dynamic_cache()),
        ("NDP@175MHz", slow(SystemConfig::ndp_dynamic_cache())),
    ];
    let m = ndp_bench::run(&configs, &WORKLOADS);
    println!("§7.6: NSU frequency sensitivity (speedup over Baseline)\n");
    ndp_bench::print_speedups(&m, "Baseline");
}
