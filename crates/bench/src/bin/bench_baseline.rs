//! `bench_baseline` — measure core-simulator throughput and gate against
//! the committed `BENCH_core.json`.
//!
//! ```text
//! bench_baseline [--out PATH]        measure fig7_small + fig7_scale and
//!                                    write the baseline document
//!                                    (default: BENCH_core.json)
//! bench_baseline --check [PATH]      re-measure fig7_small and compare
//!                                    against the committed baseline;
//!                                    writes BENCH_check.json and exits 1
//!                                    on a regression
//! ```
//!
//! The regression tolerance is `NDP_PERF_TOL` (fraction, default 0.15):
//! a check fails when current cycles/sec drops below `1 - tol` of the
//! baseline, or when the deterministic simulated-cycle counts disagree
//! (the latter means the model changed and the baseline is stale — re-run
//! without `--check` and commit the new document).

use ndp_bench::baseline::{
    check, fig7_scale, fig7_small, git_rev, measure, BenchBaseline, BENCH_SCHEMA_VERSION,
};

fn usage() -> ! {
    eprintln!("usage: bench_baseline [--out PATH] | bench_baseline --check [PATH]");
    std::process::exit(2);
}

fn measure_doc(specs: &[ndp_bench::baseline::BenchSpec]) -> BenchBaseline {
    BenchBaseline {
        schema_version: BENCH_SCHEMA_VERSION,
        git_rev: git_rev(),
        entries: specs
            .iter()
            .map(|s| {
                eprintln!(
                    "measuring {} ({} x{} warps={} iters={} reps={})...",
                    s.name,
                    s.config_name,
                    s.workloads.len(),
                    s.scale.warps,
                    s.scale.iters,
                    s.reps
                );
                measure(s)
            })
            .collect(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_core.json".to_string();
    let mut check_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--check" => {
                check_path = Some(match args.get(i + 1) {
                    Some(p) if !p.starts_with("--") => {
                        i += 1;
                        p.clone()
                    }
                    _ => "BENCH_core.json".to_string(),
                });
            }
            _ => usage(),
        }
        i += 1;
    }

    match check_path {
        None => {
            let doc = measure_doc(&[fig7_small(), fig7_scale()]);
            let json = ndp_bench::jsonio::baseline_to_json(&doc);
            std::fs::write(&out_path, json + "\n").expect("write baseline");
            for e in &doc.entries {
                println!(
                    "{:12} {:>12} sim cycles  {:>10.0} cycles/sec  ({:.3} s best of {})",
                    e.name,
                    e.sim_cycles,
                    e.cycles_per_sec,
                    e.wall_ns as f64 / 1e9,
                    e.reps
                );
                println!(
                    "{:12} checkpoint: {} bytes, save {:.2} ms, restore {:.2} ms",
                    "",
                    e.ckpt_bytes,
                    e.ckpt_save_ns as f64 / 1e6,
                    e.ckpt_restore_ns as f64 / 1e6
                );
            }
            println!("wrote {out_path} (rev {})", doc.git_rev);
        }
        Some(path) => {
            let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("error: cannot read baseline {path}: {e}");
                std::process::exit(2);
            });
            let base: BenchBaseline =
                ndp_bench::jsonio::baseline_from_json(&raw).unwrap_or_else(|e| {
                    eprintln!("error: cannot parse baseline {path}: {e}");
                    std::process::exit(2);
                });
            if base.schema_version != BENCH_SCHEMA_VERSION {
                eprintln!(
                    "error: baseline schema v{} != supported v{BENCH_SCHEMA_VERSION}",
                    base.schema_version
                );
                std::process::exit(2);
            }
            let tol: f64 = ndp_common::env::parse_or_die("NDP_PERF_TOL").unwrap_or(0.15);
            // The check re-measures only the small scenario: it is the CI
            // smoke gate, and fig7_scale exists for local deep runs.
            let cur = measure_doc(&[fig7_small()]);
            let outcome = check(&base, &cur, tol);
            let json = ndp_bench::jsonio::check_to_json(&outcome);
            std::fs::write("BENCH_check.json", json + "\n").expect("write check outcome");
            if outcome.bootstrap {
                eprintln!(
                    "notice: {path} carries no measurements yet (bootstrap baseline); \
                     nothing gated. Populate it on the reference machine with \
                     `bench_baseline --out {path}` and commit the result."
                );
            }
            for e in &outcome.entries {
                println!(
                    "{:12} baseline {:>10.0} c/s  current {:>10.0} c/s  ratio {:.3}  sim_cycles {}  [{}]",
                    e.name,
                    e.baseline_cycles_per_sec,
                    e.current_cycles_per_sec,
                    e.ratio,
                    if e.sim_cycles_match { "match" } else { "MISMATCH" },
                    if e.ok { "ok" } else { "FAIL" }
                );
            }
            println!(
                "tolerance {:.0}%  baseline rev {}  current rev {}  -> {}",
                tol * 100.0,
                outcome.baseline_git_rev,
                outcome.current_git_rev,
                if outcome.ok { "PASS" } else { "FAIL" }
            );
            if !outcome.ok {
                eprintln!(
                    "error: core throughput check failed (see BENCH_check.json); \
                     if the model intentionally changed, regenerate the baseline \
                     with `bench_baseline --out BENCH_core.json` and commit it"
                );
                std::process::exit(1);
            }
        }
    }
}
