//! Fig. 11 — NSU I-cache utilization and warp occupancy (§7.5).

use ndp_common::SystemConfig;
use ndp_core::experiments::run_workload;
use ndp_workloads::WORKLOADS;

fn main() {
    let scale = ndp_bench::harness_scale();
    println!("Fig. 11: NSU I-cache utilization and average warp occupancy\n");
    let mut rows = vec![];
    let mut occ = vec![];
    let mut icu = vec![];
    for w in WORKLOADS {
        let r = run_workload(w, SystemConfig::ndp_dynamic_cache(), &scale, 40_000_000);
        rows.push(vec![
            w.name().to_string(),
            format!("{:.1}%", r.nsu_icache_util * 100.0),
            format!("{:.1}%", r.nsu_occupancy * 100.0),
        ]);
        occ.push(r.nsu_occupancy);
        icu.push(r.nsu_icache_util);
    }
    println!(
        "{}",
        ndp_core::table::render(&["Workload", "I-cache util", "warp occupancy"], &rows)
    );
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "averages: icache {:.1}% (paper 23.7%), occupancy {:.1}% (paper 22.1%, max 39.3%)",
        avg(&icu) * 100.0,
        avg(&occ) * 100.0
    );
}
