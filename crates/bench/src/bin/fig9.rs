//! Fig. 9 — static offload ratios 0.2–1.0, NDP(Dyn), NDP(Dyn)_Cache (§7).

use ndp_core::experiments::fig9_configs;
use ndp_workloads::WORKLOADS;

fn main() {
    let m = ndp_bench::run(&fig9_configs(), &WORKLOADS);
    println!("Fig. 9: NDP speedup over Baseline as the offload ratio varies\n");
    ndp_bench::print_speedups(&m, "Baseline");
    ndp_bench::dump_json("fig9.json", &m);
    // Achieved dynamic ratios, for the record.
    let dyn_i = m.config_index("NDP(Dyn)").expect("present");
    println!("achieved offload fraction under NDP(Dyn):");
    for (wi, w) in m.workloads.iter().enumerate() {
        println!(
            "  {:8} {:.2}",
            w.name(),
            m.results[dyn_i][wi].offload_fraction()
        );
    }
    ndp_bench::enforce_timeouts(&m);
}
