//! §7.5 — GPU-side hardware overhead of the NDP buffers.

use ndp_common::SystemConfig;
use ndp_core::experiments::run_workload;
use ndp_workloads::{Workload, WORKLOADS};

fn main() {
    let c = SystemConfig::default();
    let buf = c.sm_ndp_buffer_bytes();
    let total = c.sm_onchip_storage_bytes();
    println!("§7.5: hardware overhead\n");
    println!("per-SM NDP packet buffers : {} B (paper: 2.84 KB)", buf);
    println!(
        "fraction of on-chip storage: {:.1}% (paper: 1.8%)",
        buf as f64 / total as f64 * 100.0
    );
    // Observed peak buffer occupancy across a representative NDP run.
    let scale = ndp_bench::harness_scale();
    let mut worst = (0usize, 0usize);
    for w in [Workload::Vadd, Workload::Kmn, Workload::Bfs] {
        let r = run_workload(w, SystemConfig::naive_ndp(), &scale, 40_000_000);
        worst.0 = worst.0.max(r.sm_buffer_peaks.0);
        worst.1 = worst.1.max(r.sm_buffer_peaks.1);
    }
    println!(
        "peak occupancy observed     : pending {} / {} entries, ready {} / {}",
        worst.0, c.nsu.sm_pending_entries, worst.1, c.nsu.sm_ready_entries
    );
    let _ = WORKLOADS;
}
