//! Table 1 — evaluated workloads and their offload-block sizes, as
//! extracted by the static analyzer (§3.1).

use ndp_compiler::{compile, table1_row, CompilerConfig};
use ndp_workloads::{Scale, WORKLOADS};

fn main() {
    let scale = Scale::tiny(); // block structure is scale-invariant
    let mut rows = vec![];
    let mut tot_in = 0.0;
    let mut tot_out = 0.0;
    let mut nblocks = 0.0;
    for w in WORKLOADS {
        let p = w.build(&scale);
        let ck = compile(&p, &CompilerConfig::default());
        let row = table1_row(w.name(), w.description(), &ck);
        tot_in += row.avg_regs_in * ck.blocks.len() as f64;
        tot_out += row.avg_regs_out * ck.blocks.len() as f64;
        nblocks += ck.blocks.len() as f64;
        rows.push(vec![
            w.name().to_string(),
            w.description().to_string(),
            row.sizes_string(),
            format!("{:?}", w.table1_sizes()),
        ]);
    }
    println!("Table 1: workloads and offload-block sizes (NSU instructions)\n");
    println!(
        "{}",
        ndp_core::table::render(
            &["Abbr.", "Description", "# instrs (measured)", "paper"],
            &rows
        )
    );
    println!(
        "avg registers transferred per block: {:.2} in / {:.2} out (paper: 0.41 / 0.47)",
        tot_in / nblocks,
        tot_out / nblocks
    );
}
