//! §7.1 fine-grained ratio study: "The performance of BICG did not improve
//! with the evaluated static offloading but it was due to the large
//! granularity we used to change the offload ratio ... the offload ratio of
//! 0.15 resulted in an 11.5% speedup."

use ndp_common::SystemConfig;
use ndp_core::experiments::run_workload;
use ndp_workloads::Workload;

fn main() {
    let scale = ndp_bench::harness_scale();
    let base = run_workload(Workload::Bicg, SystemConfig::baseline(), &scale, 40_000_000);
    println!("§7.1: BICG at fine-grained offload ratios (speedup over baseline)\n");
    let mut best = (0.0f64, 0.0f64);
    for r in [0.05, 0.10, 0.15, 0.20, 0.25, 0.30] {
        let run = run_workload(
            Workload::Bicg,
            SystemConfig::ndp_static(r),
            &scale,
            40_000_000,
        );
        let sp = base.cycles as f64 / run.cycles as f64;
        if sp > best.1 {
            best = (r, sp);
        }
        println!("  ratio {:.2}: {:.3}x", r, sp);
    }
    println!(
        "\nbest fine ratio: {:.2} at {:.3}x (paper: 0.15 at 1.115x)",
        best.0, best.1
    );
}
