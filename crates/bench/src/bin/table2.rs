//! Table 2 — the active system configuration, with derived bandwidths.

use ndp_common::SystemConfig;

fn main() {
    let c = SystemConfig::default();
    println!("Table 2: system configuration\n");
    println!(
        "{}",
        serde_json::to_string_pretty(&c).expect("serializable")
    );
    println!();
    println!("derived:");
    println!(
        "  GPU off-chip bandwidth : {:.0} GB/s per direction",
        c.gpu_offchip_gbps()
    );
    println!(
        "  aggregate DRAM bandwidth: {:.0} GB/s",
        c.aggregate_dram_gbps()
    );
    println!(
        "  NSU clock divider       : {} (SM {} MHz / NSU {} MHz)",
        c.nsu_divider(),
        c.gpu.sm_clock_mhz,
        c.nsu.clock_mhz
    );
    println!(
        "  SM NDP buffer storage   : {} B per SM (paper: 2.84 KB)",
        c.sm_ndp_buffer_bytes()
    );
}
