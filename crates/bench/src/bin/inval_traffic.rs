//! §4.2 — cache-invalidation traffic overhead of NSU writes, relative to
//! the workload's baseline off-chip traffic (paper: ≤1.42%, avg 0.38%).

use ndp_common::SystemConfig;
use ndp_core::experiments::run_workload;
use ndp_workloads::WORKLOADS;

fn main() {
    let scale = ndp_bench::harness_scale();
    println!("§4.2: cache-invalidation traffic overhead\n");
    let mut rows = vec![];
    let mut fracs = vec![];
    for w in WORKLOADS {
        let base = run_workload(w, SystemConfig::baseline(), &scale, 40_000_000);
        let ndp = run_workload(w, SystemConfig::ndp_dynamic_cache(), &scale, 40_000_000);
        let frac = ndp.inval_bytes as f64 / base.gpu_link_bytes.max(1) as f64;
        fracs.push(frac);
        rows.push(vec![
            w.name().to_string(),
            format!("{}", ndp.inval_bytes),
            format!("{:.3}%", frac * 100.0),
        ]);
    }
    println!(
        "{}",
        ndp_core::table::render(&["Workload", "inval bytes", "overhead"], &rows)
    );
    let avg = fracs.iter().sum::<f64>() / fracs.len() as f64;
    let max = fracs.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "avg {:.2}% (paper 0.38%), max {:.2}% (paper 1.42%)",
        avg * 100.0,
        max * 100.0
    );
}
