//! Fig. 8 — breakdown of instruction no-issue cycles on the GPU (§6),
//! normalized to the baseline's total no-issue cycles.

use ndp_core::experiments::fig7_configs;
use ndp_workloads::WORKLOADS;

fn main() {
    let m = ndp_bench::run(&fig7_configs(), &WORKLOADS);
    println!("Fig. 8: no-issue cycle breakdown (normalized to Baseline total)\n");
    let mut rows = vec![];
    for (wi, w) in m.workloads.iter().enumerate() {
        let base_total = m.results[0][wi].issue.no_issue_total() as f64;
        for (ci, c) in m.configs.iter().enumerate() {
            let s = &m.results[ci][wi].issue;
            rows.push(vec![
                w.name().to_string(),
                c.to_string(),
                format!("{:.3}", s.exec_unit_busy as f64 / base_total),
                format!("{:.3}", s.dependency_stall as f64 / base_total),
                format!("{:.3}", s.warp_idle as f64 / base_total),
                format!("{:.3}", s.no_issue_total() as f64 / base_total),
            ]);
        }
    }
    println!(
        "{}",
        ndp_core::table::render(
            &[
                "Workload",
                "Config",
                "ExecUnitBusy",
                "DependencyStall",
                "WarpIdle",
                "Total"
            ],
            &rows
        )
    );
    println!("Expected shape (paper): NaiveNDP inflates WarpIdle (warps blocked on ACKs).");
}
