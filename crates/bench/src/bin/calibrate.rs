//! Quick calibration sweep: Baseline vs NaiveNDP vs NDP(0.4) per workload,
//! with wall-clock timing per simulation. Not one of the paper figures —
//! a development aid.

use ndp_common::SystemConfig;
use ndp_core::experiments::run_workload;
use ndp_workloads::WORKLOADS;

fn main() {
    let scale = ndp_bench::harness_scale();
    println!("scale: {} warps × {} iters", scale.warps, scale.iters);
    for w in WORKLOADS {
        let t0 = std::time::Instant::now();
        let base = run_workload(w, SystemConfig::baseline(), &scale, 40_000_000);
        let t1 = std::time::Instant::now();
        let naive = run_workload(w, SystemConfig::naive_ndp(), &scale, 40_000_000);
        let t2 = std::time::Instant::now();
        let half = run_workload(w, SystemConfig::ndp_static(0.4), &scale, 40_000_000);
        println!(
            "{:8} base {:>9}cy ({:>5.1}s) naive x{:.3} ({:.1}s, ofl {:.2}, nsu {}) s0.4 x{:.3} | link {:>6}KB->{:<6}KB memnet {:>6}KB {}{}",
            w.name(),
            base.cycles,
            t1.duration_since(t0).as_secs_f64(),
            base.cycles as f64 / naive.cycles as f64,
            t2.duration_since(t1).as_secs_f64(),
            naive.offload_fraction(),
            naive.nsu_instrs,
            base.cycles as f64 / half.cycles as f64,
            base.gpu_link_bytes / 1024,
            naive.gpu_link_bytes / 1024,
            naive.memnet_bytes / 1024,
            if base.timed_out { "BASE-TIMEOUT " } else { "" },
            if naive.timed_out { "NAIVE-TIMEOUT" } else { "" },
        );
    }
}
