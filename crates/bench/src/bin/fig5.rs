//! Fig. 5 — impact of the target-NSU selection policy on off-chip traffic.

use ndp_core::fig5::sweep;

fn main() {
    let pts = sweep(8, 64, 20_000, 0x5C17);
    println!("Fig. 5: normalized traffic vs #memory accesses (8 HMCs)\n");
    let rows: Vec<Vec<String>> = pts
        .iter()
        .filter(|p| p.accesses == 1 || p.accesses % 4 == 0)
        .map(|p| {
            vec![
                p.accesses.to_string(),
                format!("{:.3}", p.optimal),
                format!("{:.3}", p.first),
                format!("{:+.1}%", p.overhead() * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        ndp_core::table::render(
            &["#accesses", "optimal HMC", "first HMC", "overhead"],
            &rows
        )
    );
    let worst = pts.iter().map(|p| p.overhead()).fold(0.0f64, f64::max);
    println!(
        "worst-case overhead of the first-HMC policy: {:.1}% (paper: ≤15%)",
        worst * 100.0
    );
}
