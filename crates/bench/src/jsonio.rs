//! Hand-rolled JSON emit/parse for the baseline documents.
//!
//! `BENCH_core.json` must be writable and readable in every build of the
//! workspace, including offline ones where `serde_json` may be stubbed out
//! (the committed obs exporters set the precedent: hand-rolled JSON, no
//! serializer required). The document shapes are small and fixed, so a
//! ~100-line emitter/parser is cheaper than a serializer dependency in the
//! binary's critical path. The serde derives on the types stay: external
//! tooling can still deserialize the files with full serde.

use crate::baseline::{BenchBaseline, BenchEntry, CheckOutcome, EntryCheck, StageIdle};

// ---------------------------------------------------------------- emitting

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `f64` in a form `parse::<f64>` round-trips (always with a decimal point
/// or exponent so the value re-reads as a float, not an integer).
fn num(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no Inf/NaN; the ratio of a missing entry is the only
        // producer and `null` keeps the document parseable everywhere.
        "null".to_string()
    }
}

fn stage_idle_json(s: &StageIdle, ind: &str) -> String {
    format!(
        "{ind}{{ \"stage\": \"{}\", \"idle_frac\": {}, \"skip_frac\": {}, \"wall_frac\": {} }}",
        esc(&s.stage),
        num(s.idle_frac),
        num(s.skip_frac),
        num(s.wall_frac),
    )
}

fn entry_json(e: &BenchEntry) -> String {
    let workloads: Vec<String> = e
        .workloads
        .iter()
        .map(|w| format!("\"{}\"", esc(w)))
        .collect();
    let stages: Vec<String> = e
        .stage_idle
        .iter()
        .map(|s| stage_idle_json(s, "        "))
        .collect();
    format!(
        "    {{\n      \"name\": \"{}\",\n      \"config\": \"{}\",\n      \"workloads\": [{}],\n      \
         \"warps\": {},\n      \"iters\": {},\n      \"reps\": {},\n      \"sim_cycles\": {},\n      \
         \"wall_ns\": {},\n      \"cycles_per_sec\": {},\n      \"ckpt_bytes\": {},\n      \
         \"ckpt_save_ns\": {},\n      \"ckpt_restore_ns\": {},\n      \"stage_idle\": [\n{}\n      ]\n    }}",
        esc(&e.name),
        esc(&e.config),
        workloads.join(", "),
        e.warps,
        e.iters,
        e.reps,
        e.sim_cycles,
        e.wall_ns,
        num(e.cycles_per_sec),
        e.ckpt_bytes,
        e.ckpt_save_ns,
        e.ckpt_restore_ns,
        stages.join(",\n"),
    )
}

/// Render a baseline document as pretty-printed JSON (no trailing newline).
pub fn baseline_to_json(doc: &BenchBaseline) -> String {
    let entries: Vec<String> = doc.entries.iter().map(entry_json).collect();
    format!(
        "{{\n  \"schema_version\": {},\n  \"git_rev\": \"{}\",\n  \"entries\": [\n{}\n  ]\n}}",
        doc.schema_version,
        esc(&doc.git_rev),
        entries.join(",\n"),
    )
}

/// Render a check outcome as pretty-printed JSON (no trailing newline).
pub fn check_to_json(o: &CheckOutcome) -> String {
    let entries: Vec<String> = o
        .entries
        .iter()
        .map(|e| {
            format!(
                "    {{ \"name\": \"{}\", \"baseline_cycles_per_sec\": {}, \
                 \"current_cycles_per_sec\": {}, \"ratio\": {}, \"sim_cycles_match\": {}, \"ok\": {} }}",
                esc(&e.name),
                num(e.baseline_cycles_per_sec),
                num(e.current_cycles_per_sec),
                num(e.ratio),
                e.sim_cycles_match,
                e.ok,
            )
        })
        .collect();
    format!(
        "{{\n  \"schema_version\": {},\n  \"tolerance\": {},\n  \"baseline_git_rev\": \"{}\",\n  \
         \"current_git_rev\": \"{}\",\n  \"bootstrap\": {},\n  \"entries\": [\n{}\n  ],\n  \"ok\": {}\n}}",
        o.schema_version,
        num(o.tolerance),
        esc(&o.baseline_git_rev),
        esc(&o.current_git_rev),
        o.bootstrap,
        entries.join(",\n"),
        o.ok,
    )
}

// ----------------------------------------------------------------- parsing

/// Minimal JSON value tree — just enough to read the documents back.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn str_or(&self, key: &str, default: &str) -> String {
        match self.get(key) {
            Some(Json::Str(s)) => s.clone(),
            _ => default.to_string(),
        }
    }
    fn f64_or(&self, key: &str, default: f64) -> f64 {
        match self.get(key) {
            Some(Json::Num(n)) => *n,
            _ => default,
        }
    }
    fn u64_or(&self, key: &str, default: u64) -> u64 {
        self.f64_or(key, default as f64) as u64
    }
}

struct Parser<'a> {
    s: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.at < self.s.len() && self.s[self.at].is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.s.get(self.at) == Some(&c) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {} (found {:?})",
                c as char,
                self.at,
                self.s.get(self.at).map(|b| *b as char)
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.at).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.ws();
        if self.s[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("expected {word} at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.ws();
        let start = self.at;
        while self
            .s
            .get(self.at)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.at += 1;
        }
        std::str::from_utf8(&self.s[start..self.at])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.at) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.s.get(self.at) {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.at + 1..self.at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        Some(&c) => out.push(c as char),
                        None => return Err("unterminated escape".into()),
                    }
                    self.at += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let len = match c {
                        c if c < 0x80 => 1,
                        c if c >= 0xf0 => 4,
                        c if c >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .s
                        .get(self.at..self.at + len)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or("bad UTF-8 in string")?;
                    out.push_str(chunk);
                    self.at += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(out));
                }
                other => return Err(format!("expected , or ] in array, found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            out.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(out));
                }
                other => return Err(format!("expected , or }} in object, found {other:?}")),
            }
        }
    }
}

fn parse_value(raw: &str) -> Result<Json, String> {
    let mut p = Parser {
        s: raw.as_bytes(),
        at: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.at != p.s.len() {
        return Err(format!("trailing content at byte {}", p.at));
    }
    Ok(v)
}

/// Parse a `BENCH_core.json` document. Unknown fields are ignored; missing
/// fields fall back to zero/empty so older documents stay readable.
pub fn baseline_from_json(raw: &str) -> Result<BenchBaseline, String> {
    let v = parse_value(raw)?;
    let entries = match v.get("entries") {
        Some(Json::Arr(list)) => list
            .iter()
            .map(|e| BenchEntry {
                name: e.str_or("name", ""),
                config: e.str_or("config", ""),
                workloads: match e.get("workloads") {
                    Some(Json::Arr(ws)) => ws
                        .iter()
                        .filter_map(|w| match w {
                            Json::Str(s) => Some(s.clone()),
                            _ => None,
                        })
                        .collect(),
                    _ => Vec::new(),
                },
                warps: e.u64_or("warps", 0) as u32,
                iters: e.u64_or("iters", 0) as u32,
                reps: e.u64_or("reps", 0) as u32,
                sim_cycles: e.u64_or("sim_cycles", 0),
                wall_ns: e.u64_or("wall_ns", 0),
                cycles_per_sec: e.f64_or("cycles_per_sec", 0.0),
                ckpt_bytes: e.u64_or("ckpt_bytes", 0),
                ckpt_save_ns: e.u64_or("ckpt_save_ns", 0),
                ckpt_restore_ns: e.u64_or("ckpt_restore_ns", 0),
                stage_idle: match e.get("stage_idle") {
                    Some(Json::Arr(ss)) => ss
                        .iter()
                        .map(|s| StageIdle {
                            stage: s.str_or("stage", ""),
                            idle_frac: s.f64_or("idle_frac", 0.0),
                            skip_frac: s.f64_or("skip_frac", 0.0),
                            wall_frac: s.f64_or("wall_frac", 0.0),
                        })
                        .collect(),
                    _ => Vec::new(),
                },
            })
            .collect(),
        _ => Vec::new(),
    };
    Ok(BenchBaseline {
        schema_version: v.u64_or("schema_version", 0) as u32,
        git_rev: v.str_or("git_rev", "unknown"),
        entries,
    })
}

/// Parse a `BENCH_check.json` document (round-trip coverage for the check
/// artifact CI uploads).
pub fn check_from_json(raw: &str) -> Result<CheckOutcome, String> {
    let v = parse_value(raw)?;
    let entries = match v.get("entries") {
        Some(Json::Arr(list)) => list
            .iter()
            .map(|e| EntryCheck {
                name: e.str_or("name", ""),
                baseline_cycles_per_sec: e.f64_or("baseline_cycles_per_sec", 0.0),
                current_cycles_per_sec: e.f64_or("current_cycles_per_sec", 0.0),
                ratio: e.f64_or("ratio", f64::INFINITY),
                sim_cycles_match: matches!(e.get("sim_cycles_match"), Some(Json::Bool(true))),
                ok: matches!(e.get("ok"), Some(Json::Bool(true))),
            })
            .collect(),
        _ => Vec::new(),
    };
    Ok(CheckOutcome {
        schema_version: v.u64_or("schema_version", 0) as u32,
        tolerance: v.f64_or("tolerance", 0.0),
        baseline_git_rev: v.str_or("baseline_git_rev", "unknown"),
        current_git_rev: v.str_or("current_git_rev", "unknown"),
        bootstrap: matches!(v.get("bootstrap"), Some(Json::Bool(true))),
        entries,
        ok: matches!(v.get("ok"), Some(Json::Bool(true))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BENCH_SCHEMA_VERSION;

    fn doc() -> BenchBaseline {
        BenchBaseline {
            schema_version: BENCH_SCHEMA_VERSION,
            git_rev: "abc123def456".to_string(),
            entries: vec![BenchEntry {
                name: "fig7_small".to_string(),
                config: "ndp_dynamic_cache".to_string(),
                workloads: vec!["VADD".to_string(), "BFS".to_string()],
                warps: 64,
                iters: 4,
                reps: 3,
                sim_cycles: 1_234_567,
                wall_ns: 987_654_321,
                cycles_per_sec: 1_249_999.5,
                ckpt_bytes: 262_144,
                ckpt_save_ns: 1_500_000,
                ckpt_restore_ns: 2_500_000,
                stage_idle: vec![StageIdle {
                    stage: "edge:sm_out".to_string(),
                    idle_frac: 0.25,
                    skip_frac: 0.5,
                    wall_frac: 0.125,
                }],
            }],
        }
    }

    #[test]
    fn baseline_round_trips() {
        let d = doc();
        let json = baseline_to_json(&d);
        let back = baseline_from_json(&json).expect("parse");
        assert_eq!(back, d);
    }

    #[test]
    fn check_round_trips() {
        let o = CheckOutcome {
            schema_version: BENCH_SCHEMA_VERSION,
            tolerance: 0.15,
            baseline_git_rev: "aaa".to_string(),
            current_git_rev: "bbb".to_string(),
            bootstrap: false,
            entries: vec![EntryCheck {
                name: "fig7_small".to_string(),
                baseline_cycles_per_sec: 100.0,
                current_cycles_per_sec: 550.0,
                ratio: 5.5,
                sim_cycles_match: true,
                ok: true,
            }],
            ok: true,
        };
        let back = check_from_json(&check_to_json(&o)).expect("parse");
        assert_eq!(back, o);
    }

    #[test]
    fn bootstrap_document_parses() {
        // The committed pre-measurement shape: a note field (ignored),
        // empty entries.
        let raw =
            r#"{ "note": "bootstrap", "schema_version": 1, "git_rev": "unseeded", "entries": [] }"#;
        let d = baseline_from_json(raw).expect("parse");
        assert!(d.entries.is_empty());
        assert_eq!(d.git_rev, "unseeded");
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(baseline_from_json("{ \"entries\": [").is_err());
        assert!(baseline_from_json("not json").is_err());
        assert!(baseline_from_json("{} trailing").is_err());
    }
}
