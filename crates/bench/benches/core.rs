//! Criterion benchmarks of the core simulator loop, paired with the
//! `bench_baseline` binary: the `core` group times the same fig7 scenarios
//! that `BENCH_core.json` records, and the `fabric` group isolates the
//! packet-movement primitive (`run_edge` over typed ports) that the
//! cycle-skipping rework will touch first.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;

use ndp_bench::baseline::{fig7_scale, fig7_small, run_once};
use ndp_common::error::SimError;
use ndp_common::ids::{Cycle, Node};
use ndp_common::obs::TraceSite;
use ndp_common::packet::{Packet, PacketKind, NO_BLOCK};
use ndp_common::port::{run_edge, Edge, FabricCtx, OutPort};

fn bench_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("core");
    g.sample_size(10);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(8));
    let small = fig7_small();
    g.bench_function("fig7_small", |b| b.iter(|| black_box(run_once(&small))));
    let scale = fig7_scale();
    g.measurement_time(Duration::from_secs(15));
    g.bench_function("fig7_scale", |b| b.iter(|| black_box(run_once(&scale))));
    g.finish();
}

/// Minimal fabric machine: N transmit lanes draining into one bounded
/// receive queue — the same shape as every edge of the real pipeline, with
/// no model behind it, so the measurement is the movement loop itself.
struct Rig {
    tx: Vec<OutPort>,
    rx: OutPort,
}

impl FabricCtx for Rig {
    type Tx = ();
    type Rx = ();
    type Comp = ();
    type Gate = ();
    type Side = ();

    fn lanes(&self, _: ()) -> usize {
        self.tx.len()
    }
    fn gate_open(&self, _: (), _: Cycle) -> bool {
        true
    }
    fn peek(&self, _: Cycle, _: (), lane: usize) -> Option<&Packet> {
        self.tx[lane].front()
    }
    fn route(&self, _: Cycle, _: (), _: usize, _: &Packet) -> Result<(), SimError> {
        Ok(())
    }
    fn can_accept(&self, _: (), _: &Packet) -> bool {
        self.rx.can_accept()
    }
    fn pop(&mut self, _: Cycle, _: (), lane: usize) -> Packet {
        self.tx[lane].pop_front().expect("peeked")
    }
    fn accept(&mut self, _: Cycle, _: (), p: Packet) -> Result<(), SimError> {
        self.rx.push_back(p);
        Ok(())
    }
    fn tick_comp(&mut self, _: Cycle, _: ()) {}
    fn side(&mut self, _: Cycle, _: ()) {}
    fn observe(&mut self, _: Cycle, _: TraceSite, _: &Packet) {}
}

fn pkt(tag: u64) -> Packet {
    Packet::new(
        Node::Sm(0),
        Node::L2(0),
        0,
        PacketKind::ReadReq {
            addr: 0x1000 + tag * 128,
            bytes: 128,
            tag,
            block: NO_BLOCK,
        },
    )
}

fn loaded_rig(lanes: usize, depth: u64) -> Rig {
    let mut rig = Rig {
        tx: (0..lanes).map(|_| OutPort::unbounded()).collect(),
        rx: OutPort::unbounded(),
    };
    for lane in 0..lanes {
        for i in 0..depth {
            rig.tx[lane].push_back(pkt(lane as u64 * depth + i));
        }
    }
    rig
}

fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric");
    let edge = Edge::<Rig> { tx: (), site: None };

    // Full drain: 8 lanes × 64 packets through one edge.
    g.bench_function("run_edge_drain_8x64", |b| {
        b.iter_batched(
            || loaded_rig(8, 64),
            |mut rig| {
                let moved = run_edge(&mut rig, 0, &edge).expect("routable");
                black_box(moved)
            },
            BatchSize::SmallInput,
        )
    });

    // Idle scan: the per-cycle cost of an edge with nothing to move —
    // exactly what the cycle-skipping rework wants to eliminate.
    g.bench_function("run_edge_idle_64_lanes", |b| {
        let mut rig = loaded_rig(64, 0);
        b.iter(|| {
            let moved = run_edge(&mut rig, 0, &edge).expect("routable");
            black_box(moved)
        })
    });

    // Port churn: push/pop through one bounded queue.
    g.bench_function("outport_churn", |b| {
        let mut port = OutPort::new(16);
        let mut tag = 0u64;
        b.iter(|| {
            while port.can_accept() {
                port.push_back(pkt(tag));
                tag += 1;
            }
            while let Some(p) = port.pop_front() {
                black_box(p.birth);
            }
        })
    });

    g.finish();
}

criterion_group!(core_benches, bench_core, bench_fabric);
criterion_main!(core_benches);
