//! `cargo bench` entry that regenerates scaled-down versions of every paper
//! figure/table series (the full-scale runs live in the `ndp-bench`
//! binaries: `cargo run --release -p ndp-bench --bin fig9`, etc.).
//!
//! Criterion measures the wall time of each figure driver at a reduced
//! scale; more importantly, running this under `cargo bench --workspace`
//! exercises every experiment path end-to-end and prints the headline
//! series so a bench run doubles as a smoke reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use ndp_core::experiments::{fig7_configs, run_matrix, run_workload};
use ndp_core::fig5::sweep;
use ndp_workloads::{Scale, Workload};

fn small_scale() -> Scale {
    Scale {
        warps: 128,
        iters: 4,
    }
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(5));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("target_policy_sweep", |b| {
        b.iter(|| black_box(sweep(8, 64, 2_000, 0x5C17)))
    });
    g.finish();
    // Print the headline number once.
    let pts = sweep(8, 64, 20_000, 0x5C17);
    let worst = pts.iter().map(|p| p.overhead()).fold(0.0f64, f64::max);
    println!(
        "[fig5] worst first-HMC overhead {:.1}% (paper ≤15%)",
        worst * 100.0
    );
}

fn bench_fig7_small(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_small");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    let scale = small_scale();
    // One representative workload per regime to keep cargo-bench time sane.
    for w in [Workload::Vadd, Workload::Bfs, Workload::Stn] {
        g.bench_function(w.name(), |b| {
            b.iter(|| {
                let m = run_matrix(&fig7_configs(), &[w], &scale, 20_000_000);
                black_box(m.results[2][0].cycles)
            })
        });
    }
    g.finish();
}

fn bench_dynamic_controller(c: &mut Criterion) {
    let mut g = c.benchmark_group("dyn_controller");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    let scale = small_scale();
    g.bench_function("kmn_ndp_dyn", |b| {
        b.iter(|| {
            let r = run_workload(
                Workload::Kmn,
                ndp_common::SystemConfig::ndp_dynamic(),
                &scale,
                20_000_000,
            );
            black_box(r.cycles)
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig5,
    bench_fig7_small,
    bench_dynamic_controller
);
criterion_main!(figures);
