//! Property tests: DRAM command scheduling legality under random request
//! sequences.

use ndp_common::config::{DramTiming, HmcConfig};
use ndp_dram::{Bank, VaultController, VaultRequest};
use proptest::prelude::*;

proptest! {
    /// Bank schedules are causally ordered: each request's CAS issues at or
    /// after `now`, data completes after CAS by at least tCL + one burst,
    /// and consecutive requests on the same bank never overlap on the
    /// column path.
    #[test]
    fn bank_schedule_is_causal(
        reqs in prop::collection::vec((0u64..32, 1u32..5, any::<bool>(), 0u64..64), 1..50)
    ) {
        let t = DramTiming::default();
        let mut bank = Bank::new();
        let mut now = 0u64;
        let mut prev_cas_end = 0u64;
        for (row, bursts, is_write, gap) in reqs {
            now += gap;
            let s = bank.schedule(now, row, bursts, is_write, 0, &t);
            prop_assert!(s.cas_at >= now, "CAS in the past");
            prop_assert!(
                s.data_done >= s.cas_at + t.t_cl as u64 + (t.t_ccd * bursts) as u64,
                "data before CAS completes"
            );
            prop_assert!(s.cas_at >= prev_cas_end, "column path overlap");
            prev_cas_end = s.cas_at + (t.t_ccd * bursts) as u64;
            prop_assert_eq!(bank.open_row(), Some(row), "row left open");
        }
    }

    /// Row hits never require activation; conflicts always do.
    #[test]
    fn activation_iff_row_change(rows in prop::collection::vec(0u64..4, 2..40)) {
        let t = DramTiming::default();
        let mut bank = Bank::new();
        let mut now = 0u64;
        let mut open: Option<u64> = None;
        for row in rows {
            let s = bank.schedule(now, row, 1, false, 0, &t);
            prop_assert_eq!(s.activated, open != Some(row));
            open = Some(row);
            now = s.data_done + 1;
        }
    }

    /// The vault controller conserves requests: everything pushed is
    /// eventually completed exactly once, regardless of bank/row mix.
    #[test]
    fn vault_conserves_requests(
        reqs in prop::collection::vec((0u8..16, 0u64..8, any::<bool>()), 1..64)
    ) {
        let mut v: VaultController<usize> = VaultController::new(&HmcConfig::default());
        let n = reqs.len();
        for (i, (bank, row, is_write)) in reqs.into_iter().enumerate() {
            let pushed = v.push(VaultRequest {
                bank,
                row,
                bytes: 128,
                is_write,
                payload: i,
            });
            prop_assert!(pushed.is_ok(), "capacity 64 ≥ test size");
        }
        let mut seen = vec![false; n];
        let mut done = 0;
        for now in 0..100_000u64 {
            v.tick(now);
            while let Some(r) = v.pop_done(now) {
                prop_assert!(!seen[r.payload], "duplicate completion");
                seen[r.payload] = true;
                done += 1;
            }
            if done == n {
                break;
            }
        }
        prop_assert_eq!(done, n, "requests lost");
        prop_assert!(!v.busy());
    }
}
