//! DRAM timing model: banks with DDR3-1333H parameters and an FR-FCFS
//! vault controller (Table 2: 16 banks/vault, 64-entry request queue).
//!
//! The controller is generic over a payload type `T` so upper layers can
//! attach whole protocol packets to requests without this crate knowing
//! about them. All times in this crate are **DRAM clock cycles** (tCK =
//! 1.5 ns); the HMC layer converts to/from the SM-cycle timebase.

#![forbid(unsafe_code)]

pub mod bank;
pub mod vault;

pub use bank::Bank;
pub use vault::{VaultController, VaultRequest};
