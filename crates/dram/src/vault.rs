//! FR-FCFS vault controller.
//!
//! First-Ready, First-Come-First-Served (Table 2): among queued requests,
//! prefer the oldest whose bank has the needed row open and can issue now;
//! otherwise fall back to the oldest request overall. One request is
//! scheduled per DRAM cycle; the vault's shared data bus serializes column
//! bursts, bounding per-vault bandwidth at `burst_bytes / tCCD`.

use std::collections::BinaryHeap;

use ndp_common::config::{DramTiming, HmcConfig};
use ndp_common::stats::DramStats;

/// A vault memory request.
#[derive(Debug, Clone)]
pub struct VaultRequest<T> {
    pub bank: u8,
    pub row: u64,
    /// Bytes to transfer (rounded up to whole bursts).
    pub bytes: u32,
    pub is_write: bool,
    /// Opaque payload returned on completion.
    pub payload: T,
}

struct Done<T> {
    at: u64,
    seq: u64,
    req: VaultRequest<T>,
}

impl<T> PartialEq for Done<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Done<T> {}
impl<T> PartialOrd for Done<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Done<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by completion time (reverse ordering).
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// One vault: FR-FCFS queue + banks + shared data bus.
pub struct VaultController<T> {
    queue: Vec<VaultRequest<T>>,
    banks: Vec<crate::bank::Bank>,
    timing: DramTiming,
    capacity: usize,
    burst_bytes: u32,
    bus_free: u64,
    done: BinaryHeap<Done<T>>,
    seq: u64,
    pub stats: DramStats,
}

impl<T> VaultController<T> {
    /// Per-tick shared-state footprint: a vault touches only its own
    /// queue, banks, and bus — parallel-eligible inside its enclosing
    /// stack's tick (DESIGN.md §16).
    pub const FOOTPRINT: ndp_common::footprint::Footprint = ndp_common::footprint::Footprint::EMPTY;

    pub fn new(cfg: &HmcConfig) -> Self {
        VaultController {
            queue: Vec::with_capacity(cfg.vault_queue),
            banks: (0..cfg.banks_per_vault)
                .map(|_| crate::bank::Bank::new())
                .collect(),
            timing: cfg.timing,
            capacity: cfg.vault_queue,
            burst_bytes: cfg.burst_bytes as u32,
            bus_free: 0,
            done: BinaryHeap::new(),
            seq: 0,
            stats: DramStats::default(),
        }
    }

    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.capacity
    }

    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Outstanding work (queued + scheduled-but-not-complete).
    pub fn busy(&self) -> bool {
        !self.queue.is_empty() || !self.done.is_empty()
    }

    /// Enqueue a request. Callers must check [`Self::can_accept`]; pushing
    /// past capacity returns the request back.
    pub fn push(&mut self, req: VaultRequest<T>) -> Result<(), VaultRequest<T>> {
        if !self.can_accept() {
            return Err(req);
        }
        assert!((req.bank as usize) < self.banks.len(), "bank out of range");
        self.queue.push(req);
        Ok(())
    }

    /// FR-FCFS pick: oldest ready row-hit within the scheduler's scan
    /// window, else oldest request. Real schedulers bound the associative
    /// search; a 16-deep window also keeps simulation cost linear.
    fn pick(&self, now: u64) -> Option<usize> {
        const SCAN_WINDOW: usize = 16;
        let mut fallback = None;
        for (i, r) in self.queue.iter().take(SCAN_WINDOW).enumerate() {
            let bank = &self.banks[r.bank as usize];
            if bank.is_row_hit(r.row) && bank.earliest_cas(now, r.row, &self.timing) <= now {
                return Some(i);
            }
            if fallback.is_none() {
                fallback = Some(i);
            }
        }
        fallback
    }

    /// Advance one DRAM cycle: schedule at most one request.
    pub fn tick(&mut self, now: u64) {
        let Some(i) = self.pick(now) else { return };
        let req = self.queue.remove(i);
        let bursts = req.bytes.div_ceil(self.burst_bytes).max(1);
        let bank = &mut self.banks[req.bank as usize];
        let sched = bank.schedule(
            now,
            req.row,
            bursts,
            req.is_write,
            self.bus_free,
            &self.timing,
        );
        self.bus_free = sched.cas_at + self.timing.t_ccd as u64 * bursts as u64;
        if sched.activated {
            self.stats.activations += 1;
        }
        if req.is_write {
            self.stats.col_writes += bursts as u64;
            self.stats.write_bytes += (bursts * self.burst_bytes) as u64;
        } else {
            self.stats.col_reads += bursts as u64;
            self.stats.read_bytes += (bursts * self.burst_bytes) as u64;
        }
        self.seq += 1;
        self.done.push(Done {
            at: sched.data_done,
            seq: self.seq,
            req,
        });
    }

    /// Pop the next completed request at or before `now`.
    pub fn pop_done(&mut self, now: u64) -> Option<VaultRequest<T>> {
        if self.done.peek().is_some_and(|d| d.at <= now) {
            return self.done.pop().map(|d| d.req);
        }
        None
    }

    /// Completion cycle of the earliest scheduled request still in flight,
    /// `None` when nothing is scheduled (quiescence horizon of a vault with
    /// an empty request queue).
    pub fn next_done_at(&self) -> Option<u64> {
        self.done.peek().map(|d| d.at)
    }

    /// Checkpoint queue, banks, bus horizon, in-flight heap (sorted by
    /// `(at, seq)` for byte-stable output — heap internal order is not
    /// deterministic across builds) and stats. Timing/capacities are
    /// config-derived and come from fresh construction on restore.
    /// `payload` encodes the opaque completion payload.
    pub fn snap(
        &self,
        w: &mut ndp_common::snap::SnapWriter,
        payload: impl Fn(&mut ndp_common::snap::SnapWriter, &T),
    ) {
        fn req<T>(
            w: &mut ndp_common::snap::SnapWriter,
            r: &VaultRequest<T>,
            payload: &impl Fn(&mut ndp_common::snap::SnapWriter, &T),
        ) {
            w.u8(r.bank);
            w.u64(r.row);
            w.u32(r.bytes);
            w.bool(r.is_write);
            payload(w, &r.payload);
        }
        w.len(self.queue.len());
        for q in &self.queue {
            req(w, q, &payload);
        }
        w.len(self.banks.len());
        for b in &self.banks {
            b.snap(w);
        }
        w.u64(self.bus_free);
        let mut done: Vec<&Done<T>> = self.done.iter().collect();
        done.sort_unstable_by_key(|d| (d.at, d.seq));
        w.len(done.len());
        for d in done {
            w.u64(d.at);
            w.u64(d.seq);
            req(w, &d.req, &payload);
        }
        w.u64(self.seq);
        w.u64(self.stats.activations);
        w.u64(self.stats.col_reads);
        w.u64(self.stats.col_writes);
        w.u64(self.stats.read_bytes);
        w.u64(self.stats.write_bytes);
    }

    /// Overwrite from a checkpoint stream; `self` must be freshly built
    /// against the same config (bank count is validated).
    pub fn restore(
        &mut self,
        r: &mut ndp_common::snap::SnapReader<'_>,
        payload: impl Fn(
            &mut ndp_common::snap::SnapReader<'_>,
        ) -> Result<T, ndp_common::snap::SnapError>,
    ) -> Result<(), ndp_common::snap::SnapError> {
        fn req<T>(
            r: &mut ndp_common::snap::SnapReader<'_>,
            payload: &impl Fn(
                &mut ndp_common::snap::SnapReader<'_>,
            ) -> Result<T, ndp_common::snap::SnapError>,
        ) -> Result<VaultRequest<T>, ndp_common::snap::SnapError> {
            Ok(VaultRequest {
                bank: r.u8()?,
                row: r.u64()?,
                bytes: r.u32()?,
                is_write: r.bool()?,
                payload: payload(r)?,
            })
        }
        self.queue.clear();
        for _ in 0..r.len()? {
            self.queue.push(req(r, &payload)?);
        }
        let nbanks = r.len()?;
        if nbanks != self.banks.len() {
            return Err(ndp_common::snap::SnapError(format!(
                "vault has {} banks, checkpoint has {nbanks}",
                self.banks.len()
            )));
        }
        for b in &mut self.banks {
            b.restore(r)?;
        }
        self.bus_free = r.u64()?;
        self.done.clear();
        for _ in 0..r.len()? {
            let at = r.u64()?;
            let seq = r.u64()?;
            self.done.push(Done {
                at,
                seq,
                req: req(r, &payload)?,
            });
        }
        self.seq = r.u64()?;
        self.stats.activations = r.u64()?;
        self.stats.col_reads = r.u64()?;
        self.stats.col_writes = r.u64()?;
        self.stats.read_bytes = r.u64()?;
        self.stats.write_bytes = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc() -> VaultController<u32> {
        VaultController::new(&HmcConfig::default())
    }

    fn req(bank: u8, row: u64, payload: u32) -> VaultRequest<u32> {
        VaultRequest {
            bank,
            row,
            bytes: 128,
            is_write: false,
            payload,
        }
    }

    fn run_from(v: &mut VaultController<u32>, from: u64, to: u64) -> Vec<(u64, u32)> {
        let mut out = vec![];
        for now in from..to {
            v.tick(now);
            while let Some(r) = v.pop_done(now) {
                out.push((now, r.payload));
            }
        }
        out
    }

    fn run(v: &mut VaultController<u32>, cycles: u64) -> Vec<(u64, u32)> {
        run_from(v, 0, cycles)
    }

    #[test]
    fn single_read_completes_with_expected_latency() {
        let mut v = vc();
        v.push(req(0, 5, 1)).unwrap();
        let done = run(&mut v, 100);
        assert_eq!(done.len(), 1);
        // tRCD(9) + tCL(9) + 4 bursts × tCCD(4) = 34.
        assert_eq!(done[0].0, 34);
        assert_eq!(v.stats.activations, 1);
        assert_eq!(v.stats.col_reads, 4);
        assert_eq!(v.stats.read_bytes, 128);
    }

    #[test]
    fn fr_fcfs_prefers_row_hits() {
        let mut v = vc();
        // Open row 5 on bank 0 first.
        v.push(req(0, 5, 0)).unwrap();
        for now in 0..40 {
            v.tick(now);
            let _ = v.pop_done(now);
        }
        // Now queue: conflict (row 9) is older, hit (row 5) is younger.
        v.push(req(0, 9, 1)).unwrap();
        v.push(req(0, 5, 2)).unwrap();
        let done = run_from(&mut v, 40, 400);
        assert_eq!(done[0].1, 2, "row hit bypasses older conflict");
        assert_eq!(done[1].1, 1);
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut v = vc();
        for i in 0..64 {
            assert!(v.push(req((i % 16) as u8, i as u64, i)).is_ok());
        }
        assert!(!v.can_accept());
        assert!(v.push(req(0, 0, 99)).is_err());
    }

    #[test]
    fn bus_serializes_parallel_banks() {
        // 16 requests across 16 banks: limited by the shared bus at
        // 4 bursts × tCCD = 16 cycles each ⇒ ≥ 256 cycles of bus time.
        let mut v = vc();
        for b in 0..16u8 {
            v.push(req(b, 1, b as u32)).unwrap();
        }
        let done = run(&mut v, 1000);
        assert_eq!(done.len(), 16);
        let last = done.last().unwrap().0;
        assert!(last >= 16 * 16, "bus not modelled: done at {last}");
        // And bank parallelism means it's far better than serial row cycles.
        assert!(last < 16 * 50, "no bank overlap: {last}");
    }

    #[test]
    fn writes_count_separately() {
        let mut v = vc();
        v.push(VaultRequest {
            bank: 0,
            row: 1,
            bytes: 32,
            is_write: true,
            payload: 7,
        })
        .unwrap();
        run(&mut v, 100);
        assert_eq!(v.stats.col_writes, 1);
        assert_eq!(v.stats.write_bytes, 32);
        assert_eq!(v.stats.col_reads, 0);
    }

    #[test]
    fn row_hits_avoid_activation() {
        let mut v = vc();
        for i in 0..8 {
            v.push(req(0, 5, i)).unwrap();
        }
        run(&mut v, 1000);
        assert_eq!(v.stats.activations, 1, "one ACT then row hits");
    }
}
