//! Per-bank DRAM state machine.
//!
//! Tracks the open row and the earliest cycles at which the next
//! activate / column / precharge command may issue, enforcing
//! tRP / tRCD / tCL / tRAS / tWR / tCCD from Table 2.

use ndp_common::config::DramTiming;

/// Outcome of scheduling one request on a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankSchedule {
    /// Cycle the first column command issues.
    pub cas_at: u64,
    /// Cycle the last data beat is on the bus (request completion).
    pub data_done: u64,
    /// Whether a row activation was required (row miss or closed row).
    pub activated: bool,
}

/// One DRAM bank.
#[derive(Debug, Clone)]
pub struct Bank {
    open_row: Option<u64>,
    /// Earliest cycle the next ACT may issue (tRC spacing).
    next_act: u64,
    /// Earliest cycle the next column command may issue.
    next_cas: u64,
    /// Earliest cycle a precharge may issue (tRAS after ACT, tWR after a
    /// write burst).
    next_pre: u64,
}

impl Bank {
    pub fn new() -> Self {
        Bank {
            open_row: None,
            next_act: 0,
            next_cas: 0,
            next_pre: 0,
        }
    }

    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// True if `row` currently hits in the row buffer.
    pub fn is_row_hit(&self, row: u64) -> bool {
        self.open_row == Some(row)
    }

    /// Earliest cycle a column command for `row` could issue at/after `now`
    /// (used by FR-FCFS to prefer ready row hits).
    pub fn earliest_cas(&self, now: u64, row: u64, t: &DramTiming) -> u64 {
        if self.is_row_hit(row) {
            now.max(self.next_cas)
        } else {
            let pre_at = if self.open_row.is_some() {
                now.max(self.next_pre)
            } else {
                now
            };
            let act_at = (pre_at
                + if self.open_row.is_some() {
                    t.t_rp as u64
                } else {
                    0
                })
            .max(self.next_act);
            act_at + t.t_rcd as u64
        }
    }

    /// Schedule a request of `bursts` column commands on this bank,
    /// additionally constrained by the vault data bus being free at
    /// `bus_free`. Returns the schedule and updates bank state.
    pub fn schedule(
        &mut self,
        now: u64,
        row: u64,
        bursts: u32,
        is_write: bool,
        bus_free: u64,
        t: &DramTiming,
    ) -> BankSchedule {
        let activated = !self.is_row_hit(row);
        let mut cas_at = self.earliest_cas(now, row, t);
        if activated {
            // Commit the precharge/activate this path implies.
            let act_at = cas_at - t.t_rcd as u64;
            self.next_act = act_at + (t.t_ras + t.t_rp) as u64; // tRC
            self.next_pre = act_at + t.t_ras as u64;
            self.open_row = Some(row);
        }
        cas_at = cas_at.max(bus_free);
        let burst_time = t.t_ccd as u64 * bursts as u64;
        let data_done = cas_at + t.t_cl as u64 + burst_time;
        self.next_cas = cas_at + burst_time;
        if is_write {
            // Write recovery before a future precharge.
            self.next_pre = self.next_pre.max(data_done + t.t_wr as u64);
        }
        BankSchedule {
            cas_at,
            data_done,
            activated,
        }
    }
}

impl Bank {
    /// Checkpoint the open row and command-spacing horizons.
    pub fn snap(&self, w: &mut ndp_common::snap::SnapWriter) {
        w.bool(self.open_row.is_some());
        w.u64(self.open_row.unwrap_or(0));
        w.u64(self.next_act);
        w.u64(self.next_cas);
        w.u64(self.next_pre);
    }

    /// Overwrite from a checkpoint stream.
    pub fn restore(
        &mut self,
        r: &mut ndp_common::snap::SnapReader<'_>,
    ) -> Result<(), ndp_common::snap::SnapError> {
        let open = r.bool()?;
        let row = r.u64()?;
        self.open_row = open.then_some(row);
        self.next_act = r.u64()?;
        self.next_cas = r.u64()?;
        self.next_pre = r.u64()?;
        Ok(())
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTiming {
        DramTiming::default()
    }

    #[test]
    fn closed_row_pays_rcd() {
        let mut b = Bank::new();
        let s = b.schedule(0, 7, 1, false, 0, &t());
        assert!(s.activated);
        assert_eq!(s.cas_at, 9, "tRCD");
        assert_eq!(s.data_done, 9 + 9 + 4, "CAS + tCL + 1 burst");
        assert_eq!(b.open_row(), Some(7));
    }

    #[test]
    fn row_hit_is_fast() {
        let mut b = Bank::new();
        b.schedule(0, 7, 1, false, 0, &t());
        let s = b.schedule(20, 7, 1, false, 0, &t());
        assert!(!s.activated);
        assert_eq!(s.cas_at, 20);
        assert_eq!(s.data_done, 20 + 9 + 4);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut b = Bank::new();
        b.schedule(0, 7, 1, false, 0, &t());
        // Conflict at cycle 100: PRE (respecting tRAS, long past) + tRP +
        // tRCD before CAS.
        let s = b.schedule(100, 8, 1, false, 0, &t());
        assert!(s.activated);
        assert_eq!(s.cas_at, 100 + 9 + 9, "tRP + tRCD");
        assert_eq!(b.open_row(), Some(8));
    }

    #[test]
    fn tras_delays_early_conflict() {
        let mut b = Bank::new();
        b.schedule(0, 7, 1, false, 0, &t());
        // Immediately conflicting: precharge must wait until tRAS = 24
        // after the ACT at 0.
        let s = b.schedule(1, 8, 1, false, 0, &t());
        assert_eq!(s.cas_at, 24 + 9 + 9);
    }

    #[test]
    fn ccd_spaces_back_to_back_hits() {
        let mut b = Bank::new();
        let s1 = b.schedule(0, 7, 4, false, 0, &t());
        let s2 = b.schedule(s1.cas_at, 7, 4, false, 0, &t());
        assert_eq!(s2.cas_at, s1.cas_at + 16, "4 bursts × tCCD");
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut b = Bank::new();
        let w = b.schedule(0, 7, 1, true, 0, &t());
        let s = b.schedule(w.data_done, 8, 1, false, 0, &t());
        // PRE cannot issue before data_done + tWR.
        assert!(s.cas_at >= w.data_done + 12 + 9 + 9);
    }

    #[test]
    fn bus_contention_defers_cas() {
        let mut b = Bank::new();
        b.schedule(0, 7, 1, false, 0, &t());
        let s = b.schedule(20, 7, 1, false, 500, &t());
        assert_eq!(s.cas_at, 500);
    }
}
