//! The memory network proper: bandwidth-modelled links on every hypercube
//! edge, per-hop dimension-order forwarding, and per-node delivery queues.

use ndp_common::ids::{Cycle, HmcId};
use ndp_common::link::Link;
use ndp_common::packet::Packet;
use ndp_common::port::{Component, OutPort};

use crate::topology::Topology;

/// The HMC↔HMC network.
pub struct MemNetwork {
    topo: Topology,
    /// `links[node][dim]`: directed link from `node` to `node ^ (1<<dim)`.
    links: Vec<Vec<Link>>,
    /// Packets that reached their destination stack, awaiting pickup by the
    /// stack's logic-layer crossbar.
    delivered: Vec<OutPort>,
}

impl MemNetwork {
    /// Per-tick shared-state footprint: the network touches only its own
    /// links and delivery queues (DESIGN.md §16).
    pub const FOOTPRINT: ndp_common::footprint::Footprint = ndp_common::footprint::Footprint::EMPTY;

    pub fn new(
        nodes: usize,
        bytes_per_cycle: f64,
        hop_latency: u32,
        queue_capacity: usize,
    ) -> Self {
        let topo = Topology::hypercube(nodes);
        let links = (0..nodes)
            .map(|_| {
                (0..topo.degree())
                    .map(|_| Link::new(bytes_per_cycle, hop_latency, queue_capacity))
                    .collect()
            })
            .collect();
        MemNetwork {
            topo,
            links,
            delivered: (0..nodes).map(|_| OutPort::unbounded()).collect(),
        }
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Destination stack of a packet (panics for GPU-side destinations —
    /// those never enter the memory network).
    fn dst_hmc(p: &Packet) -> HmcId {
        p.dst
            .hmc()
            .expect("memory-network packet must target an HMC-resident node")
    }

    /// Can a packet be injected at `at` right now?
    pub fn can_inject(&self, at: HmcId, p: &Packet) -> bool {
        match self.topo.route_dim(at, Self::dst_hmc(p)) {
            None => true, // local delivery is always possible
            Some(d) => self.links[at.0 as usize][d as usize].can_accept(),
        }
    }

    /// Inject a packet at stack `at`. Returns it back on backpressure.
    pub fn inject(&mut self, at: HmcId, p: Packet) -> Result<(), Packet> {
        match self.topo.route_dim(at, Self::dst_hmc(&p)) {
            None => {
                self.delivered[at.0 as usize].push_back(p);
                Ok(())
            }
            Some(d) => self.links[at.0 as usize][d as usize].push(p),
        }
    }

    /// Advance all links one cycle and forward arrived packets (either into
    /// the next hop's link or into the delivery queue). Hop-by-hop
    /// backpressure: a packet whose next link is full stays at the arrival
    /// point and is retried next cycle.
    pub fn tick(&mut self, now: Cycle) {
        for node in 0..self.topo.nodes() {
            for d in 0..self.topo.degree() {
                self.links[node][d].tick(now);
            }
        }
        for node in 0..self.topo.nodes() {
            let at = HmcId(node as u8);
            for d in 0..self.topo.degree() {
                // Arrivals at `node` along dimension d come from the
                // neighbor's directed link of the same dimension.
                let from = self.topo.neighbor(at, d as u32);
                loop {
                    let decision = match self.links[from.0 as usize][d].peek_ready(now) {
                        None => break,
                        Some(p) => self.topo.route_dim(at, Self::dst_hmc(p)),
                    };
                    match decision {
                        None => {
                            let p = self.links[from.0 as usize][d]
                                .pop_ready(now)
                                .expect("peeked");
                            self.delivered[node].push_back(p);
                        }
                        Some(nd) => {
                            if !self.links[node][nd as usize].can_accept() {
                                break; // backpressure: retry next cycle
                            }
                            let p = self.links[from.0 as usize][d]
                                .pop_ready(now)
                                .expect("peeked");
                            self.links[node][nd as usize]
                                .push(p)
                                .expect("checked can_accept");
                        }
                    }
                }
            }
        }
    }

    /// Inspect the next packet delivered to stack `at` without removing it.
    pub fn peek_delivered(&self, at: HmcId) -> Option<&Packet> {
        self.delivered[at.0 as usize].front()
    }

    /// Take the next packet delivered to stack `at`.
    pub fn pop_delivered(&mut self, at: HmcId) -> Option<Packet> {
        self.delivered[at.0 as usize].pop_front()
    }

    /// Total bytes moved across all network links.
    pub fn total_bytes(&self) -> u64 {
        self.links.iter().flatten().map(|l| l.stats.bytes).sum()
    }

    /// True when no packet is queued, in flight, or awaiting pickup.
    pub fn is_idle(&self) -> bool {
        self.links.iter().flatten().all(|l| l.is_idle())
            && self.delivered.iter().all(|q| q.is_empty())
    }

    /// Packets currently anywhere in the network — queued or in flight on a
    /// link, or delivered but not yet popped (occupancy sampling).
    pub fn queued_packets(&self) -> usize {
        self.links
            .iter()
            .flatten()
            .map(|l| l.in_transit())
            .sum::<usize>()
            + self.delivered.iter().map(|q| q.len()).sum::<usize>()
    }

    /// Any packet awaiting pickup in a delivery queue? (The horizon of the
    /// delivered→stack edge; delivery queues are plain FIFOs, so occupancy
    /// is the whole story.)
    pub fn has_delivered(&self) -> bool {
        self.delivered.iter().any(|q| !q.is_empty())
    }

    /// Checkpoint every directed link and delivery queue. The topology is
    /// config-derived (hypercube over the node count) and rebuilt fresh.
    pub fn snap(&self, w: &mut ndp_common::snap::SnapWriter) {
        w.len(self.links.len());
        for node in &self.links {
            w.len(node.len());
            for l in node {
                l.snap(w);
            }
        }
        w.len(self.delivered.len());
        for q in &self.delivered {
            q.snap(w);
        }
    }

    /// Overwrite from a checkpoint stream; `self` must be freshly built with
    /// the same node count (link matrix shape is validated).
    pub fn restore(
        &mut self,
        r: &mut ndp_common::snap::SnapReader<'_>,
    ) -> Result<(), ndp_common::snap::SnapError> {
        let nn = r.len()?;
        if nn != self.links.len() {
            return Err(ndp_common::snap::SnapError(format!(
                "memnet has {} nodes, checkpoint has {nn}",
                self.links.len()
            )));
        }
        for node in &mut self.links {
            let nd = r.len()?;
            if nd != node.len() {
                return Err(ndp_common::snap::SnapError(format!(
                    "memnet node has {} link dims, checkpoint has {nd}",
                    node.len()
                )));
            }
            for l in node {
                l.restore(r)?;
            }
        }
        let nq = r.len()?;
        if nq != self.delivered.len() {
            return Err(ndp_common::snap::SnapError(format!(
                "memnet has {} delivery queues, checkpoint has {nq}",
                self.delivered.len()
            )));
        }
        for q in &mut self.delivered {
            q.restore(r)?;
        }
        Ok(())
    }
}

impl Component for MemNetwork {
    fn tick(&mut self, now: Cycle) {
        MemNetwork::tick(self, now);
    }

    // A serializing link works every cycle; an all-in-flight network is
    // idle until the earliest delivery; a drained network is quiescent.
    // An idle tick touches nothing (empty links early-return, no ready
    // flights to forward), so no `note_skipped` replay is needed.
    fn next_work_at(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon: Option<Cycle> = None;
        for l in self.links.iter().flatten() {
            if let Some(c) = l.next_work_at(now) {
                return Some(c); // a busy serializer means work now
            }
            if let Some(c) = l.next_delivery_at() {
                horizon = Some(horizon.map_or(c, |h: Cycle| h.min(c)));
            }
        }
        horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_common::ids::Node;
    use ndp_common::packet::PacketKind;

    fn pkt(from: u8, to: u8) -> Packet {
        Packet::new(
            Node::Vault(from, 0),
            Node::Nsu(to),
            0,
            PacketKind::ReadResp {
                addr: 0,
                bytes: 112, // 128 B on the wire with the header
                tag: 0,
            },
        )
    }

    fn net() -> MemNetwork {
        // 16 B/cycle per link, 2-cycle hops, deep queues.
        MemNetwork::new(8, 16.0, 2, 64)
    }

    fn run(net: &mut MemNetwork, cycles: u64) -> Vec<(u64, HmcId, Packet)> {
        let mut out = vec![];
        for now in 0..cycles {
            net.tick(now);
            for h in 0..8u8 {
                while let Some(p) = net.pop_delivered(HmcId(h)) {
                    out.push((now, HmcId(h), p));
                }
            }
        }
        out
    }

    #[test]
    fn local_injection_delivers_immediately() {
        let mut net = net();
        net.inject(HmcId(3), pkt(3, 3)).unwrap();
        assert!(net.pop_delivered(HmcId(3)).is_some());
    }

    #[test]
    fn one_hop_delivery() {
        let mut net = net();
        net.inject(HmcId(0), pkt(0, 1)).unwrap();
        let got = run(&mut net, 50);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, HmcId(1));
        // 128 B at 16 B/cycle = 8 cycles serialize + 2 latency (+1 edge).
        assert!((10..=13).contains(&got[0].0), "arrived at {}", got[0].0);
        assert!(net.is_idle());
    }

    #[test]
    fn three_hop_diagonal_traverses_all_dimensions() {
        let mut net = net();
        net.inject(HmcId(0), pkt(0, 7)).unwrap();
        let got = run(&mut net, 200);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, HmcId(7));
        // Three serialize+propagate hops.
        assert!(got[0].0 >= 30, "too fast: {}", got[0].0);
        // Each traversed link saw the packet once: total bytes = 3 × size.
        assert_eq!(net.total_bytes(), 3 * 128);
    }

    #[test]
    fn all_pairs_arrive() {
        let mut net = net();
        for a in 0..8u8 {
            for b in 0..8u8 {
                net.inject(HmcId(a), pkt(a, b)).unwrap();
            }
        }
        let got = run(&mut net, 2000);
        // 8 locals (delivered synchronously at inject) are popped by run()
        // too — but inject() put them in `delivered` before run() started.
        assert_eq!(got.len(), 64);
        assert!(net.is_idle());
    }

    #[test]
    fn contention_slows_but_preserves_packets() {
        let mut net = net();
        // 20 packets all crossing the same first-dimension link 0→1.
        for _ in 0..20 {
            while net.inject(HmcId(0), pkt(0, 1)).is_err() {
                // queue full: tick to drain
                net.tick(0);
            }
        }
        let got = run(&mut net, 2000);
        assert_eq!(got.len(), 20);
        // Bandwidth bound: 20 × 128 B at 16 B/cycle ≥ 160 cycles.
        assert!(got.last().unwrap().0 >= 160);
    }

    #[test]
    fn gpu_destination_rejected() {
        let mut net = net();
        let bad = Packet::new(
            Node::Vault(0, 0),
            Node::Sm(0),
            0,
            PacketKind::ReadResp {
                addr: 0,
                bytes: 0,
                tag: 0,
            },
        );
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = net.inject(HmcId(0), bad);
        }));
        assert!(r.is_err(), "GPU-bound packets must not enter the memnet");
    }
}
