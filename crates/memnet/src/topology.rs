//! Hypercube topology and dimension-order routing.

use ndp_common::ids::HmcId;

/// An n-dimensional binary hypercube over `2^dims` nodes (3-D for the
/// paper's 8 HMCs, matching the 3 memory-network links per stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    dims: u32,
}

impl Topology {
    /// Build for `nodes` HMCs; `nodes` must be a power of two ≥ 2.
    pub fn hypercube(nodes: usize) -> Self {
        assert!(
            nodes.is_power_of_two() && nodes >= 2,
            "hypercube needs a power-of-two node count, got {nodes}"
        );
        Topology {
            dims: nodes.trailing_zeros(),
        }
    }

    pub fn dims(&self) -> u32 {
        self.dims
    }

    pub fn nodes(&self) -> usize {
        1 << self.dims
    }

    /// Links per node (= dimensions).
    pub fn degree(&self) -> usize {
        self.dims as usize
    }

    /// Neighbor of `n` along dimension `d`.
    pub fn neighbor(&self, n: HmcId, d: u32) -> HmcId {
        debug_assert!(d < self.dims);
        HmcId(n.0 ^ (1 << d))
    }

    /// Minimal hop count between two nodes (Hamming distance).
    pub fn hops(&self, a: HmcId, b: HmcId) -> u32 {
        (a.0 ^ b.0).count_ones()
    }

    /// Dimension-order routing: the dimension of the next hop from `at`
    /// toward `dst` (lowest differing dimension first). `None` when already
    /// at the destination. Deterministic and deadlock-free (dimension
    /// ordering admits no cyclic channel dependencies).
    pub fn route_dim(&self, at: HmcId, dst: HmcId) -> Option<u32> {
        let diff = at.0 ^ dst.0;
        if diff == 0 {
            None
        } else {
            Some(diff.trailing_zeros())
        }
    }

    /// Next node on the route from `at` to `dst`.
    pub fn next_hop(&self, at: HmcId, dst: HmcId) -> Option<HmcId> {
        self.route_dim(at, dst).map(|d| self.neighbor(at, d))
    }

    /// The full dimension-ordered path (excluding the source).
    pub fn path(&self, mut at: HmcId, dst: HmcId) -> Vec<HmcId> {
        let mut p = vec![];
        while let Some(next) = self.next_hop(at, dst) {
            p.push(next);
            at = next;
        }
        p
    }

    /// Average hop distance over all (src ≠ dst) pairs: dims/2 × nodes/(nodes−1).
    pub fn mean_hops(&self) -> f64 {
        let n = self.nodes() as f64;
        self.dims as f64 / 2.0 * n / (n - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_d_cube_shape() {
        let t = Topology::hypercube(8);
        assert_eq!(t.dims(), 3);
        assert_eq!(t.degree(), 3, "matches 3 memory-network links per HMC");
        assert_eq!(t.neighbor(HmcId(0), 0), HmcId(1));
        assert_eq!(t.neighbor(HmcId(5), 1), HmcId(7));
    }

    #[test]
    fn hops_are_hamming_distance() {
        let t = Topology::hypercube(8);
        assert_eq!(t.hops(HmcId(0), HmcId(7)), 3);
        assert_eq!(t.hops(HmcId(3), HmcId(3)), 0);
        assert_eq!(t.hops(HmcId(2), HmcId(6)), 1);
    }

    #[test]
    fn dimension_order_path_is_minimal_and_monotone() {
        let t = Topology::hypercube(8);
        for a in 0..8u8 {
            for b in 0..8u8 {
                let p = t.path(HmcId(a), HmcId(b));
                assert_eq!(p.len() as u32, t.hops(HmcId(a), HmcId(b)));
                // Each hop reduces the Hamming distance by exactly one.
                let mut prev = HmcId(a);
                for &n in &p {
                    assert_eq!(t.hops(prev, n), 1);
                    assert_eq!(t.hops(n, HmcId(b)) + 1, t.hops(prev, HmcId(b)));
                    prev = n;
                }
            }
        }
    }

    #[test]
    fn routing_fixes_lowest_dimension_first() {
        let t = Topology::hypercube(8);
        assert_eq!(t.route_dim(HmcId(0b000), HmcId(0b110)), Some(1));
        assert_eq!(t.route_dim(HmcId(0b010), HmcId(0b110)), Some(2));
        assert_eq!(t.route_dim(HmcId(0b110), HmcId(0b110)), None);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        Topology::hypercube(6);
    }

    #[test]
    fn mean_hops_formula() {
        let t = Topology::hypercube(8);
        // Exhaustive check.
        let mut total = 0u32;
        let mut pairs = 0u32;
        for a in 0..8u8 {
            for b in 0..8u8 {
                if a != b {
                    total += t.hops(HmcId(a), HmcId(b));
                    pairs += 1;
                }
            }
        }
        let exact = total as f64 / pairs as f64;
        assert!((t.mean_hops() - exact).abs() < 1e-12);
    }
}
