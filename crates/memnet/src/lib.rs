//! The HMC memory network (§2, §5).
//!
//! The paper interconnects 8 HMCs in a 3-D hypercube using 3 of the 4 HMC
//! links per stack (20 GB/s per direction each), leaving one link for the
//! GPU. Inter-stack NDP traffic (RDF responses and NSU writes crossing
//! stacks) rides this network and never touches the GPU links — the key
//! bandwidth argument of the paper.

#![forbid(unsafe_code)]

pub mod network;
pub mod topology;

pub use network::MemNetwork;
pub use topology::Topology;
