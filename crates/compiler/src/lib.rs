//! Static offload-block compiler (§3 of the paper).
//!
//! Mirrors the compile-time flow the paper assumes: analyze the kernel's
//! assembly-level IR, extract *offload blocks* that score positively under
//! Eq. 1 (`Score = GPUTrafficReduction − OffloadOverhead`), add every single
//! indirect load as its own block (§4.4), classify each instruction into its
//! partitioned-execution role (address calculation on the GPU vs. `@NSU`
//! computation), compute the live-in/live-out register transfer sets, and
//! generate the NSU code of Fig. 3(b).

#![forbid(unsafe_code)]

pub mod analyze;
pub mod codegen;
pub mod report;
pub mod slice;

pub use analyze::{compile, CompiledKernel, CompilerConfig};
pub use report::{table1_row, Table1Row};
