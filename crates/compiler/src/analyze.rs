//! Offload-block extraction (§3.1).
//!
//! Candidate enumeration follows the paper's constraints:
//!   * a block is a contiguous range within a single basic block (no control
//!     divergence, no barriers);
//!   * blocks containing scratchpad (shared) or constant-space accesses are
//!     excluded — such code runs better on the GPU;
//!   * a block must contain at least one global memory instruction (the
//!     first one selects the target NSU);
//!   * the sequence-number field bounds the loads+stores per block;
//!   * acceptance requires `Score = GPUTrafficReduction − OffloadOverhead
//!     > 0` (Eq. 1, statically evaluated without cache terms);
//!   * additionally, **every single indirect load** becomes its own block
//!     regardless of score (§4.4 divergence filtering).

use ndp_isa::instr::MemSpace;
use ndp_isa::offload::{InstrRole, OffloadBlock};
use ndp_isa::program::{Item, Program};
use ndp_isa::WARP_WIDTH;

use crate::codegen::{generate_nsu_code, NSU_CODE_BASE, NSU_INSTR_BYTES};
use crate::slice::{classify_roles, has_load_to_addr_dep, is_indirect_load, live_sets};

/// Static-analysis parameters.
#[derive(Debug, Clone, Copy)]
pub struct CompilerConfig {
    /// Maximum loads+stores per block (sequence-number field width, §4.1.1
    /// footnote 3).
    pub max_mem_instrs: usize,
    /// Word size used by the Eq. 1 score (bytes).
    pub word_bytes: i64,
    /// Apply the §4.4 single-indirect-load rule.
    pub indirect_rule: bool,
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig {
            max_mem_instrs: 64,
            word_bytes: 4,
            indirect_rule: true,
        }
    }
}

/// A kernel plus its compiled offload metadata.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    pub program: Program,
    pub blocks: Vec<OffloadBlock>,
    /// For each item index: the block covering it and the instruction's
    /// role, if any.
    pub role_map: Vec<Option<(u16, InstrRole)>>,
    /// For each item index: the block that *starts* there (where the GPU
    /// executes `OFLD.BEG`).
    pub block_starting_at: Vec<Option<u16>>,
}

impl CompiledKernel {
    pub fn block(&self, id: u16) -> &OffloadBlock {
        &self.blocks[id as usize]
    }

    /// Total NSU code footprint in bytes (Fig. 11 I-cache utilization).
    pub fn nsu_footprint_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.nsu_code_bytes()).sum()
    }

    /// Per-block NSU instruction counts, the Table 1 "# of instructions in
    /// offload blocks" column.
    pub fn nsu_lens(&self) -> Vec<usize> {
        self.blocks.iter().map(|b| b.nsu_len()).collect()
    }
}

/// Eq. 1 static score for a candidate range, in bytes per thread.
fn score(
    program: &Program,
    start: usize,
    end: usize,
    cfg: &CompilerConfig,
) -> (i64, Vec<InstrRole>) {
    let roles = classify_roles(program, start, end);
    let (live_in, live_out) = live_sets(program, start, end, &roles);
    let n_mem = roles
        .iter()
        .filter(|r| matches!(r, InstrRole::Load | InstrRole::Store))
        .count() as i64;
    // GPUTrafficReduction: each offloaded load/store keeps one data word per
    // thread off the GPU link. Address traffic is identical either way and
    // excluded (§3.1).
    let reduction = cfg.word_bytes * n_mem;
    // OffloadOverhead: register transfer to and from the NSU.
    let overhead = cfg.word_bytes * (live_in.len() + live_out.len()) as i64;
    (reduction - overhead, roles)
}

/// Split a basic block into segments free of scratchpad/constant accesses.
fn global_only_segments(program: &Program, bb: (usize, usize)) -> Vec<(usize, usize)> {
    let mut segs = vec![];
    let mut start = bb.0;
    for idx in bb.0..bb.1 {
        let Item::Op(i) = &program.items[idx] else {
            unreachable!()
        };
        let excluded = matches!(
            i.mem_space(),
            Some(MemSpace::Shared) | Some(MemSpace::Const)
        );
        if excluded {
            if idx > start {
                segs.push((start, idx));
            }
            start = idx + 1;
        }
    }
    if bb.1 > start {
        segs.push((start, bb.1));
    }
    segs
}

fn count_mem(program: &Program, start: usize, end: usize) -> usize {
    (start..end)
        .filter(|&i| matches!(&program.items[i], Item::Op(op) if op.is_global_mem()))
        .count()
}

/// Compile a kernel: extract offload blocks and generate NSU code.
pub fn compile(program: &Program, cfg: &CompilerConfig) -> CompiledKernel {
    program.validate().expect("invalid kernel IR");
    let mut accepted: Vec<(usize, usize, i64, Vec<InstrRole>, bool)> = vec![];

    for bb in program.basic_blocks() {
        for (s, e) in global_only_segments(program, bb) {
            // Walk the segment with a cursor: accept the best-scoring block
            // starting at the cursor, then continue after it; fall back to
            // §4.4 indirect singletons when nothing scores positive.
            let mut cursor = s;
            while count_mem(program, cursor, e) > 0 {
                // Candidate end points: every cut after the first global
                // memory instruction (a block needs at least one memory
                // access to pick its target NSU). Whether trailing ALU
                // instructions pay off is decided by the score: they join
                // the block only when they don't inflate the register
                // transfer overhead.
                let first_mem = (cursor..e)
                    .find(|&i| matches!(&program.items[i], Item::Op(op) if op.is_global_mem()));
                let Some(first_mem) = first_mem else { break };
                let ends: Vec<usize> = (first_mem + 1..=e).collect();
                let mut best: Option<(i64, usize, Vec<InstrRole>)> = None;
                for &cand_end in &ends {
                    if count_mem(program, cursor, cand_end) > cfg.max_mem_instrs {
                        break;
                    }
                    // The GPU must be able to generate every address: reject
                    // ranges where an address depends on an in-range load.
                    if has_load_to_addr_dep(program, cursor, cand_end) {
                        break; // extending further cannot remove the dep
                    }
                    let (sc, roles) = score(program, cursor, cand_end, cfg);
                    if best.as_ref().is_none_or(|(b, _, _)| sc > *b) {
                        best = Some((sc, cand_end, roles));
                    }
                }
                let Some((best_score, best_end, roles)) = best else {
                    break;
                };
                if best_score > 0 {
                    accepted.push((cursor, best_end, best_score, roles, false));
                    cursor = best_end;
                } else {
                    if cfg.indirect_rule {
                        // §4.4: single indirect loads offload regardless of
                        // score.
                        for idx in cursor..e {
                            let Item::Op(i) = &program.items[idx] else {
                                unreachable!()
                            };
                            if matches!(
                                i,
                                ndp_isa::instr::Instr::Ld {
                                    space: MemSpace::Global,
                                    ..
                                }
                            ) && is_indirect_load(program, bb.0, idx)
                            {
                                let (sc, roles) = score(program, idx, idx + 1, cfg);
                                accepted.push((idx, idx + 1, sc, roles, true));
                            }
                        }
                    }
                    break;
                }
            }
        }
    }

    // Materialize blocks with contiguous NSU code placement.
    let mut blocks = vec![];
    let mut pc = NSU_CODE_BASE;
    for (id, (start, end, sc, roles, indirect)) in accepted.into_iter().enumerate() {
        let (live_in, live_out) = live_sets(program, start, end, &roles);
        let nsu_code = generate_nsu_code(
            program,
            start,
            end,
            &roles,
            live_in.len() as u8,
            live_out.len() as u8,
        );
        let code_bytes = nsu_code.len() as u64 * NSU_INSTR_BYTES;
        blocks.push(OffloadBlock {
            id,
            start,
            end,
            roles,
            live_in: live_in.iter().collect(),
            live_out: live_out.iter().collect(),
            nsu_code,
            nsu_pc: pc,
            score: sc * WARP_WIDTH as i64,
            indirect,
        });
        pc += code_bytes;
    }

    let mut role_map = vec![None; program.items.len()];
    let mut block_starting_at = vec![None; program.items.len()];
    for b in &blocks {
        block_starting_at[b.start] = Some(b.id as u16);
        for (off, slot) in role_map[b.start..b.end].iter_mut().enumerate() {
            *slot = Some((b.id as u16, b.roles[off]));
        }
    }

    CompiledKernel {
        program: program.clone(),
        blocks,
        role_map,
        block_starting_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_isa::instr::{AluOp, Instr, Operand, Reg};
    use ndp_isa::program::{Item, TripCount};

    /// C[tid] = A[tid] + B[tid] — the Fig. 2 vector addition.
    fn vadd() -> Program {
        let mut p = Program::new("vadd", 8);
        let t = |r| Operand::Reg(Reg(r));
        p.items = vec![
            // R1 = tid*4
            Item::Op(Instr::alu(
                AluOp::IMul,
                Reg(1),
                Operand::Tid,
                Operand::Imm(4),
            )),
            // R2 = &A[tid]; R3 = A[tid]
            Item::Op(Instr::alu(
                AluOp::IAdd,
                Reg(2),
                t(1),
                Operand::Imm(0x10_0000),
            )),
            Item::Op(Instr::ld(Reg(3), Reg(2))),
            // R4 = &B[tid]; R5 = B[tid]
            Item::Op(Instr::alu(
                AluOp::IAdd,
                Reg(4),
                t(1),
                Operand::Imm(0x20_0000),
            )),
            Item::Op(Instr::ld(Reg(5), Reg(4))),
            // R6 = A+B
            Item::Op(Instr::alu(AluOp::FAdd, Reg(6), t(3), t(5))),
            // R7 = &C[tid]; C[tid] = R6
            Item::Op(Instr::alu(
                AluOp::IAdd,
                Reg(7),
                t(1),
                Operand::Imm(0x30_0000),
            )),
            Item::Op(Instr::st(Reg(6), Reg(7))),
        ];
        p
    }

    #[test]
    fn vadd_compiles_to_one_block() {
        let ck = compile(&vadd(), &CompilerConfig::default());
        assert_eq!(ck.blocks.len(), 1);
        let b = &ck.blocks[0];
        assert_eq!(b.n_loads(), 2);
        assert_eq!(b.n_stores(), 1);
        // NSU code: LD, LD, FADD, ST = 4 instructions (the Table 1 VADD row).
        assert_eq!(b.nsu_len(), 4);
        assert!(b.live_in.is_empty(), "no register transfer needed");
        assert!(b.live_out.is_empty());
        assert!(b.score > 0);
        assert!(!b.indirect);
    }

    #[test]
    fn role_map_covers_block() {
        let ck = compile(&vadd(), &CompilerConfig::default());
        let b = &ck.blocks[0];
        assert_eq!(ck.block_starting_at[b.start], Some(0));
        for idx in b.start..b.end {
            assert!(ck.role_map[idx].is_some());
        }
    }

    #[test]
    fn shared_memory_splits_blocks() {
        let mut p = vadd();
        // Insert a scratchpad access in the middle.
        p.items.insert(
            5,
            Item::Op(Instr::Ld {
                dst: Reg(8),
                space: MemSpace::Shared,
                addr: Reg(1),
            }),
        );
        let ck = compile(&p, &CompilerConfig::default());
        for b in &ck.blocks {
            for idx in b.start..b.end {
                let Item::Op(i) = &p.items[idx] else { panic!() };
                assert_ne!(i.mem_space(), Some(MemSpace::Shared));
            }
        }
    }

    #[test]
    fn barrier_bounds_blocks() {
        let mut p = vadd();
        p.items.insert(5, Item::Bar);
        let ck = compile(&p, &CompilerConfig::default());
        for b in &ck.blocks {
            for idx in b.start..b.end {
                assert!(matches!(p.items[idx], Item::Op(_)));
            }
        }
    }

    #[test]
    fn indirect_load_offloaded_despite_zero_score() {
        // x = B[A[tid]]; consumed by arithmetic + store far later: the B
        // load alone has score 4 (1 load) − 4 (1 live-out) = 0, but the §4.4
        // rule still offloads it.
        let mut p = Program::new("gather", 4);
        let t = |r| Operand::Reg(Reg(r));
        p.items = vec![
            Item::Op(Instr::alu3(
                AluOp::IMad,
                Reg(1),
                Operand::Tid,
                Operand::Imm(4),
                Operand::Imm(0x10_0000),
            )),
            Item::Op(Instr::ld(Reg(2), Reg(1))), // idx = A[tid]
            Item::Op(Instr::alu(AluOp::And, Reg(2), t(2), Operand::Imm(0xffff))),
            Item::Op(Instr::alu3(
                AluOp::IMad,
                Reg(3),
                t(2),
                Operand::Imm(4),
                Operand::Imm(0x20_0000),
            )),
            Item::Op(Instr::ld(Reg(4), Reg(3))), // x = B[idx]  ← indirect
            Item::Bar,
            // Consume both loaded values after the barrier so the candidate
            // block has two live-outs and scores ≤ 0 (2 loads × 4 B −
            // 2 regs × 4 B = 0).
            Item::Op(Instr::alu(AluOp::FAdd, Reg(5), t(4), t(2))),
            Item::Op(Instr::alu3(
                AluOp::IMad,
                Reg(6),
                Operand::Tid,
                Operand::Imm(4),
                Operand::Imm(0x30_0000),
            )),
            Item::Op(Instr::st(Reg(5), Reg(6))),
        ];
        let ck = compile(&p, &CompilerConfig::default());
        let ind: Vec<_> = ck.blocks.iter().filter(|b| b.indirect).collect();
        assert_eq!(ind.len(), 1, "{:?}", ck.blocks);
        assert_eq!(ind[0].end - ind[0].start, 1);
        assert_eq!(ind[0].nsu_len(), 1, "single LD, like BFS in Table 1");
    }

    #[test]
    fn loop_body_block_extracted() {
        // Streaming loop: block inside the loop body is found once and
        // instantiated per trip at runtime.
        let mut p = Program::new("loop", 4);
        let t = |r| Operand::Reg(Reg(r));
        p.items = vec![
            Item::Op(Instr::alu(
                AluOp::IMul,
                Reg(1),
                Operand::Tid,
                Operand::Imm(4),
            )),
            Item::LoopBegin(TripCount::Const(16)),
            Item::Op(Instr::alu3(
                AluOp::IMad,
                Reg(2),
                Operand::Iter(0),
                Operand::Imm(0x1000),
                t(1),
            )),
            Item::Op(Instr::alu(
                AluOp::IAdd,
                Reg(3),
                t(2),
                Operand::Imm(0x10_0000),
            )),
            Item::Op(Instr::ld(Reg(4), Reg(3))),
            Item::Op(Instr::alu(AluOp::FMul, Reg(5), t(4), t(4))),
            Item::Op(Instr::alu(
                AluOp::IAdd,
                Reg(6),
                t(2),
                Operand::Imm(0x20_0000),
            )),
            Item::Op(Instr::st(Reg(5), Reg(6))),
            Item::LoopEnd,
        ];
        let ck = compile(&p, &CompilerConfig::default());
        assert_eq!(ck.blocks.len(), 1);
        let b = &ck.blocks[0];
        // LD + FMUL + ST on the NSU.
        assert_eq!(b.nsu_len(), 3);
        assert!(b.score > 0);
    }

    #[test]
    fn max_mem_instrs_bounds_block_size() {
        // A long run of loads/stores is truncated at the sequence-number
        // budget (footnote 3 of the paper).
        let mut p = Program::new("long", 1);
        let t4 = Reg(0);
        p.items = vec![Item::Op(Instr::alu(
            AluOp::IMul,
            t4,
            Operand::Tid,
            Operand::Imm(4),
        ))];
        for i in 0..12u64 {
            let a = Reg(1);
            p.items.push(Item::Op(Instr::alu(
                AluOp::IAdd,
                a,
                Operand::Reg(t4),
                Operand::Imm(0x10_0000 + i * 0x1000),
            )));
            let d = Reg(2);
            p.items.push(Item::Op(Instr::ld(d, a)));
            p.items.push(Item::Op(Instr::st(d, a)));
        }
        let cfg = CompilerConfig {
            max_mem_instrs: 8,
            ..Default::default()
        };
        let ck = compile(&p, &cfg);
        for b in &ck.blocks {
            assert!(b.n_loads() + b.n_stores() <= 8, "{:?}", b);
        }
        // The segment splits into several blocks instead of one.
        assert!(ck.blocks.len() >= 2);
    }

    #[test]
    fn indirect_rule_can_be_disabled() {
        let mut p = Program::new("gather", 1);
        let t = |r: u8| Operand::Reg(Reg(r));
        p.items = vec![
            Item::Op(Instr::alu3(
                AluOp::IMad,
                Reg(1),
                Operand::Tid,
                Operand::Imm(4),
                Operand::Imm(0x10_0000),
            )),
            Item::Op(Instr::ld(Reg(2), Reg(1))),
            Item::Op(Instr::alu3(
                AluOp::IMad,
                Reg(3),
                t(2),
                Operand::Imm(4),
                Operand::Imm(0x20_0000),
            )),
            Item::Op(Instr::ld(Reg(4), Reg(3))),
            Item::Bar,
            Item::Op(Instr::alu(AluOp::FAdd, Reg(5), t(4), t(2))),
            Item::Op(Instr::st(Reg(5), Reg(1))),
        ];
        let cfg = CompilerConfig {
            indirect_rule: false,
            ..Default::default()
        };
        let ck = compile(&p, &cfg);
        assert!(ck.blocks.iter().all(|b| !b.indirect));
        let cfg = CompilerConfig {
            indirect_rule: true,
            ..Default::default()
        };
        let ck = compile(&p, &cfg);
        assert!(ck.blocks.iter().any(|b| b.indirect));
    }

    #[test]
    fn nsu_pcs_are_contiguous_and_distinct() {
        let mut p = vadd();
        // Duplicate the kernel body after a barrier to get two blocks.
        let copy: Vec<Item> = p.items.clone();
        p.items.push(Item::Bar);
        p.items.extend(copy);
        let ck = compile(&p, &CompilerConfig::default());
        assert_eq!(ck.blocks.len(), 2);
        let b0 = &ck.blocks[0];
        let b1 = &ck.blocks[1];
        assert_eq!(
            b1.nsu_pc,
            b0.nsu_pc + (b0.nsu_code.len() as u64) * NSU_INSTR_BYTES
        );
    }
}
