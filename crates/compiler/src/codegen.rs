//! NSU code generation (§3.2, Fig. 3(b)).
//!
//! Translation is the one-to-one mapping the paper describes: loads become
//! read-data-buffer pops, stores become buffer-addressed writes, `@NSU` ALU
//! ops are copied, and GPU-side address-calculation ALU ops are removed.

use ndp_isa::instr::Instr;
use ndp_isa::offload::{InstrRole, NsuInstr};
use ndp_isa::program::{Item, Program};

/// Base physical address of the NSU code region; blocks are laid out
/// contiguously from here (§4.1.1 assumes physically contiguous NSU code).
pub const NSU_CODE_BASE: u64 = 0xD00;

/// Bytes per NSU instruction.
pub const NSU_INSTR_BYTES: u64 = 8;

/// Generate the NSU instruction stream for a block range with known roles.
pub fn generate_nsu_code(
    program: &Program,
    start: usize,
    end: usize,
    roles: &[InstrRole],
    regs_in: u8,
    regs_out: u8,
) -> Vec<NsuInstr> {
    let mut code = vec![NsuInstr::Begin { regs_in }];
    for idx in start..end {
        let Item::Op(i) = &program.items[idx] else {
            panic!("offload block contains non-Op item at {idx}");
        };
        match roles[idx - start] {
            InstrRole::AddrCalc => {} // removed during translation
            InstrRole::Load => code.push(NsuInstr::Ld {
                dst: i.dst().expect("load has dst"),
            }),
            InstrRole::Store => {
                let Instr::St { val, .. } = i else {
                    unreachable!()
                };
                code.push(NsuInstr::St { src: *val });
            }
            InstrRole::AtNsu => code.push(NsuInstr::Alu(i.clone())),
        }
    }
    code.push(NsuInstr::End { regs_out });
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_isa::instr::{AluOp, Operand, Reg};
    use ndp_isa::program::Item;

    #[test]
    fn addr_calc_removed_others_translated() {
        let mut p = Program::new("t", 1);
        p.items = vec![
            Item::Op(Instr::ld(Reg(1), Reg(9))),
            Item::Op(Instr::alu(
                AluOp::FMul,
                Reg(2),
                Operand::Reg(Reg(0)),
                Operand::Reg(Reg(1)),
            )),
            Item::Op(Instr::alu(
                AluOp::IAdd,
                Reg(10),
                Operand::Reg(Reg(3)),
                Operand::Reg(Reg(7)),
            )),
            Item::Op(Instr::st(Reg(2), Reg(10))),
        ];
        let roles = [
            InstrRole::Load,
            InstrRole::AtNsu,
            InstrRole::AddrCalc,
            InstrRole::Store,
        ];
        let code = generate_nsu_code(&p, 0, 4, &roles, 1, 1);
        assert_eq!(code.len(), 5, "BEG + LD + MUL + ST + END");
        assert!(matches!(code[0], NsuInstr::Begin { regs_in: 1 }));
        assert!(matches!(code[1], NsuInstr::Ld { dst: Reg(1) }));
        assert!(matches!(code[2], NsuInstr::Alu(_)));
        assert!(matches!(code[3], NsuInstr::St { src: Reg(2) }));
        assert!(matches!(code[4], NsuInstr::End { regs_out: 1 }));
    }
}
