//! Dataflow analyses over an instruction range: address-slice role
//! classification and live-in/live-out register sets.

use ndp_isa::instr::Instr;
use ndp_isa::offload::InstrRole;
use ndp_isa::program::{Item, Program};
use ndp_isa::Reg;

/// Compact register set (≤64 registers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegSet(pub u64);

impl RegSet {
    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.0;
    }

    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1 << r.0);
    }

    pub fn contains(&self, r: Reg) -> bool {
        self.0 & (1 << r.0) != 0
    }

    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        (0..64u8).filter(|&r| self.contains(Reg(r))).map(Reg)
    }
}

/// Fetch the instruction at item index `idx` (panics on non-Op items —
/// callers operate on basic-block ranges).
fn instr_at(program: &Program, idx: usize) -> &Instr {
    match &program.items[idx] {
        Item::Op(i) => i,
        other => panic!("expected Op at {idx}, found {other:?}"),
    }
}

/// Classify every instruction in `[start, end)` into its partitioned
/// execution role (§4.1.1).
///
/// Backward walk maintaining two demand sets: registers needed *as memory
/// addresses* and registers needed *as data values*. An ALU op whose result
/// is demanded only as an address is `AddrCalc` (GPU-side, removed from NSU
/// code); one demanded as a value is `@NSU`. A result demanded as **both**
/// executes on the GPU (addresses must be generated there) and its value is
/// added to the live-in transfer set by the caller.
pub fn classify_roles(program: &Program, start: usize, end: usize) -> Vec<InstrRole> {
    let mut roles = vec![InstrRole::AtNsu; end - start];
    let mut addr_needed = RegSet::default();
    let mut value_needed = RegSet::default();

    for idx in (start..end).rev() {
        let i = instr_at(program, idx);
        match i {
            Instr::Ld { dst, addr, .. } => {
                roles[idx - start] = InstrRole::Load;
                addr_needed.remove(*dst);
                value_needed.remove(*dst);
                addr_needed.insert(*addr);
            }
            Instr::St { val, addr, .. } => {
                roles[idx - start] = InstrRole::Store;
                value_needed.insert(*val);
                addr_needed.insert(*addr);
            }
            Instr::Alu { dst, .. } => {
                let as_addr = addr_needed.contains(*dst);
                let as_value = value_needed.contains(*dst);
                // A dead def (neither demanded) may still be live-out of the
                // block; treat it as NSU-side computation so the value comes
                // back in the ACK packet.
                let role = if as_addr {
                    InstrRole::AddrCalc
                } else {
                    InstrRole::AtNsu
                };
                roles[idx - start] = role;
                addr_needed.remove(*dst);
                value_needed.remove(*dst);
                let demand = match role {
                    InstrRole::AddrCalc => &mut addr_needed,
                    _ => &mut value_needed,
                };
                for s in i.srcs() {
                    demand.insert(s);
                }
                // A dual-use def also propagates value demand to its
                // sources so the NSU-side consumers still get their inputs
                // via live-in transfer (handled by `live_sets`).
                if as_addr && as_value {
                    for s in i.srcs() {
                        value_needed.insert(s);
                    }
                }
            }
        }
    }
    roles
}

/// Compute the live-in (GPU→NSU) and live-out (NSU→GPU) register transfer
/// sets for a block with the given roles.
///
/// Live-in: registers read by NSU-side work (`@NSU` ALU sources, store data
/// sources) that are not produced by earlier NSU-side work in the block.
/// A register produced by GPU-side `AddrCalc` but consumed by NSU-side work
/// counts as live-in (the GPU must transfer the computed value).
///
/// Live-out: registers defined by NSU-side work (loads, `@NSU` ALU) that are
/// used outside the block — after it, or, when the block sits inside a loop,
/// on the next trip (any use in the enclosing loop before the block).
pub fn live_sets(
    program: &Program,
    start: usize,
    end: usize,
    roles: &[InstrRole],
) -> (RegSet, RegSet) {
    let mut nsu_defined = RegSet::default();
    let mut live_in = RegSet::default();

    for idx in start..end {
        let i = instr_at(program, idx);
        match roles[idx - start] {
            InstrRole::Load => {
                nsu_defined.insert(i.dst().expect("load has dst"));
            }
            InstrRole::Store => {
                for s in i.value_srcs() {
                    if !nsu_defined.contains(s) {
                        live_in.insert(s);
                    }
                }
            }
            InstrRole::AtNsu => {
                for s in i.srcs() {
                    if !nsu_defined.contains(s) {
                        live_in.insert(s);
                    }
                }
                if let Some(d) = i.dst() {
                    nsu_defined.insert(d);
                }
            }
            InstrRole::AddrCalc => {
                // GPU-side; defines nothing on the NSU. If a later NSU-side
                // instruction reads its dst, the live-in rule above fires
                // (dst is not in nsu_defined).
            }
        }
    }

    // Live-out: NSU-defined registers used outside the block.
    let outside = outside_use_ranges(program, start, end);
    let mut live_out = RegSet::default();
    for d in nsu_defined.iter() {
        'ranges: for &(s, e) in &outside {
            for idx in s..e {
                if let Item::Op(i) = &program.items[idx] {
                    if i.srcs().contains(&d) {
                        live_out.insert(d);
                        break 'ranges;
                    }
                    if i.dst() == Some(d) {
                        // Redefined before any use on this path.
                        break;
                    }
                }
            }
        }
    }
    (live_in, live_out)
}

/// Item-index ranges where uses make a block def live-out: everything after
/// the block, plus — if the block is inside loops — the segment from each
/// enclosing loop's begin to the block start (next-trip uses).
fn outside_use_ranges(program: &Program, start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut ranges = vec![(end, program.items.len())];
    // Find enclosing loops of [start, end).
    let mut stack = vec![];
    for (i, item) in program.items.iter().enumerate() {
        match item {
            Item::LoopBegin(_) => stack.push(i),
            Item::LoopEnd => {
                let b = stack.pop().expect("validated");
                if b < start && i >= end {
                    ranges.push((b + 1, start));
                }
            }
            _ => {}
        }
    }
    ranges
}

/// True when the range `[start, end)` contains a memory instruction whose
/// address depends (transitively) on a load **inside the range**.
///
/// Partitioned execution cannot offload such a range: the GPU generates all
/// addresses, but the feeding data only materializes on the NSU (§4.1.1).
/// The analyzer rejects candidate ranges with this dependence; the inner
/// load can still be offloaded alone under the §4.4 indirect rule.
pub fn has_load_to_addr_dep(program: &Program, start: usize, end: usize) -> bool {
    let mut tainted = RegSet::default();
    for idx in start..end {
        let i = instr_at(program, idx);
        if let Some(addr) = i.addr_reg() {
            if tainted.contains(addr) {
                return true;
            }
        }
        match i {
            Instr::Ld { dst, .. } => tainted.insert(*dst),
            Instr::Alu { dst, .. } => {
                if i.srcs().iter().any(|s| tainted.contains(*s)) {
                    tainted.insert(*dst);
                } else {
                    tainted.remove(*dst);
                }
            }
            Instr::St { .. } => {}
        }
    }
    false
}

/// True when the load at `idx` is an *indirect* load: its address slice
/// (within the same basic block) contains the result of another global load
/// (§4.4, the `x = B[A[i]]` pattern).
pub fn is_indirect_load(program: &Program, bb_start: usize, idx: usize) -> bool {
    let i = instr_at(program, idx);
    let Instr::Ld { addr, .. } = i else {
        return false;
    };
    let mut demand = RegSet::default();
    demand.insert(*addr);
    for j in (bb_start..idx).rev() {
        let pi = instr_at(program, j);
        let Some(d) = pi.dst() else { continue };
        if demand.contains(d) {
            if pi.is_global_mem() {
                return true;
            }
            demand.remove(d);
            for s in pi.srcs() {
                demand.insert(s);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_isa::instr::{AluOp, Operand};
    use ndp_isa::program::Item;

    fn prog(items: Vec<Item>) -> Program {
        let mut p = Program::new("t", 1);
        p.items = items;
        p
    }

    /// The Fig. 3(a) example:
    ///   LD F1, [R9]        — load
    ///   MUL F2, F0, F1     — @NSU
    ///   ADD R10, R1, R7    — address calc
    ///   ST [R10], F2       — store
    #[test]
    fn fig3_classification() {
        let p = prog(vec![
            Item::Op(Instr::ld(Reg(1), Reg(9))),
            Item::Op(Instr::alu(
                AluOp::FMul,
                Reg(2),
                Operand::Reg(Reg(0)),
                Operand::Reg(Reg(1)),
            )),
            Item::Op(Instr::alu(
                AluOp::IAdd,
                Reg(10),
                Operand::Reg(Reg(11)),
                Operand::Reg(Reg(7)),
            )),
            Item::Op(Instr::st(Reg(2), Reg(10))),
        ]);
        let roles = classify_roles(&p, 0, 4);
        assert_eq!(
            roles,
            vec![
                InstrRole::Load,
                InstrRole::AtNsu,
                InstrRole::AddrCalc,
                InstrRole::Store
            ]
        );
        let (live_in, live_out) = live_sets(&p, 0, 4, &roles);
        // F0 (= R0) comes from the GPU, like "SendF0" in Fig. 3(a).
        assert!(live_in.contains(Reg(0)));
        assert!(!live_in.contains(Reg(1)), "loaded on the NSU");
        assert!(!live_in.contains(Reg(11)), "address operand stays on GPU");
        // F2 unused afterwards in this toy program.
        assert!(live_out.is_empty());
    }

    #[test]
    fn address_chain_is_gpu_side() {
        // tid*4+base feeding a load: every ALU in the chain is AddrCalc.
        let p = prog(vec![
            Item::Op(Instr::alu(
                AluOp::IMul,
                Reg(1),
                Operand::Tid,
                Operand::Imm(4),
            )),
            Item::Op(Instr::alu(
                AluOp::IAdd,
                Reg(2),
                Operand::Reg(Reg(1)),
                Operand::Imm(0x1000),
            )),
            Item::Op(Instr::ld(Reg(3), Reg(2))),
        ]);
        let roles = classify_roles(&p, 0, 3);
        assert_eq!(
            roles,
            vec![InstrRole::AddrCalc, InstrRole::AddrCalc, InstrRole::Load]
        );
    }

    #[test]
    fn dual_use_value_becomes_live_in() {
        // R1 feeds both an address and NSU-side arithmetic.
        let p = prog(vec![
            Item::Op(Instr::alu(
                AluOp::IMul,
                Reg(1),
                Operand::Tid,
                Operand::Imm(4),
            )),
            Item::Op(Instr::ld(Reg(2), Reg(1))),
            Item::Op(Instr::alu(
                AluOp::IAdd,
                Reg(3),
                Operand::Reg(Reg(2)),
                Operand::Reg(Reg(1)),
            )),
            Item::Op(Instr::st(Reg(3), Reg(1))),
        ]);
        let roles = classify_roles(&p, 0, 4);
        assert_eq!(roles[0], InstrRole::AddrCalc, "address demand dominates");
        let (live_in, _) = live_sets(&p, 0, 4, &roles);
        assert!(
            live_in.contains(Reg(1)),
            "dual-use value must transfer to the NSU"
        );
    }

    #[test]
    fn live_out_detected_after_block() {
        let p = prog(vec![
            Item::Op(Instr::mov(Reg(9), Operand::Imm(0x100))),
            Item::Op(Instr::ld(Reg(1), Reg(9))),
            Item::Op(Instr::alu(
                AluOp::IAdd,
                Reg(2),
                Operand::Reg(Reg(1)),
                Operand::Imm(1),
            )),
            // use of R2 after the block:
            Item::Op(Instr::st(Reg(2), Reg(9))),
        ]);
        let roles = classify_roles(&p, 1, 3);
        let (_, live_out) = live_sets(&p, 1, 3, &roles);
        assert!(live_out.contains(Reg(2)));
        assert!(!live_out.contains(Reg(1)), "R1 not used outside");
    }

    #[test]
    fn live_out_through_loop_backedge() {
        // Accumulator defined in the block, consumed by the next trip.
        let p = prog(vec![
            Item::Op(Instr::mov(Reg(0), Operand::Imm(0))),
            Item::Op(Instr::mov(Reg(9), Operand::Imm(0x40))),
            Item::LoopBegin(ndp_isa::TripCount::Const(4)),
            Item::Op(Instr::ld(Reg(1), Reg(9))),
            Item::Op(Instr::alu(
                AluOp::FAdd,
                Reg(0),
                Operand::Reg(Reg(0)),
                Operand::Reg(Reg(1)),
            )),
            Item::LoopEnd,
            Item::Op(Instr::st(Reg(0), Reg(9))),
        ]);
        let roles = classify_roles(&p, 3, 5);
        let (live_in, live_out) = live_sets(&p, 3, 5, &roles);
        assert!(live_in.contains(Reg(0)), "accumulator carried in");
        assert!(live_out.contains(Reg(0)), "accumulator carried out");
    }

    #[test]
    fn indirect_load_detection() {
        // B[A[i]]: LD idx; idx*4+base; LD data.
        let p = prog(vec![
            Item::Op(Instr::mov(Reg(1), Operand::Imm(0x1000))),
            Item::Op(Instr::ld(Reg(2), Reg(1))),
            Item::Op(Instr::alu3(
                AluOp::IMad,
                Reg(3),
                Operand::Reg(Reg(2)),
                Operand::Imm(4),
                Operand::Imm(0x8000),
            )),
            Item::Op(Instr::ld(Reg(4), Reg(3))),
        ]);
        assert!(!is_indirect_load(&p, 0, 1), "first load is direct");
        assert!(is_indirect_load(&p, 0, 3), "second load is indirect");
    }

    #[test]
    fn regset_basics() {
        let mut s = RegSet::default();
        assert!(s.is_empty());
        s.insert(Reg(0));
        s.insert(Reg(63));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Reg(0), Reg(63)]);
        s.remove(Reg(0));
        assert!(!s.contains(Reg(0)) && s.contains(Reg(63)));
    }
}
