//! Table 1 report: per-workload offload-block summary.

use crate::analyze::CompiledKernel;

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub workload: &'static str,
    pub description: &'static str,
    /// NSU instruction count of each offload block (address-calculation ALU
    /// ops removed) — the "# of instructions in offload blocks" column.
    pub block_sizes: Vec<usize>,
    /// Average registers transferred GPU→NSU per thread.
    pub avg_regs_in: f64,
    /// Average registers transferred NSU→GPU per thread.
    pub avg_regs_out: f64,
}

/// Build a Table 1 row from a compiled kernel.
pub fn table1_row(
    workload: &'static str,
    description: &'static str,
    ck: &CompiledKernel,
) -> Table1Row {
    let n = ck.blocks.len().max(1) as f64;
    Table1Row {
        workload,
        description,
        block_sizes: ck.nsu_lens(),
        avg_regs_in: ck.blocks.iter().map(|b| b.live_in.len()).sum::<usize>() as f64 / n,
        avg_regs_out: ck.blocks.iter().map(|b| b.live_out.len()).sum::<usize>() as f64 / n,
    }
}

impl Table1Row {
    /// The "16,4"-style block-size list of Table 1.
    pub fn sizes_string(&self) -> String {
        self.block_sizes
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{compile, CompilerConfig};
    use ndp_isa::instr::{AluOp, Instr, Operand, Reg};
    use ndp_isa::program::{Item, Program};

    #[test]
    fn row_renders_sizes() {
        let mut p = Program::new("t", 1);
        let t = |r| Operand::Reg(Reg(r));
        p.items = vec![
            Item::Op(Instr::alu(
                AluOp::IMul,
                Reg(1),
                Operand::Tid,
                Operand::Imm(4),
            )),
            Item::Op(Instr::alu(AluOp::IAdd, Reg(2), t(1), Operand::Imm(0x1000))),
            Item::Op(Instr::ld(Reg(3), Reg(2))),
            Item::Op(Instr::alu(AluOp::FAdd, Reg(4), t(3), t(3))),
            Item::Op(Instr::alu(AluOp::IAdd, Reg(5), t(1), Operand::Imm(0x2000))),
            Item::Op(Instr::st(Reg(4), Reg(5))),
        ];
        let ck = compile(&p, &CompilerConfig::default());
        let row = table1_row("T", "test", &ck);
        assert_eq!(row.sizes_string(), "3");
        assert_eq!(row.avg_regs_in, 0.0);
    }
}
