//! Memory access coalescing (§4.1.1 "Memory instruction").
//!
//! Groups the per-lane byte addresses of a warp memory instruction into
//! accesses at cache-line (128 B) granularity, classifying each as aligned
//! (lane *i* reads `line + i × WordSize`) or misaligned — misaligned
//! accesses append per-thread offsets to RDF/WTA packets (Fig. 4(b)).

use ndp_common::packet::LineAccess;
use ndp_isa::{LaneValues, WARP_WIDTH};

/// Coalesce one warp memory instruction into line accesses, ordered by
/// first-touching lane (deterministic).
pub fn coalesce(
    addrs: &LaneValues,
    active: u32,
    word_bytes: u32,
    line_bytes: u32,
) -> Vec<LineAccess> {
    debug_assert!(line_bytes.is_power_of_two());
    let mask = !(line_bytes as u64 - 1);
    let mut out: Vec<LineAccess> = Vec::with_capacity(2);
    for (lane, &addr) in addrs.iter().enumerate().take(WARP_WIDTH) {
        if active & (1 << lane) == 0 {
            continue;
        }
        let line = addr & mask;
        match out.iter_mut().find(|a| a.line == line) {
            Some(a) => a.lanes.push((lane as u8, addr)),
            None => out.push(LineAccess {
                line,
                lanes: vec![(lane as u8, addr)],
                misaligned: false,
            }),
        }
    }
    for a in &mut out {
        a.misaligned = !a
            .lanes
            .iter()
            .all(|&(lane, addr)| addr == a.line + lane as u64 * word_bytes as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: u32 = u32::MAX;

    fn unit_stride(base: u64) -> LaneValues {
        let mut a = [0u64; WARP_WIDTH];
        for (l, v) in a.iter_mut().enumerate() {
            *v = base + 4 * l as u64;
        }
        a
    }

    #[test]
    fn unit_stride_coalesces_to_one_aligned_line() {
        let acc = coalesce(&unit_stride(0x1000), ALL, 4, 128);
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].line, 0x1000);
        assert_eq!(acc[0].active_words(), 32);
        assert!(!acc[0].misaligned);
    }

    #[test]
    fn offset_stride_spans_two_misaligned_lines() {
        // base 0x1010: lanes 0..27 in line 0x1000, 28..31 in 0x1080; lane i
        // is not at line + i*4.
        let acc = coalesce(&unit_stride(0x1010), ALL, 4, 128);
        assert_eq!(acc.len(), 2);
        assert!(acc.iter().all(|a| a.misaligned));
        assert_eq!(acc.iter().map(|a| a.active_words()).sum::<u32>(), 32);
    }

    #[test]
    fn strided_access_fans_out() {
        let mut a = [0u64; WARP_WIDTH];
        for (l, v) in a.iter_mut().enumerate() {
            *v = 0x4000 + 128 * l as u64; // one lane per line
        }
        let acc = coalesce(&a, ALL, 4, 128);
        assert_eq!(acc.len(), 32, "fully divergent");
        for x in &acc {
            assert_eq!(x.active_words(), 1);
        }
        // Lane 0 happens to be at offset 0 = line + 0×4 → aligned by the
        // formula; all other lanes are misaligned singletons.
        assert_eq!(acc.iter().filter(|a| a.misaligned).count(), 31);
    }

    #[test]
    fn inactive_lanes_skipped() {
        let acc = coalesce(&unit_stride(0), 0b101, 4, 128);
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].lanes, vec![(0, 0), (2, 8)]);
        // Lane i at line + i×4 satisfies the §4.1.1 formula even with an
        // incomplete mask — the offsets are still implied by lane index.
        assert!(!acc[0].misaligned);
    }

    #[test]
    fn broadcast_same_address() {
        let a = [0x7000u64; WARP_WIDTH];
        let acc = coalesce(&a, ALL, 4, 128);
        assert_eq!(acc.len(), 1);
        assert_eq!(acc[0].active_words(), 32);
        assert!(acc[0].misaligned, "all lanes at offset 0");
    }

    #[test]
    fn no_active_lanes_yields_nothing() {
        assert!(coalesce(&unit_stride(0), 0, 4, 128).is_empty());
    }

    #[test]
    fn deterministic_order_by_first_touch() {
        let mut a = unit_stride(0x1000);
        a[0] = 0x9000; // lane 0 touches a later line first
        let acc = coalesce(&a, ALL, 4, 128);
        assert_eq!(acc[0].line, 0x9000);
        assert_eq!(acc[1].line, 0x1000);
    }
}
