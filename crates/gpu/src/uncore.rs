//! GPU uncore: address-sliced L2 cache (one 256 KB slice per GPU↔HMC link)
//! plus the on-die interconnect delay between SMs and slices.
//!
//! The slice probes baseline reads/writes and RDF packets: RDF hits ship the
//! cached words to the target NSU as RDF responses over the GPU link (§4.1
//! Fig. 6(a)); misses forward to the owning vault. Cache invalidations from
//! NSU writes (§4.2) land here.

use ndp_common::config::SystemConfig;
use ndp_common::ids::{Cycle, Node};
use ndp_common::packet::{Packet, PacketKind, NO_BLOCK};
use ndp_common::port::{Component, InPort, OutPort};
use ndp_common::stats::CacheStats;

use crate::cache::{Cache, Probe};

/// Waiter for an outstanding L2 miss: the original requester + tag.
type L2Waiter = (Node, u64);

/// One L2 slice, fronting one GPU↔HMC link.
pub struct L2Slice {
    pub id: u8,
    cache: Cache<L2Waiter>,
    /// Arrivals from SMs, delayed by the on-die interconnect.
    in_q: InPort,
    /// Arrivals from the memory side (GPU link, down direction).
    from_mem: OutPort,
    /// Departures to the memory side (GPU link, up direction).
    pub to_mem: OutPort,
    /// Responses to SMs (delayed by the on-die interconnect or L2 hit
    /// latency; ready cycles are stamped per packet).
    pub to_sm: InPort,
    ondie_lat: Cycle,
    l2_lat: Cycle,
    line_bytes: u32,
    /// Probes served per cycle.
    throughput: usize,
    /// Writes forwarded to DRAM that have not been acknowledged yet.
    pub writes_outstanding: u64,
    /// (block, l2_hit) samples for RDF and block-attributed reads (§7.3).
    pub block_events: Vec<(u16, bool)>,
    /// Bytes through this slice (GPU on-die wire energy).
    pub ondie_bytes: u64,
    /// §4.1 RDF cache-probe behaviour (ablation knob).
    rdf_probes_cache: bool,
}

impl L2Slice {
    /// Per-tick shared-state footprint: a slice's cache and queues are
    /// private, but the block events it emits are folded into the shared
    /// controller's per-block statistics inside the `tick:slices` member
    /// loop — a shared write that serializes the stage (DESIGN.md §16).
    pub const FOOTPRINT: ndp_common::footprint::Footprint = ndp_common::footprint::Footprint {
        reads: &[],
        writes: &[ndp_common::footprint::res::CTRL_BLOCK_STATS],
    };

    pub fn new(id: u8, cfg: &SystemConfig) -> Self {
        let slice_bytes = cfg.gpu.l2_bytes / cfg.l2_slices();
        L2Slice {
            id,
            cache: Cache::new(
                slice_bytes,
                cfg.gpu.l2_ways,
                cfg.gpu.line_bytes,
                cfg.gpu.l2_mshrs,
            ),
            in_q: InPort::new(16, 256),
            from_mem: OutPort::unbounded(),
            to_mem: OutPort::new(64),
            to_sm: InPort::unbounded(0),
            ondie_lat: 16,
            l2_lat: cfg.gpu.l2_hit_latency as Cycle,
            line_bytes: cfg.gpu.line_bytes as u32,
            throughput: 4,
            writes_outstanding: 0,
            block_events: vec![],
            ondie_bytes: 0,
            rdf_probes_cache: cfg.nsu.rdf_probes_gpu_cache,
        }
    }

    /// Can the slice take more SM-side packets this cycle?
    pub fn can_accept(&self) -> bool {
        self.in_q.can_accept()
    }

    /// A packet leaves an SM toward this slice.
    pub fn from_sm(&mut self, now: Cycle, p: Packet) {
        self.ondie_bytes += p.size as u64;
        self.in_q.push(now, p);
    }

    /// A packet arrives from the memory side.
    pub fn from_mem(&mut self, p: Packet) {
        self.from_mem.push_back(p);
    }

    /// Pop a response ready for an SM.
    pub fn pop_to_sm(&mut self, now: Cycle) -> Option<Packet> {
        self.to_sm.pop_ready(now)
    }

    pub fn stats(&self) -> CacheStats {
        self.cache.stats
    }

    pub fn is_idle(&self) -> bool {
        self.in_q.is_empty()
            && self.from_mem.is_empty()
            && self.to_mem.is_empty()
            && self.to_sm.is_empty()
    }

    /// Checkpoint the cache (waiters are `(Node, tag)` pairs), all four
    /// port queues, and the slice counters. Latencies/geometry are
    /// config-derived and come from fresh construction on restore.
    pub fn snap(&self, w: &mut ndp_common::snap::SnapWriter) {
        self.cache.snap(w, |w, (node, tag): &L2Waiter| {
            node.snap(w);
            w.u64(*tag);
        });
        self.in_q.snap(w);
        self.from_mem.snap(w);
        self.to_mem.snap(w);
        self.to_sm.snap(w);
        w.u64(self.writes_outstanding);
        w.len(self.block_events.len());
        for (b, hit) in &self.block_events {
            w.u16(*b);
            w.bool(*hit);
        }
        w.u64(self.ondie_bytes);
    }

    /// Overwrite from a checkpoint stream; `self` must be freshly built
    /// against the same config.
    pub fn restore(
        &mut self,
        r: &mut ndp_common::snap::SnapReader<'_>,
    ) -> Result<(), ndp_common::snap::SnapError> {
        self.cache.restore(r, |r| {
            let node = ndp_common::ids::Node::restore(r)?;
            let tag = r.u64()?;
            Ok((node, tag))
        })?;
        self.in_q.restore(r)?;
        self.from_mem.restore(r)?;
        self.to_mem.restore(r)?;
        self.to_sm.restore(r)?;
        self.writes_outstanding = r.u64()?;
        self.block_events.clear();
        for _ in 0..r.len()? {
            let b = r.u16()?;
            let hit = r.bool()?;
            self.block_events.push((b, hit));
        }
        self.ondie_bytes = r.u64()?;
        Ok(())
    }

    pub fn tick(&mut self, now: Cycle) {
        // Memory-side arrivals are lightweight; process all.
        while let Some(p) = self.from_mem.pop_front() {
            match p.kind {
                PacketKind::ReadResp { addr, bytes, .. } => {
                    for (node, tag) in self.cache.fill(addr) {
                        self.ondie_bytes += (bytes + 16) as u64;
                        self.to_sm.push_at(
                            now + self.ondie_lat,
                            Packet::new(
                                Node::L2(self.id),
                                node,
                                now,
                                PacketKind::ReadResp { addr, bytes, tag },
                            ),
                        );
                    }
                }
                PacketKind::WriteAck { .. } => {
                    self.writes_outstanding = self.writes_outstanding.saturating_sub(1);
                }
                PacketKind::CacheInval { addr } => {
                    self.cache.invalidate(addr & !(self.line_bytes as u64 - 1));
                }
                other => panic!("L2 cannot consume {other:?} from memory side"),
            }
        }

        // SM-side arrivals: up to `throughput` probes per cycle, stalling
        // when the memory-side output backs up (GPU-link backpressure).
        for _ in 0..self.throughput {
            if !self.to_mem.can_accept() {
                break;
            }
            let Some(p) = self.in_q.pop_ready(now) else {
                break;
            };
            self.process_sm_packet(now, p);
        }
    }

    fn process_sm_packet(&mut self, now: Cycle, p: Packet) {
        match p.kind {
            PacketKind::ReadReq {
                addr,
                bytes,
                tag,
                block,
            } => {
                let probe = self.cache.probe_read(addr, (p.src, tag));
                if block != NO_BLOCK {
                    self.block_events.push((block, probe == Probe::Hit));
                }
                match probe {
                    Probe::Hit => {
                        self.ondie_bytes += (bytes + 16) as u64;
                        self.to_sm.push_at(
                            now + self.l2_lat,
                            Packet::new(
                                Node::L2(self.id),
                                p.src,
                                now,
                                PacketKind::ReadResp { addr, bytes, tag },
                            ),
                        );
                    }
                    Probe::MissNew => {
                        let coord_dst = p.dst; // slice id == hmc id
                        let hmc = match coord_dst {
                            Node::L2(h) => h,
                            _ => self.id,
                        };
                        // Forward to the vault; the stack decodes the vault
                        // index from the address.
                        let vault = vault_of(addr, self.line_bytes);
                        self.to_mem.push_back(Packet::new(
                            Node::L2(self.id),
                            Node::Vault(hmc, vault),
                            now,
                            PacketKind::ReadReq {
                                addr,
                                bytes,
                                tag: 0,
                                block: NO_BLOCK,
                            },
                        ));
                    }
                    Probe::MissMerged => {}
                    Probe::MshrFull => {
                        // Retry next cycle: requeue at the front.
                        self.in_q.push_front_at(now, p);
                    }
                }
            }
            PacketKind::WriteReq { addr, words, .. } => {
                self.cache.write_touch(addr);
                self.writes_outstanding += 1;
                let vault = vault_of(addr, self.line_bytes);
                self.to_mem.push_back(Packet::new(
                    Node::L2(self.id),
                    Node::Vault(self.id, vault),
                    now,
                    PacketKind::WriteReq {
                        addr,
                        words,
                        tag: 0,
                    },
                ));
            }
            PacketKind::Rdf {
                token,
                seq,
                ref access,
                target,
                block,
                ..
            } => {
                // Probe without allocating or registering a waiter: the data
                // never comes back to the GPU on a miss.
                let hit = self.rdf_probes_cache && self.cache.contains(access.line);
                self.block_events.push((block, hit));
                if hit {
                    self.cache.stats.read_hits += 1;
                    self.to_mem.push_back(Packet::new(
                        Node::L2(self.id),
                        target,
                        now,
                        PacketKind::RdfResp {
                            token,
                            seq,
                            access: access.clone(),
                        },
                    ));
                } else {
                    self.cache.stats.read_misses += 1;
                    self.to_mem.push_back(p);
                }
            }
            // CMD / WTA / SM-generated RDF responses pass through untouched.
            PacketKind::OffloadCmd { .. } | PacketKind::Wta { .. } | PacketKind::RdfResp { .. } => {
                self.to_mem.push_back(p)
            }
            other => panic!("L2 cannot consume {other:?} from SM side"),
        }
    }
}

impl Component for L2Slice {
    fn tick(&mut self, now: Cycle) {
        L2Slice::tick(self, now);
    }

    // Memory-side arrivals are processed same-cycle; SM-side arrivals wait
    // for their interconnect latency stamp. `to_sm` is deliberately not a
    // wake source here — draining it is the slice→SM edge's horizon, not
    // the tick's. A backpressured or not-yet-ready tick is a pure no-op,
    // so no `note_skipped` replay is needed.
    fn next_work_at(&self, now: Cycle) -> Option<Cycle> {
        if !self.from_mem.is_empty() {
            return Some(now);
        }
        self.in_q.next_ready()
    }
}

/// Vault index of an address (line-interleaved, 16 vaults).
fn vault_of(addr: u64, line_bytes: u32) -> u8 {
    ((addr / line_bytes as u64) % 16) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice() -> L2Slice {
        L2Slice::new(0, &SystemConfig::default())
    }

    fn read_req(addr: u64, tag: u64) -> Packet {
        Packet::new(
            Node::Sm(1),
            Node::L2(0),
            0,
            PacketKind::ReadReq {
                addr,
                bytes: 128,
                tag,
                block: NO_BLOCK,
            },
        )
    }

    fn run(s: &mut L2Slice, from: Cycle, to: Cycle) -> Vec<(Cycle, Packet)> {
        let mut out = vec![];
        for now in from..to {
            s.tick(now);
            while let Some(p) = s.pop_to_sm(now) {
                out.push((now, p));
            }
        }
        out
    }

    #[test]
    fn miss_forwards_to_vault_and_fill_responds() {
        let mut s = slice();
        s.from_sm(0, read_req(0x1000, 7));
        run(&mut s, 0, 20);
        assert_eq!(s.to_mem.len(), 1);
        assert!(matches!(s.to_mem[0].dst, Node::Vault(0, _)));
        // Simulate the DRAM response.
        s.from_mem(Packet::new(
            Node::Vault(0, 0),
            Node::L2(0),
            20,
            PacketKind::ReadResp {
                addr: 0x1000,
                bytes: 128,
                tag: 0,
            },
        ));
        let got = run(&mut s, 20, 60);
        assert_eq!(got.len(), 1);
        match got[0].1.kind {
            PacketKind::ReadResp { tag, .. } => assert_eq!(tag, 7, "original tag restored"),
            _ => panic!(),
        }
        // Second access to the same line hits locally.
        s.from_sm(60, read_req(0x1000, 8));
        let got = run(&mut s, 60, 200);
        assert_eq!(got.len(), 1);
        assert_eq!(s.stats().read_hits, 1);
    }

    #[test]
    fn merged_misses_fan_out_on_fill() {
        let mut s = slice();
        s.from_sm(0, read_req(0x2000, 1));
        s.from_sm(0, read_req(0x2000, 2));
        run(&mut s, 0, 20);
        assert_eq!(s.to_mem.len(), 1, "one DRAM fetch for two requesters");
        s.from_mem(Packet::new(
            Node::Vault(0, 0),
            Node::L2(0),
            20,
            PacketKind::ReadResp {
                addr: 0x2000,
                bytes: 128,
                tag: 0,
            },
        ));
        let got = run(&mut s, 20, 60);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn rdf_hit_ships_data_to_nsu() {
        let mut s = slice();
        // Warm the line.
        s.from_sm(0, read_req(0x3000, 1));
        run(&mut s, 0, 20);
        s.from_mem(Packet::new(
            Node::Vault(0, 0),
            Node::L2(0),
            0,
            PacketKind::ReadResp {
                addr: 0x3000,
                bytes: 128,
                tag: 0,
            },
        ));
        run(&mut s, 20, 40);
        s.to_mem.clear();
        // Now an RDF for the same line.
        let access = ndp_common::packet::LineAccess {
            line: 0x3000,
            lanes: (0..32).map(|l| (l, 0x3000 + 4 * l as u64)).collect(),
            misaligned: false,
        };
        s.from_sm(
            40,
            Packet::new(
                Node::Sm(0),
                Node::Vault(0, 0),
                40,
                PacketKind::Rdf {
                    token: ndp_common::ids::OffloadToken(1),
                    seq: 0,
                    access,
                    target: Node::Nsu(5),
                    block: 3,
                    cache_hit_data: false,
                },
            ),
        );
        run(&mut s, 40, 80);
        assert_eq!(s.to_mem.len(), 1);
        assert!(matches!(s.to_mem[0].kind, PacketKind::RdfResp { .. }));
        assert_eq!(s.to_mem[0].dst, Node::Nsu(5));
        assert_eq!(s.block_events, vec![(3, true)]);
    }

    #[test]
    fn rdf_miss_passes_through() {
        let mut s = slice();
        let access = ndp_common::packet::LineAccess {
            line: 0x9000,
            lanes: vec![(0, 0x9000)],
            misaligned: false,
        };
        s.from_sm(
            0,
            Packet::new(
                Node::Sm(0),
                Node::Vault(0, 2),
                0,
                PacketKind::Rdf {
                    token: ndp_common::ids::OffloadToken(2),
                    seq: 0,
                    access,
                    target: Node::Nsu(1),
                    block: 0,
                    cache_hit_data: false,
                },
            ),
        );
        run(&mut s, 0, 30);
        assert_eq!(s.to_mem.len(), 1);
        assert!(matches!(s.to_mem[0].kind, PacketKind::Rdf { .. }));
        assert_eq!(s.block_events, vec![(0, false)]);
    }

    #[test]
    fn invalidation_drops_cached_line() {
        let mut s = slice();
        s.from_sm(0, read_req(0x4000, 1));
        run(&mut s, 0, 20);
        s.from_mem(Packet::new(
            Node::Vault(0, 0),
            Node::L2(0),
            0,
            PacketKind::ReadResp {
                addr: 0x4000,
                bytes: 128,
                tag: 0,
            },
        ));
        run(&mut s, 20, 40);
        s.from_mem(Packet::new(
            Node::Vault(0, 0),
            Node::L2(0),
            0,
            PacketKind::CacheInval { addr: 0x4000 },
        ));
        run(&mut s, 40, 45);
        // The next read misses again.
        s.from_sm(45, read_req(0x4000, 9));
        run(&mut s, 45, 70);
        assert_eq!(s.stats().read_misses, 2);
    }

    #[test]
    fn writes_count_outstanding_until_acked() {
        let mut s = slice();
        s.from_sm(
            0,
            Packet::new(
                Node::Sm(0),
                Node::L2(0),
                0,
                PacketKind::WriteReq {
                    addr: 0x5000,
                    words: 32,
                    tag: 0,
                },
            ),
        );
        run(&mut s, 0, 20);
        assert_eq!(s.writes_outstanding, 1);
        s.from_mem(Packet::new(
            Node::Vault(0, 0),
            Node::L2(0),
            0,
            PacketKind::WriteAck {
                addr: 0x5000,
                tag: 0,
            },
        ));
        run(&mut s, 20, 25);
        assert_eq!(s.writes_outstanding, 0);
    }
}
