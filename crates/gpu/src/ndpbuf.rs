//! GPU-side NDP buffering: the per-SM pending/ready packet buffers and the
//! on-chip buffer manager that tracks NSU buffer credits per HMC (§4.1.1,
//! §4.3).

use std::collections::VecDeque;

use ndp_common::config::SystemConfig;
use ndp_common::credit::NsuCredits;
use ndp_common::ids::HmcId;
use ndp_common::packet::Packet;

/// The GPU's NDP buffer manager: per-HMC credit counts for the offload
/// command / read data / write address buffers on each NSU.
pub struct BufferManager {
    per_hmc: Vec<NsuCredits>,
}

impl BufferManager {
    pub fn new(cfg: &SystemConfig) -> Self {
        BufferManager {
            per_hmc: (0..cfg.hmc.num_hmcs)
                .map(|_| {
                    NsuCredits::new(
                        cfg.nsu.cmd_entries,
                        cfg.nsu.read_data_entries,
                        cfg.nsu.write_addr_entries,
                    )
                })
                .collect(),
        }
    }

    /// Reserve the NSU buffers one offload block instance needs.
    pub fn try_reserve(&mut self, hmc: HmcId, n_loads: usize, n_stores: usize) -> bool {
        self.per_hmc[hmc.0 as usize].try_reserve_block(n_loads, n_stores)
    }

    /// A command buffer entry drained (warp spawned on the NSU). `false` on
    /// over-release — a double credit return the system layer reports as an
    /// invariant violation.
    #[must_use]
    pub fn credit_cmd(&mut self, hmc: HmcId) -> bool {
        self.per_hmc[hmc.0 as usize].cmd.try_release(1)
    }

    /// Read-data entries consumed by an NSU load; `false` on over-release.
    #[must_use]
    pub fn credit_read(&mut self, hmc: HmcId, n: usize) -> bool {
        self.per_hmc[hmc.0 as usize].read_data.try_release(n)
    }

    /// Write-address entries consumed by an NSU store; `false` on
    /// over-release.
    #[must_use]
    pub fn credit_write(&mut self, hmc: HmcId, n: usize) -> bool {
        self.per_hmc[hmc.0 as usize].write_addr.try_release(n)
    }

    pub fn available(&self, hmc: HmcId) -> (usize, usize, usize) {
        let c = &self.per_hmc[hmc.0 as usize];
        (
            c.cmd.available(),
            c.read_data.available(),
            c.write_addr.available(),
        )
    }

    /// Checkpoint every per-HMC credit triple.
    pub fn snap(&self, w: &mut ndp_common::snap::SnapWriter) {
        w.len(self.per_hmc.len());
        for c in &self.per_hmc {
            c.snap(w);
        }
    }

    /// Overwrite from a checkpoint stream; `self` must be freshly built
    /// against the same config (HMC count is validated).
    pub fn restore(
        &mut self,
        r: &mut ndp_common::snap::SnapReader<'_>,
    ) -> Result<(), ndp_common::snap::SnapError> {
        let n = r.len()?;
        if n != self.per_hmc.len() {
            return Err(ndp_common::snap::SnapError(format!(
                "buffer manager tracks {} HMCs, checkpoint has {n}",
                self.per_hmc.len()
            )));
        }
        for c in &mut self.per_hmc {
            c.restore(r)?;
        }
        Ok(())
    }

    /// Credits currently reserved across all HMCs, per buffer class:
    /// `(cmd, read_data, write_addr)` — occupancy of the NSU buffers this
    /// manager guards, as seen from the GPU side.
    pub fn total_in_use(&self) -> (usize, usize, usize) {
        self.per_hmc.iter().fold((0, 0, 0), |acc, c| {
            (
                acc.0 + c.cmd.in_use(),
                acc.1 + c.read_data.in_use(),
                acc.2 + c.write_addr.in_use(),
            )
        })
    }
}

/// Per-SM pending + ready packet buffers (Table 2: 300 and 64 entries).
///
/// Packets whose target NSU is undetermined or whose buffer reservation has
/// not been granted wait in the *pending* buffer; granted packets move to
/// the *ready* buffer, from which they drain into the interconnect.
pub struct SmPacketBuffers {
    pending: VecDeque<Packet>,
    ready: VecDeque<Packet>,
    pending_cap: usize,
    ready_cap: usize,
    /// High-water marks for the §7.5 storage discussion.
    pub pending_peak: usize,
    pub ready_peak: usize,
}

impl SmPacketBuffers {
    pub fn new(cfg: &SystemConfig) -> Self {
        SmPacketBuffers {
            pending: VecDeque::new(),
            ready: VecDeque::new(),
            pending_cap: cfg.nsu.sm_pending_entries,
            ready_cap: cfg.nsu.sm_ready_entries,
            pending_peak: 0,
            ready_peak: 0,
        }
    }

    pub fn pending_has_room(&self, n: usize) -> bool {
        self.pending.len() + n <= self.pending_cap
    }

    pub fn push_pending(&mut self, p: Packet) {
        assert!(self.pending.len() < self.pending_cap, "pending overflow");
        self.pending.push_back(p);
        self.pending_peak = self.pending_peak.max(self.pending.len());
    }

    /// Move the front run of pending packets to ready (called once the
    /// warp's reservation is granted). Stops when the ready buffer fills.
    pub fn promote(&mut self, n: usize) -> usize {
        let mut moved = 0;
        while moved < n && !self.pending.is_empty() && self.ready.len() < self.ready_cap {
            let p = self.pending.pop_front().expect("nonempty");
            self.ready.push_back(p);
            moved += 1;
        }
        self.ready_peak = self.ready_peak.max(self.ready.len());
        moved
    }

    pub fn push_ready(&mut self, p: Packet) -> Result<(), Packet> {
        if self.ready.len() >= self.ready_cap {
            return Err(p);
        }
        self.ready.push_back(p);
        self.ready_peak = self.ready_peak.max(self.ready.len());
        Ok(())
    }

    pub fn ready_has_room(&self, n: usize) -> bool {
        self.ready.len() + n <= self.ready_cap
    }

    pub fn pop_ready(&mut self) -> Option<Packet> {
        self.ready.pop_front()
    }

    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pending.is_empty() && self.ready.is_empty()
    }

    /// Checkpoint both queues and their high-water marks. Capacities are
    /// config-derived and come from fresh construction on restore.
    pub fn snap(&self, w: &mut ndp_common::snap::SnapWriter) {
        w.len(self.pending.len());
        for p in &self.pending {
            p.snap(w);
        }
        w.len(self.ready.len());
        for p in &self.ready {
            p.snap(w);
        }
        w.usize(self.pending_peak);
        w.usize(self.ready_peak);
    }

    /// Overwrite from a checkpoint stream.
    pub fn restore(
        &mut self,
        r: &mut ndp_common::snap::SnapReader<'_>,
    ) -> Result<(), ndp_common::snap::SnapError> {
        self.pending.clear();
        for _ in 0..r.len()? {
            self.pending.push_back(Packet::restore(r)?);
        }
        self.ready.clear();
        for _ in 0..r.len()? {
            self.ready.push_back(Packet::restore(r)?);
        }
        self.pending_peak = r.usize()?;
        self.ready_peak = r.usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_common::ids::Node;
    use ndp_common::packet::PacketKind;

    fn pkt() -> Packet {
        Packet::new(
            Node::Sm(0),
            Node::Nsu(0),
            0,
            PacketKind::CacheInval { addr: 0 },
        )
    }

    #[test]
    fn manager_reserves_and_credits() {
        let cfg = SystemConfig::default();
        let mut m = BufferManager::new(&cfg);
        assert!(m.try_reserve(HmcId(0), 2, 1));
        assert_eq!(m.available(HmcId(0)), (9, 254, 255));
        assert!(m.credit_cmd(HmcId(0)));
        assert!(m.credit_read(HmcId(0), 2));
        assert!(m.credit_write(HmcId(0), 1));
        assert_eq!(m.available(HmcId(0)), (10, 256, 256));
        assert!(
            !m.credit_cmd(HmcId(0)),
            "over-release reported, not panicked"
        );
        assert_eq!(m.available(HmcId(0)), (10, 256, 256), "clamped at capacity");
    }

    #[test]
    fn cmd_entries_limit_concurrent_blocks() {
        let cfg = SystemConfig::default();
        let mut m = BufferManager::new(&cfg);
        for _ in 0..10 {
            assert!(m.try_reserve(HmcId(3), 0, 0));
        }
        assert!(!m.try_reserve(HmcId(3), 0, 0), "10 command entries");
        assert!(m.try_reserve(HmcId(4), 0, 0), "other stacks independent");
    }

    #[test]
    fn buffers_promote_in_order() {
        let cfg = SystemConfig::default();
        let mut b = SmPacketBuffers::new(&cfg);
        for _ in 0..5 {
            b.push_pending(pkt());
        }
        assert_eq!(b.promote(3), 3);
        assert_eq!(b.ready_len(), 3);
        assert_eq!(b.pending_len(), 2);
        assert!(b.pop_ready().is_some());
    }

    #[test]
    fn ready_capacity_bounds_promotion() {
        let mut cfg = SystemConfig::default();
        cfg.nsu.sm_ready_entries = 2;
        let mut b = SmPacketBuffers::new(&cfg);
        for _ in 0..5 {
            b.push_pending(pkt());
        }
        assert_eq!(b.promote(5), 2);
        assert!(!b.ready_has_room(1));
        assert!(b.push_ready(pkt()).is_err());
    }
}
