//! Set-associative cache with MSHRs (write-through, no write-allocate —
//! the policy the paper assumes for GPU on-chip caches, §5).
//!
//! Generic over the waiter payload `W` attached to outstanding misses so
//! both the per-SM L1 (waking load-tracking entries) and the L2 slices
//! (waking per-SM response fan-out) reuse it.

use std::collections::HashMap;

use ndp_common::stats::CacheStats;

/// Result of a read probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Line present.
    Hit,
    /// Miss; a new MSHR was allocated — the caller must send a fill request.
    MissNew,
    /// Miss on a line already being fetched; waiter merged, no new request.
    MissMerged,
    /// Miss, but the MSHR table is full; the access must be retried.
    MshrFull,
}

#[derive(Debug, Clone, Copy)]
struct LineState {
    tag: u64,
    valid: bool,
    last_use: u64,
}

/// A cache array + MSHR table.
pub struct Cache<W> {
    sets: Vec<Vec<LineState>>,
    set_mask: u64,
    line_shift: u32,
    mshrs: HashMap<u64, Vec<W>>,
    mshr_capacity: usize,
    use_clock: u64,
    pub stats: CacheStats,
}

impl<W> Cache<W> {
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize, mshrs: usize) -> Self {
        let lines = capacity_bytes / line_bytes;
        let sets = (lines / ways).max(1);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: (0..sets)
                .map(|_| {
                    vec![
                        LineState {
                            tag: 0,
                            valid: false,
                            last_use: 0
                        };
                        ways
                    ]
                })
                .collect(),
            set_mask: sets as u64 - 1,
            line_shift: line_bytes.trailing_zeros(),
            mshrs: HashMap::new(),
            mshr_capacity: mshrs,
            use_clock: 0,
            stats: CacheStats::default(),
        }
    }

    fn index(&self, line_addr: u64) -> (usize, u64) {
        let blk = line_addr >> self.line_shift;
        (
            (blk & self.set_mask) as usize,
            blk >> self.set_mask.count_ones(),
        )
    }

    /// Is the line resident? (No stats side effects, no LRU update.)
    pub fn contains(&self, line_addr: u64) -> bool {
        let (set, tag) = self.index(line_addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Probe for a read. On a hit the LRU state is refreshed. On a miss the
    /// waiter is recorded in the MSHR for `fill` to return later.
    pub fn probe_read(&mut self, line_addr: u64, waiter: W) -> Probe {
        self.use_clock += 1;
        let (set, tag) = self.index(line_addr);
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            l.last_use = self.use_clock;
            self.stats.read_hits += 1;
            return Probe::Hit;
        }
        self.stats.read_misses += 1;
        if let Some(ws) = self.mshrs.get_mut(&line_addr) {
            ws.push(waiter);
            return Probe::MissMerged;
        }
        if self.mshrs.len() >= self.mshr_capacity {
            // Don't count the retry storm as repeated misses.
            self.stats.read_misses -= 1;
            return Probe::MshrFull;
        }
        self.mshrs.insert(line_addr, vec![waiter]);
        Probe::MissNew
    }

    /// Install a fetched line and return the waiters to wake.
    pub fn fill(&mut self, line_addr: u64) -> Vec<W> {
        self.use_clock += 1;
        let (set, tag) = self.index(line_addr);
        if !self.sets[set].iter().any(|l| l.valid && l.tag == tag) {
            // Evict LRU.
            let clock = self.use_clock;
            let victim = self.sets[set]
                .iter_mut()
                .min_by_key(|l| if l.valid { l.last_use } else { 0 })
                .expect("nonzero ways");
            victim.tag = tag;
            victim.valid = true;
            victim.last_use = clock;
        }
        self.mshrs.remove(&line_addr).unwrap_or_default()
    }

    /// Write-through, no-allocate: refresh the line if present (the write
    /// updates it in place), never fetches.
    pub fn write_touch(&mut self, line_addr: u64) {
        self.use_clock += 1;
        self.stats.writes += 1;
        let (set, tag) = self.index(line_addr);
        let clock = self.use_clock;
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            l.last_use = clock;
        }
    }

    /// Invalidate a line (NSU write coherence, §4.2).
    pub fn invalidate(&mut self, line_addr: u64) {
        let (set, tag) = self.index(line_addr);
        if let Some(l) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            l.valid = false;
            self.stats.invalidations += 1;
        }
    }

    /// Outstanding misses.
    pub fn mshr_used(&self) -> usize {
        self.mshrs.len()
    }

    /// MSHR table capacity.
    pub fn mshr_capacity(&self) -> usize {
        self.mshr_capacity
    }

    /// Checkpoint the tag array, MSHR table (sorted by line address for
    /// byte-stable output), LRU clock and stats. Geometry is config-derived
    /// and comes from fresh construction on restore. `waiter` encodes the
    /// opaque miss payload.
    pub fn snap(
        &self,
        w: &mut ndp_common::snap::SnapWriter,
        waiter: impl Fn(&mut ndp_common::snap::SnapWriter, &W),
    ) {
        w.len(self.sets.len());
        for set in &self.sets {
            w.len(set.len());
            for l in set {
                w.u64(l.tag);
                w.bool(l.valid);
                w.u64(l.last_use);
            }
        }
        let mut mshrs: Vec<(&u64, &Vec<W>)> = self.mshrs.iter().collect();
        mshrs.sort_unstable_by_key(|(&a, _)| a);
        w.len(mshrs.len());
        for (&line, waiters) in mshrs {
            w.u64(line);
            w.len(waiters.len());
            for wt in waiters {
                waiter(w, wt);
            }
        }
        w.u64(self.use_clock);
        w.u64(self.stats.read_hits);
        w.u64(self.stats.read_misses);
        w.u64(self.stats.writes);
        w.u64(self.stats.invalidations);
    }

    /// Overwrite from a checkpoint stream; `self` must be freshly built with
    /// the same geometry (set/way counts are validated).
    pub fn restore(
        &mut self,
        r: &mut ndp_common::snap::SnapReader<'_>,
        waiter: impl Fn(&mut ndp_common::snap::SnapReader<'_>) -> Result<W, ndp_common::snap::SnapError>,
    ) -> Result<(), ndp_common::snap::SnapError> {
        let nsets = r.len()?;
        if nsets != self.sets.len() {
            return Err(ndp_common::snap::SnapError(format!(
                "cache has {} sets, checkpoint has {nsets}",
                self.sets.len()
            )));
        }
        for set in &mut self.sets {
            let nways = r.len()?;
            if nways != set.len() {
                return Err(ndp_common::snap::SnapError(format!(
                    "cache set has {} ways, checkpoint has {nways}",
                    set.len()
                )));
            }
            for l in set {
                l.tag = r.u64()?;
                l.valid = r.bool()?;
                l.last_use = r.u64()?;
            }
        }
        self.mshrs.clear();
        for _ in 0..r.len()? {
            let line = r.u64()?;
            let mut waiters = Vec::new();
            for _ in 0..r.len()? {
                waiters.push(waiter(r)?);
            }
            self.mshrs.insert(line, waiters);
        }
        self.use_clock = r.u64()?;
        self.stats.read_hits = r.u64()?;
        self.stats.read_misses = r.u64()?;
        self.stats.writes = r.u64()?;
        self.stats.invalidations = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> Cache<u32> {
        // 4 KB, 4-way, 128 B lines, 4 MSHRs → 8 sets.
        Cache::new(4096, 4, 128, 4)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = cache();
        assert_eq!(c.probe_read(0x1000, 1), Probe::MissNew);
        assert_eq!(c.probe_read(0x1000, 2), Probe::MissMerged);
        let w = c.fill(0x1000);
        assert_eq!(w, vec![1, 2]);
        assert_eq!(c.probe_read(0x1000, 3), Probe::Hit);
        assert_eq!(c.stats.read_hits, 1);
        assert_eq!(c.stats.read_misses, 2);
    }

    #[test]
    fn mshr_capacity_limits_outstanding_lines() {
        let mut c = cache();
        for i in 0..4u64 {
            assert_eq!(c.probe_read(0x1000 + i * 128, i as u32), Probe::MissNew);
        }
        assert_eq!(c.probe_read(0x9000, 9), Probe::MshrFull);
        c.fill(0x1000);
        assert_eq!(c.probe_read(0x9000, 9), Probe::MissNew);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = cache();
        // Fill one set (stride = sets × line = 1 KB) beyond associativity.
        for i in 0..5u64 {
            let a = i * 1024;
            c.probe_read(a, 0);
            c.fill(a);
        }
        assert!(!c.contains(0), "LRU way evicted");
        for i in 1..5u64 {
            assert!(c.contains(i * 1024));
        }
    }

    #[test]
    fn hits_refresh_lru() {
        let mut c = cache();
        for i in 0..4u64 {
            c.probe_read(i * 1024, 0);
            c.fill(i * 1024);
        }
        // Touch line 0 so line 1 becomes LRU.
        assert_eq!(c.probe_read(0, 0), Probe::Hit);
        c.probe_read(5 * 1024, 0);
        c.fill(5 * 1024);
        assert!(c.contains(0));
        assert!(!c.contains(1024));
    }

    #[test]
    fn write_through_does_not_allocate() {
        let mut c = cache();
        c.write_touch(0x2000);
        assert!(!c.contains(0x2000));
        assert_eq!(c.stats.writes, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = cache();
        c.probe_read(0x1000, 0);
        c.fill(0x1000);
        c.invalidate(0x1000);
        assert!(!c.contains(0x1000));
        assert_eq!(c.stats.invalidations, 1);
        // Invalidating an absent line is a no-op.
        c.invalidate(0x7000);
        assert_eq!(c.stats.invalidations, 1);
    }

    #[test]
    fn duplicate_fill_is_harmless() {
        let mut c = cache();
        c.probe_read(0x1000, 7);
        assert_eq!(c.fill(0x1000), vec![7]);
        assert!(c.fill(0x1000).is_empty());
        assert!(c.contains(0x1000));
    }
}
