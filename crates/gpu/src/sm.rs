//! Streaming multiprocessor timing model with partitioned-execution support.
//!
//! Each SM holds up to 48 warp contexts, issues up to `issue_width`
//! instructions per cycle through a loose round-robin scheduler with a
//! per-register scoreboard, coalesces memory accesses, probes its private
//! L1D, and — for offloaded block instances — generates the CMD/RDF/WTA
//! packet streams of §4.1.1 through the pending/ready NDP buffers.
//!
//! No-issue cycles are attributed to the Fig. 8 categories: ExecUnitBusy
//! (structural hazard: unit taken, MSHR full, buffers full), DependencyStall
//! (operand not ready), WarpIdle (no runnable instruction — empty slots,
//! barriers, or warps blocked on offload acknowledgments).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use ndp_common::bitset::BitSet;
use ndp_common::config::SystemConfig;
use ndp_common::error::{PacketSummary, SimError};
use ndp_common::ids::{Cycle, HmcId, Node, OffloadId, OffloadToken};
use ndp_common::memmap::MemMap;
use ndp_common::packet::{LineAccess, Packet, PacketKind};
use ndp_common::port::OutPort;
use ndp_common::stats::{IssueStats, NoIssue};
use ndp_compiler::CompiledKernel;
use ndp_isa::exec::{StepLite, WarpExec};
use ndp_isa::instr::MemSpace;
use ndp_isa::offload::InstrRole;
use ndp_isa::program::Item;
use ndp_isa::Reg;

use crate::cache::{Cache, Probe};
use crate::coalesce::coalesce;
use crate::ndpbuf::SmPacketBuffers;

/// Environment the SM consults for offload decisions and reports block
/// statistics to. Implemented by the system-level offload controller.
pub trait NdpEnv {
    /// Should this offload-block instance be offloaded? Called once per
    /// instance at `OFLD.BEG`.
    fn decide_offload(&mut self, sm: u16, block: u16) -> bool;
    /// Reserve NSU buffers for a block (§4.3). All-or-nothing.
    fn try_reserve(&mut self, hmc: HmcId, n_loads: usize, n_stores: usize) -> bool;
    /// Cache-behaviour sample for one load instruction of a block: lines
    /// touched and how many hit in the L1 (L2 hits are reported by the
    /// uncore separately). Feeds the §7.3 locality gate.
    fn note_block_lines(&mut self, block: u16, lines: u32, l1_hits: u32);
    /// One block instance finished (either side); `instrs` is the block's
    /// instruction count — the throughput signal of Algorithm 1.
    fn note_block_done(&mut self, block: u16, instrs: u32);
    /// A WTA line was generated whose DRAM write will land in `hmc`
    /// (§4.1 "Handling dynamic memory management": the GPU tracks in-flight
    /// write addresses per stack so a page swap can wait for them).
    fn note_wta_line(&mut self, hmc: HmcId);
    /// §7.1 extension — the optional small read-only cache on each NSU:
    /// returns true when `line` is already resident in `nsu`'s read-only
    /// cache (the GPU marshals all data movement, so it can keep this
    /// directory); marks the line resident otherwise. Always false when
    /// the feature is disabled.
    fn nsu_ro_cached(&mut self, nsu: HmcId, line: u64) -> bool {
        let _ = (nsu, line);
        false
    }
}

/// Per-SM static parameters (derived from [`SystemConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct SmConfig {
    pub id: u16,
    pub warp_slots: usize,
    pub issue_width: usize,
    pub alu_lat: u32,
    pub sfu_lat: u32,
    pub l1_lat: u32,
    pub line_bytes: u32,
    pub word_bytes: u32,
    /// Warps per CTA (for barrier scope).
    pub warps_per_cta: u32,
    /// Max packets the SM ejects into the interconnect per cycle.
    pub eject_rate: usize,
    /// Output queue capacity (backpressure bound).
    pub out_capacity: usize,
    pub shared_lat: u32,
    /// §4.1 RDF cache-probe behaviour (ablation knob).
    pub rdf_probes_cache: bool,
}

impl SmConfig {
    pub fn from_system(id: u16, cfg: &SystemConfig) -> Self {
        SmConfig {
            id,
            warp_slots: cfg.gpu.warps_per_sm,
            issue_width: cfg.gpu.issue_width,
            alu_lat: cfg.gpu.alu_latency,
            sfu_lat: cfg.gpu.sfu_latency,
            l1_lat: cfg.gpu.l1_hit_latency,
            line_bytes: cfg.gpu.line_bytes as u32,
            word_bytes: 4,
            warps_per_cta: cfg.gpu.warps_per_cta,
            eject_rate: 2,
            out_capacity: 128,
            shared_lat: cfg.gpu.l1_hit_latency,
            rdf_probes_cache: cfg.nsu.rdf_probes_gpu_cache,
        }
    }
}

/// Offload context of a warp currently inside an offloaded block instance.
#[derive(Debug)]
struct OflCtx {
    block: u16,
    token: OffloadToken,
    target: Option<HmcId>,
    /// Sequence number of the next memory instruction (§4.1.1).
    seq: u16,
    reserved: bool,
    /// Packets staged until the reservation is granted (pending buffer).
    /// A deque: promotion drains from the front while issue appends at the
    /// back, and `Vec::remove(0)` made the drain quadratic in depth.
    staged: VecDeque<Packet>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WState {
    Ready,
    Barrier,
    WaitAck,
}

struct WarpSlot {
    exec: WarpExec,
    cta: u32,
    reg_ready: [Cycle; 64],
    state: WState,
    ofl: Option<OflCtx>,
    /// Block the warp is currently passing through *without* offloading
    /// (for per-block stats parity).
    local_block: Option<u16>,
    /// Scheduler shortcut: the warp is known to be dependency-stalled until
    /// this cycle (`Cycle::MAX` while waiting on an outstanding load).
    wake_at: Cycle,
    /// Memoized coalesce result for the current memory instruction
    /// (`(executed-count, accesses)`), so repeated issue attempts under
    /// structural stalls don't redo the 32-lane grouping.
    coalesced: Option<(u64, Arc<Vec<LineAccess>>)>,
}

/// In-flight offload bookkeeping (per SM).
struct Inflight {
    slot: usize,
    block: u16,
}

struct LoadTrack {
    slot: usize,
    /// Slot incarnation at issue time — guards against a retired warp's
    /// slot being reused before a stale fill arrives.
    inc: u32,
    dst: Reg,
    remaining: u32,
}

/// One streaming multiprocessor.
pub struct Sm {
    pub cfg: SmConfig,
    kernel: Arc<CompiledKernel>,
    memmap: MemMap,
    slots: Vec<Option<WarpSlot>>,
    /// Per-slot incarnation counters (bumped on spawn).
    incarnation: Vec<u32>,
    /// Warps not yet launched: (global warp index, active mask, cta).
    launch_queue: VecDeque<(u32, u32, u32)>,
    l1d: Cache<u64>,
    load_tracks: HashMap<u64, LoadTrack>,
    next_track: u64,
    next_token: u64,
    inflight: HashMap<OffloadToken, Inflight>,
    buffers: SmPacketBuffers,
    /// Outgoing packets (cache traffic + granted NDP packets), drained by
    /// the fabric's SM-eject edge.
    pub out: OutPort,
    /// Barrier bookkeeping: cta → arrived count.
    barrier_arrived: HashMap<u32, u32>,
    /// cta → live warps resident.
    cta_alive: HashMap<u32, u32>,
    rr_cursor: usize,
    seed: u64,
    pub stats: IssueStats,
    /// Dynamic warp instructions issued inside offload blocks (either mode).
    pub block_instrs: u64,
    /// Warps that have fully completed (including ACK waits).
    pub warps_retired: u64,

    // ---- Incremental scheduler state (DESIGN.md §15) ----
    //
    // Everything below is derived from `slots` and maintained at the state-
    // transition sites, never rediscovered by per-cycle scans. None of it is
    // serialized: `restore` rebuilds it with `rebuild_sched`, keeping the
    // snapshot format byte-identical to the scan-based scheduler's.
    //
    /// Issue candidates: occupied slots in `Ready` state whose `wake_at` has
    /// passed (the wake-wheel moves slots here as their cycle arrives).
    sched_ready: BitSet,
    /// Dependency-stalled `Ready` slots keyed by their wake cycle. Slots
    /// parked at `Cycle::MAX` (awaiting a load fill) are in neither
    /// structure — `deliver` wakes them directly.
    wake_wheel: BTreeMap<Cycle, Vec<usize>>,
    /// Drained wheel buckets kept for reuse. A napping warp cycles through
    /// attach → service every few cycles; recycling the bucket vectors
    /// keeps that loop off the allocator. Pure cache: never serialized,
    /// never observed.
    wheel_pool: Vec<Vec<usize>>,
    /// Cycle of the most recent `service_wheel` call; every wheel key is
    /// strictly greater except transiently after a checkpoint restore.
    wheel_serviced_at: Cycle,
    /// Slots whose offload target is known but whose NSU-buffer reservation
    /// is still denied (`retry_reservations` candidates).
    retry_set: BitSet,
    /// Slots with a granted reservation and staged packets to promote
    /// (`promote_and_eject` candidates).
    promote_set: BitSet,
    /// Occupied slots in `Ready` state regardless of `wake_at` — the O(1)
    /// input to `note_skipped`'s stall attribution.
    ready_state_count: usize,
    /// Total staged packets across all offload contexts (pending-buffer
    /// admission check in `issue_rdf`/`issue_wta`).
    staged_total: usize,
    /// Perf-report surface: invoked issue cycles and the summed ready-set
    /// size over them (not model state; excluded from snapshots).
    ready_ticks: u64,
    ready_sum: u64,
    /// Test-only fault: drop wake-wheel insertions so the consistency
    /// checker's detection of a missing update site can be demonstrated.
    #[doc(hidden)]
    pub sabotage_drop_wheel: bool,
}

impl Sm {
    pub fn new(cfg: SmConfig, sys: &SystemConfig, kernel: Arc<CompiledKernel>) -> Self {
        Sm {
            cfg,
            memmap: MemMap::new(sys),
            slots: (0..cfg.warp_slots).map(|_| None).collect(),
            incarnation: vec![0; cfg.warp_slots],
            launch_queue: VecDeque::new(),
            l1d: Cache::new(
                sys.gpu.l1d_bytes,
                sys.gpu.l1d_ways,
                sys.gpu.line_bytes,
                sys.gpu.l1d_mshrs,
            ),
            load_tracks: HashMap::new(),
            next_track: 0,
            next_token: 0,
            inflight: HashMap::new(),
            buffers: SmPacketBuffers::new(sys),
            out: OutPort::new(cfg.out_capacity),
            barrier_arrived: HashMap::new(),
            cta_alive: HashMap::new(),
            rr_cursor: 0,
            seed: sys.seed,
            stats: IssueStats::default(),
            block_instrs: 0,
            warps_retired: 0,
            sched_ready: BitSet::new(cfg.warp_slots),
            wake_wheel: BTreeMap::new(),
            wheel_pool: Vec::new(),
            wheel_serviced_at: 0,
            retry_set: BitSet::new(cfg.warp_slots),
            promote_set: BitSet::new(cfg.warp_slots),
            ready_state_count: 0,
            staged_total: 0,
            ready_ticks: 0,
            ready_sum: 0,
            sabotage_drop_wheel: false,
            kernel,
        }
    }

    /// Queue a warp for execution on this SM.
    pub fn assign_warp(&mut self, warp_global: u32, active: u32, cta: u32) {
        self.launch_queue.push_back((warp_global, active, cta));
    }

    /// All warps retired and nothing in flight.
    pub fn is_done(&self) -> bool {
        self.launch_queue.is_empty()
            && self.slots.iter().all(|s| s.is_none())
            && self.load_tracks.is_empty()
            && self.inflight.is_empty()
            && self.out.is_empty()
            && self.buffers.is_empty()
    }

    pub fn l1_stats(&self) -> ndp_common::stats::CacheStats {
        self.l1d.stats
    }

    /// Checkpoint every mutable field: warp slots (functional executor state,
    /// scoreboard, offload context, coalesce memo), launch queue, L1D +
    /// MSHRs, load tracking, token counters, in-flight offloads, NDP packet
    /// buffers, output port, barrier/CTA bookkeeping and statistics. Maps
    /// are written sorted by key for byte-stable output; `kernel`, `memmap`,
    /// `cfg` and `seed` are config/kernel-derived and come from fresh
    /// construction on restore.
    pub fn snap(&self, w: &mut ndp_common::snap::SnapWriter) {
        w.len(self.slots.len());
        for s in &self.slots {
            w.bool(s.is_some());
            let Some(slot) = s else { continue };
            slot.exec.snap(w);
            w.u32(slot.cta);
            for c in &slot.reg_ready {
                w.u64(*c);
            }
            w.u8(match slot.state {
                WState::Ready => 0,
                WState::Barrier => 1,
                WState::WaitAck => 2,
            });
            w.bool(slot.ofl.is_some());
            if let Some(ofl) = &slot.ofl {
                w.u16(ofl.block);
                w.u64(ofl.token.0);
                w.bool(ofl.target.is_some());
                w.u8(ofl.target.map_or(0, |h| h.0));
                w.u16(ofl.seq);
                w.bool(ofl.reserved);
                w.len(ofl.staged.len());
                for p in &ofl.staged {
                    p.snap(w);
                }
            }
            w.bool(slot.local_block.is_some());
            w.u16(slot.local_block.unwrap_or(0));
            w.u64(slot.wake_at);
            w.bool(slot.coalesced.is_some());
            if let Some((execd, accesses)) = &slot.coalesced {
                w.u64(*execd);
                w.len(accesses.len());
                for a in accesses.iter() {
                    a.snap(w);
                }
            }
        }
        w.len(self.incarnation.len());
        for i in &self.incarnation {
            w.u32(*i);
        }
        w.len(self.launch_queue.len());
        for (wg, active, cta) in &self.launch_queue {
            w.u32(*wg);
            w.u32(*active);
            w.u32(*cta);
        }
        self.l1d.snap(w, |w, &track| w.u64(track));
        let mut tracks: Vec<(&u64, &LoadTrack)> = self.load_tracks.iter().collect();
        tracks.sort_unstable_by_key(|(&k, _)| k);
        w.len(tracks.len());
        for (&k, t) in tracks {
            w.u64(k);
            w.usize(t.slot);
            w.u32(t.inc);
            w.u8(t.dst.0);
            w.u32(t.remaining);
        }
        w.u64(self.next_track);
        w.u64(self.next_token);
        let mut infl: Vec<(&OffloadToken, &Inflight)> = self.inflight.iter().collect();
        infl.sort_unstable_by_key(|(&t, _)| t);
        w.len(infl.len());
        for (&t, i) in infl {
            w.u64(t.0);
            w.usize(i.slot);
            w.u16(i.block);
        }
        self.buffers.snap(w);
        self.out.snap(w);
        let mut barriers: Vec<(u32, u32)> =
            self.barrier_arrived.iter().map(|(&c, &n)| (c, n)).collect();
        barriers.sort_unstable();
        w.len(barriers.len());
        for (c, n) in barriers {
            w.u32(c);
            w.u32(n);
        }
        let mut alive: Vec<(u32, u32)> = self.cta_alive.iter().map(|(&c, &n)| (c, n)).collect();
        alive.sort_unstable();
        w.len(alive.len());
        for (c, n) in alive {
            w.u32(c);
            w.u32(n);
        }
        w.usize(self.rr_cursor);
        w.u64(self.stats.issued);
        w.u64(self.stats.exec_unit_busy);
        w.u64(self.stats.dependency_stall);
        w.u64(self.stats.warp_idle);
        w.u64(self.block_instrs);
        w.u64(self.warps_retired);
    }

    /// Overwrite from a checkpoint stream; `self` must be freshly built
    /// against the same config and kernel (slot count is validated).
    pub fn restore(
        &mut self,
        r: &mut ndp_common::snap::SnapReader<'_>,
    ) -> Result<(), ndp_common::snap::SnapError> {
        let ns = r.len()?;
        if ns != self.slots.len() {
            return Err(ndp_common::snap::SnapError(format!(
                "sm has {} warp slots, checkpoint has {ns}",
                self.slots.len()
            )));
        }
        for s in &mut self.slots {
            if !r.bool()? {
                *s = None;
                continue;
            }
            // Shape from construction (match_end comes from the program);
            // every dynamic field is overwritten by the restore below.
            let mut exec = WarpExec::new(&self.kernel.program, 0, 0, self.seed);
            exec.restore(r)?;
            let cta = r.u32()?;
            let mut reg_ready = [0u64; 64];
            for c in reg_ready.iter_mut() {
                *c = r.u64()?;
            }
            let state = match r.u8()? {
                0 => WState::Ready,
                1 => WState::Barrier,
                2 => WState::WaitAck,
                other => {
                    return Err(ndp_common::snap::SnapError(format!(
                        "unknown warp state discriminant {other}"
                    )))
                }
            };
            let ofl = if r.bool()? {
                let block = r.u16()?;
                let token = OffloadToken(r.u64()?);
                let has_target = r.bool()?;
                let target_raw = r.u8()?;
                let seq = r.u16()?;
                let reserved = r.bool()?;
                let mut staged = VecDeque::new();
                for _ in 0..r.len()? {
                    staged.push_back(Packet::restore(r)?);
                }
                Some(OflCtx {
                    block,
                    token,
                    target: has_target.then_some(HmcId(target_raw)),
                    seq,
                    reserved,
                    staged,
                })
            } else {
                None
            };
            let has_local = r.bool()?;
            let local_raw = r.u16()?;
            let wake_at = r.u64()?;
            let coalesced = if r.bool()? {
                let execd = r.u64()?;
                let mut accesses = Vec::new();
                for _ in 0..r.len()? {
                    accesses.push(LineAccess::restore(r)?);
                }
                Some((execd, Arc::new(accesses)))
            } else {
                None
            };
            *s = Some(WarpSlot {
                exec,
                cta,
                reg_ready,
                state,
                ofl,
                local_block: has_local.then_some(local_raw),
                wake_at,
                coalesced,
            });
        }
        let ni = r.len()?;
        if ni != self.incarnation.len() {
            return Err(ndp_common::snap::SnapError(format!(
                "sm has {} incarnation slots, checkpoint has {ni}",
                self.incarnation.len()
            )));
        }
        for i in &mut self.incarnation {
            *i = r.u32()?;
        }
        self.launch_queue.clear();
        for _ in 0..r.len()? {
            let wg = r.u32()?;
            let active = r.u32()?;
            let cta = r.u32()?;
            self.launch_queue.push_back((wg, active, cta));
        }
        self.l1d.restore(r, |r| r.u64())?;
        self.load_tracks.clear();
        for _ in 0..r.len()? {
            let k = r.u64()?;
            let t = LoadTrack {
                slot: r.usize()?,
                inc: r.u32()?,
                dst: Reg(r.u8()?),
                remaining: r.u32()?,
            };
            self.load_tracks.insert(k, t);
        }
        self.next_track = r.u64()?;
        self.next_token = r.u64()?;
        self.inflight.clear();
        for _ in 0..r.len()? {
            let t = OffloadToken(r.u64()?);
            let i = Inflight {
                slot: r.usize()?,
                block: r.u16()?,
            };
            self.inflight.insert(t, i);
        }
        self.buffers.restore(r)?;
        self.out.restore(r)?;
        self.barrier_arrived.clear();
        for _ in 0..r.len()? {
            let c = r.u32()?;
            let n = r.u32()?;
            self.barrier_arrived.insert(c, n);
        }
        self.cta_alive.clear();
        for _ in 0..r.len()? {
            let c = r.u32()?;
            let n = r.u32()?;
            self.cta_alive.insert(c, n);
        }
        self.rr_cursor = r.usize()?;
        self.stats.issued = r.u64()?;
        self.stats.exec_unit_busy = r.u64()?;
        self.stats.dependency_stall = r.u64()?;
        self.stats.warp_idle = r.u64()?;
        self.block_instrs = r.u64()?;
        self.warps_retired = r.u64()?;
        self.rebuild_sched();
        Ok(())
    }

    /// Rebuild every derived scheduler structure from `slots` (restore
    /// path). `Ready` slots with a nonzero finite `wake_at` all go to the
    /// wheel — possibly with an already-passed key, which the first
    /// `service_wheel` call drains — so no resume cycle is needed here.
    fn rebuild_sched(&mut self) {
        self.sched_ready.clear();
        self.wake_wheel.clear();
        self.wheel_serviced_at = 0;
        self.retry_set.clear();
        self.promote_set.clear();
        self.ready_state_count = 0;
        self.staged_total = 0;
        for i in 0..self.slots.len() {
            let Some(slot) = self.slots[i].as_ref() else {
                continue;
            };
            if slot.state == WState::Ready {
                self.ready_state_count += 1;
                if slot.wake_at == 0 {
                    self.sched_ready.insert(i);
                } else if slot.wake_at != Cycle::MAX {
                    self.wake_wheel.entry(slot.wake_at).or_default().push(i);
                }
            }
            if let Some(ofl) = slot.ofl.as_ref() {
                self.staged_total += ofl.staged.len();
                if ofl.target.is_some() && !ofl.reserved {
                    self.retry_set.insert(i);
                }
                if ofl.reserved && !ofl.staged.is_empty() {
                    self.promote_set.insert(i);
                }
            }
        }
    }

    /// Move every wheel slot whose wake cycle has arrived into the ready
    /// set. Runs at the top of each invoked tick; between ticks the horizon
    /// keeps the system from jumping past the earliest wheel key.
    fn service_wheel(&mut self, now: Cycle) {
        self.wheel_serviced_at = now;
        while let Some((&at, _)) = self.wake_wheel.first_key_value() {
            if at > now {
                break;
            }
            let mut bucket = self.wake_wheel.remove(&at).expect("peeked above");
            for &i in &bucket {
                debug_assert!(
                    matches!(&self.slots[i], Some(s) if s.state == WState::Ready),
                    "wake-wheel slot must still be Ready"
                );
                self.sched_ready.insert(i);
            }
            if self.wheel_pool.len() < 32 {
                bucket.clear();
                self.wheel_pool.push(bucket);
            }
        }
    }

    /// Remove slot `i` from whichever issue structure holds it (ready set
    /// or wake-wheel bucket at its current `wake_at`). Call *before*
    /// mutating the slot's `state` or `wake_at`.
    fn sched_detach(&mut self, i: usize) {
        if self.sched_ready.remove(i) {
            return;
        }
        let Some(slot) = self.slots[i].as_ref() else {
            return;
        };
        let at = slot.wake_at;
        if at == Cycle::MAX {
            return;
        }
        if let Some(bucket) = self.wake_wheel.get_mut(&at) {
            bucket.retain(|&j| j != i);
            if bucket.is_empty() {
                let bucket = self.wake_wheel.remove(&at).expect("present");
                if self.wheel_pool.len() < 32 {
                    self.wheel_pool.push(bucket);
                }
            }
        }
    }

    /// Re-file a `Ready` slot after its `wake_at` changed: issuable now →
    /// ready set, finite future wake → wheel, `Cycle::MAX` → parked until
    /// `deliver` wakes it.
    fn sched_attach(&mut self, i: usize, now: Cycle) {
        let Some(slot) = self.slots[i].as_ref() else {
            return;
        };
        if slot.state != WState::Ready {
            return;
        }
        let at = slot.wake_at;
        if at <= now {
            self.sched_ready.insert(i);
        } else if at != Cycle::MAX && !self.sabotage_drop_wheel {
            let pool = &mut self.wheel_pool;
            self.wake_wheel
                .entry(at)
                .or_insert_with(|| pool.pop().unwrap_or_default())
                .push(i);
        }
    }

    /// A load fill (or barrier-independent wake) arrived for slot `i`:
    /// clear its stall and make it an issue candidate if it is `Ready`.
    fn wake_now(&mut self, i: usize) {
        self.sched_detach(i);
        let Some(slot) = self.slots[i].as_mut() else {
            return;
        };
        slot.wake_at = 0;
        if slot.state == WState::Ready {
            self.sched_ready.insert(i);
        }
    }

    /// Per-tick shared-state footprint: everything an SM's tick touches
    /// through the shared [`NdpEnv`] controller. ndp-lint's
    /// parallel-safety pass reasons from this list (a write here is what
    /// keeps `tick:sms` sequential), and the `NDP_RACE=1` detector
    /// validates it — an env call recording a resource outside this list
    /// is a typed `UndeclaredAccess` (DESIGN.md §16). Write membership
    /// implies read permission.
    pub const FOOTPRINT: ndp_common::footprint::Footprint = ndp_common::footprint::Footprint {
        reads: &[],
        writes: &[
            ndp_common::footprint::res::CTRL_CREDITS,
            ndp_common::footprint::res::CTRL_DECISIONS,
            ndp_common::footprint::res::CTRL_BLOCK_STATS,
            ndp_common::footprint::res::CTRL_HILL_CLIMB,
            ndp_common::footprint::res::CTRL_WTA_INFLIGHT,
            ndp_common::footprint::res::CTRL_RO_CACHE,
        ],
    };

    /// Internal structures whose updates can create work for a future tick.
    /// ndp-lint's quiescence pass cross-checks this list against the wake
    /// sources declared on the `tick:sms` skip spec: forgetting to declare
    /// a new one (or declaring a phantom) is a lint error, because
    /// `next_work_at` must observe every structure that can hold deferred
    /// work.
    pub const WAKE_SOURCES: &'static [&'static str] = &[
        "sm:launch_queue",
        "sm:ndp_buffers",
        "sm:sched_ready",
        "sm:wake_wheel",
        "sm:retry_set",
        "sm:promote_set",
    ];

    /// Brute-force reference horizon: the pre-ready-set implementation that
    /// rescans every slot. Kept as the oracle the property suite diffs the
    /// incremental structures against.
    #[doc(hidden)]
    pub fn next_work_at_oracle(&self, now: Cycle) -> Option<Cycle> {
        if !self.launch_queue.is_empty() || !self.buffers.is_empty() {
            return Some(now);
        }
        let mut horizon: Option<Cycle> = None;
        for slot in self.slots.iter().flatten() {
            if let Some(ofl) = &slot.ofl {
                if ofl.target.is_some() && (!ofl.reserved || !ofl.staged.is_empty()) {
                    return Some(now);
                }
            }
            if slot.state == WState::Ready {
                if slot.wake_at <= now {
                    return Some(now);
                }
                if slot.wake_at != Cycle::MAX {
                    horizon = Some(horizon.map_or(slot.wake_at, |h: Cycle| h.min(slot.wake_at)));
                }
            }
        }
        horizon
    }

    /// Diff every incremental scheduler structure against a brute-force
    /// full-slot rescan. Any stale or missing membership is reported with
    /// the structure's name — the oracle the randomized property test and
    /// the wake-wheel mutation test both lean on.
    #[doc(hidden)]
    pub fn check_sched_consistency(&self) -> Result<(), String> {
        let mut ready_count = 0usize;
        let mut staged = 0usize;
        let in_wheel =
            |i: usize, at: Cycle| self.wake_wheel.get(&at).is_some_and(|b| b.contains(&i));
        let in_any_bucket = |i: usize| self.wake_wheel.values().any(|b| b.contains(&i));
        for (i, s) in self.slots.iter().enumerate() {
            let Some(slot) = s else {
                if self.sched_ready.contains(i) {
                    return Err(format!("sched_ready contains empty slot {i}"));
                }
                if in_any_bucket(i) {
                    return Err(format!("wake_wheel contains empty slot {i}"));
                }
                if self.retry_set.contains(i) {
                    return Err(format!("retry_set contains empty slot {i}"));
                }
                if self.promote_set.contains(i) {
                    return Err(format!("promote_set contains empty slot {i}"));
                }
                continue;
            };
            if slot.state == WState::Ready {
                ready_count += 1;
                if slot.wake_at <= self.wheel_serviced_at {
                    if !self.sched_ready.contains(i) {
                        return Err(format!(
                            "sched_ready missing slot {i} (Ready, wake_at {} already serviced)",
                            slot.wake_at
                        ));
                    }
                    if in_any_bucket(i) {
                        return Err(format!("wake_wheel stale entry for ready slot {i}"));
                    }
                } else if slot.wake_at != Cycle::MAX {
                    if self.sched_ready.contains(i) {
                        return Err(format!(
                            "sched_ready stale entry for slot {i} (wake_at {} in the future)",
                            slot.wake_at
                        ));
                    }
                    if !in_wheel(i, slot.wake_at) {
                        return Err(format!(
                            "wake_wheel missing slot {i} at wake_at {} — a wake-wheel \
                             update site was dropped",
                            slot.wake_at
                        ));
                    }
                } else {
                    if self.sched_ready.contains(i) {
                        return Err(format!("sched_ready contains load-parked slot {i}"));
                    }
                    if in_any_bucket(i) {
                        return Err(format!("wake_wheel contains load-parked slot {i}"));
                    }
                }
            } else {
                if self.sched_ready.contains(i) {
                    return Err(format!("sched_ready contains non-Ready slot {i}"));
                }
                if in_any_bucket(i) {
                    return Err(format!("wake_wheel contains non-Ready slot {i}"));
                }
            }
            let (want_retry, want_promote) = slot.ofl.as_ref().map_or((false, false), |ofl| {
                staged += ofl.staged.len();
                (
                    ofl.target.is_some() && !ofl.reserved,
                    ofl.reserved && !ofl.staged.is_empty(),
                )
            });
            if self.retry_set.contains(i) != want_retry {
                return Err(format!(
                    "retry_set disagrees with rescan for slot {i} (expected {want_retry})"
                ));
            }
            if self.promote_set.contains(i) != want_promote {
                return Err(format!(
                    "promote_set disagrees with rescan for slot {i} (expected {want_promote})"
                ));
            }
        }
        if self.ready_state_count != ready_count {
            return Err(format!(
                "ready_state_count is {}, rescan says {ready_count}",
                self.ready_state_count
            ));
        }
        if self.staged_total != staged {
            return Err(format!(
                "staged_total is {}, rescan says {staged}",
                self.staged_total
            ));
        }
        if let Some(b) = self.wake_wheel.values().find(|b| b.is_empty()) {
            let _ = b;
            return Err("wake_wheel holds an empty bucket".to_string());
        }
        Ok(())
    }

    /// Mean ready-set size per invoked issue cycle (perf-report surface).
    pub fn ready_occupancy(&self) -> f64 {
        if self.ready_ticks == 0 {
            0.0
        } else {
            self.ready_sum as f64 / self.ready_ticks as f64
        }
    }

    fn spawn_warps(&mut self) {
        if self.launch_queue.is_empty() {
            return;
        }
        for i in 0..self.slots.len() {
            if self.slots[i].is_none() {
                let Some((wg, active, cta)) = self.launch_queue.pop_front() else {
                    break;
                };
                *self.cta_alive.entry(cta).or_insert(0) += 1;
                self.incarnation[i] += 1;
                self.slots[i] = Some(WarpSlot {
                    exec: WarpExec::new(&self.kernel.program, wg, active, self.seed),
                    cta,
                    reg_ready: [0; 64],
                    state: WState::Ready,
                    ofl: None,
                    local_block: None,
                    wake_at: 0,
                    coalesced: None,
                });
                self.ready_state_count += 1;
                self.sched_ready.insert(i);
            }
        }
    }

    /// Advance one cycle. Issues instructions, stages/promotes NDP packets,
    /// ejects packets into `out`.
    pub fn tick(&mut self, now: Cycle, env: &mut dyn NdpEnv) {
        self.service_wheel(now);
        self.spawn_warps();
        self.retry_reservations(env);
        self.issue(now, env);
        self.promote_and_eject();
    }

    /// Retry buffer reservations for warps whose target is known (§4.1.1:
    /// packets wait in the pending buffer until granted). Only `retry_set`
    /// members — target known, grant outstanding — are visited, in the same
    /// ascending slot order the full scan used.
    fn retry_reservations(&mut self, env: &mut dyn NdpEnv) {
        let mut from = 0;
        while let Some(i) = self.retry_set.next_at_or_after(from) {
            from = i + 1;
            let slot = self.slots[i].as_ref().expect("retry_set slot is resident");
            let ofl = slot.ofl.as_ref().expect("retry_set slot has offload ctx");
            let hmc = ofl.target.expect("retry_set slot has a target");
            let b = self.kernel.block(ofl.block);
            if env.try_reserve(hmc, b.n_loads(), b.n_stores()) {
                let ofl = self.slots[i]
                    .as_mut()
                    .expect("checked")
                    .ofl
                    .as_mut()
                    .expect("checked");
                ofl.reserved = true;
                let has_staged = !ofl.staged.is_empty();
                self.retry_set.remove(i);
                if has_staged {
                    self.promote_set.insert(i);
                }
            }
        }
    }

    /// Move granted staged packets into the ready buffer and eject. Only
    /// `promote_set` members — reserved with staged packets — are visited,
    /// in the same ascending slot order the full scan used.
    fn promote_and_eject(&mut self) {
        let mut from = 0;
        while let Some(i) = self.promote_set.next_at_or_after(from) {
            from = i + 1;
            let slot = self.slots[i]
                .as_mut()
                .expect("promote_set slot is resident");
            let ofl = slot.ofl.as_mut().expect("promote_set slot has offload ctx");
            let target = ofl.target.expect("reserved implies target");
            while !ofl.staged.is_empty() && self.buffers.ready_has_room(1) {
                let mut p = ofl.staged.pop_front().expect("nonempty");
                retarget(&mut p, target);
                self.buffers.push_ready(p).expect("room checked");
                self.staged_total -= 1;
            }
            if ofl.staged.is_empty() {
                self.promote_set.remove(i);
            }
        }
        for _ in 0..self.cfg.eject_rate {
            if self.out.len() >= self.cfg.out_capacity {
                break;
            }
            match self.buffers.pop_ready() {
                Some(p) => self.out.push_back(p),
                None => break,
            }
        }
    }

    fn issue(&mut self, now: Cycle, env: &mut dyn NdpEnv) {
        let n = self.slots.len();
        let mut issued = 0usize;
        let mut alu_free = 2usize;
        let mut lsu_free = 1usize;
        let mut sfu_free = 1usize;
        let mut saw_exec_busy = false;
        let mut saw_dep = false;

        self.ready_ticks += 1;
        self.ready_sum += self.sched_ready.count() as u64;
        // Ready slots parked in the wake-wheel or on an outstanding load:
        // the full scan visited each and recorded a dependency stall. Only
        // consulted when nothing issues, exactly like the scanned flag.
        let deferred_dep = self.ready_state_count > self.sched_ready.count();

        // Round-robin scan over ready-set members only, replicating the
        // full scan's visit sequence exactly: position (rr_cursor + k) % n
        // for k in 0..n, with rr_cursor advancing past each issued slot.
        // The bitset jump elides the empty/stalled/blocked positions the
        // old loop `continue`d over; membership is re-read live, so slots
        // woken mid-scan (barrier release) are still visited.
        let mut k = 0usize;
        while k < n && issued < self.cfg.issue_width {
            let p = (self.rr_cursor + k) % n;
            let Some(i) = self
                .sched_ready
                .next_at_or_after(p)
                .or_else(|| self.sched_ready.next_at_or_after(0))
            else {
                break;
            };
            k += (i + n - p) % n;
            if k >= n {
                break;
            }
            match self.try_issue_warp(now, i, env, &mut alu_free, &mut lsu_free, &mut sfu_free) {
                IssueResult::Issued => {
                    issued += 1;
                    self.rr_cursor = (i + 1) % n;
                }
                IssueResult::ExecBusy => saw_exec_busy = true,
                IssueResult::DepStall => saw_dep = true,
                IssueResult::Idle => {}
            }
            k += 1;
        }

        if issued > 0 {
            self.stats.issued += issued as u64;
        } else if saw_exec_busy {
            self.stats.record_no_issue(NoIssue::ExecUnitBusy);
        } else if saw_dep || deferred_dep {
            self.stats.record_no_issue(NoIssue::DependencyStall);
        } else {
            self.stats.record_no_issue(NoIssue::WarpIdle);
        }
    }

    fn try_issue_warp(
        &mut self,
        now: Cycle,
        slot_idx: usize,
        env: &mut dyn NdpEnv,
        alu_free: &mut usize,
        lsu_free: &mut usize,
        sfu_free: &mut usize,
    ) -> IssueResult {
        let kernel = Arc::clone(&self.kernel);
        let program = &kernel.program;
        let slot = self.slots[slot_idx].as_mut().expect("checked");
        let step = slot.exec.current_lite(program);

        // Warp finished?
        if matches!(step, StepLite::Done) {
            self.finish_warp(slot_idx);
            return IssueResult::Idle;
        }
        let idx = step.idx().expect("not done");

        // Block-boundary bookkeeping: entering a block?
        if slot.ofl.is_none() && slot.local_block.is_none() {
            if let Some(bid) = kernel.block_starting_at[idx] {
                if env.decide_offload(self.cfg.id, bid) {
                    let token = OffloadToken(((self.cfg.id as u64) << 40) | self.next_token);
                    self.next_token += 1;
                    let b = kernel.block(bid);
                    let active = slot.exec.active.count_ones() as u8;
                    let cmd = Packet::new(
                        Node::Sm(self.cfg.id),
                        Node::Nsu(0), // retargeted once the target is known
                        now,
                        PacketKind::OffloadCmd {
                            token,
                            id: OffloadId {
                                sm: self.cfg.id,
                                warp: slot_idx as u16,
                                seq: 0,
                            },
                            nsu_pc: b.nsu_pc,
                            regs_in: b.live_in.len() as u8,
                            active,
                            mask: slot.exec.active,
                            n_loads: b.n_loads() as u8,
                            n_stores: b.n_stores() as u8,
                        },
                    );
                    slot.ofl = Some(OflCtx {
                        block: bid,
                        token,
                        target: None,
                        seq: 0,
                        reserved: false,
                        staged: VecDeque::from([cmd]),
                    });
                    self.staged_total += 1;
                } else {
                    slot.local_block = Some(bid);
                }
            }
        }

        let role = slot
            .ofl
            .as_ref()
            .map(|o| kernel.block(o.block).role_of(idx))
            .unwrap_or(None);

        match step {
            StepLite::Done => unreachable!(),
            StepLite::Barrier { .. } => {
                // Barriers are outside offload blocks by construction.
                slot.state = WState::Barrier;
                let cta = slot.cta;
                slot.exec.advance(program);
                self.sched_detach(slot_idx);
                self.ready_state_count -= 1;
                let arrived = self.barrier_arrived.entry(cta).or_insert(0);
                *arrived += 1;
                if *arrived >= *self.cta_alive.get(&cta).unwrap_or(&0) {
                    self.barrier_arrived.insert(cta, 0);
                    self.release_barrier(cta);
                }
                IssueResult::Issued
            }
            StepLite::Alu { op, dst, idx } => {
                match role {
                    Some(InstrRole::AtNsu) => {
                        // NOP on the GPU: consumes an issue slot only.
                        slot.exec.advance(program);
                        self.block_instrs += 1;
                        self.after_instr(now, slot_idx, idx, env);
                        IssueResult::Issued
                    }
                    _ => {
                        // Normal ALU (includes AddrCalc inside blocks).
                        if !self.operands_ready(now, slot_idx, idx) {
                            return IssueResult::DepStall;
                        }
                        let (unit, lat) = if op.is_sfu() {
                            (sfu_free, self.cfg.sfu_lat)
                        } else {
                            (alu_free, self.cfg.alu_lat)
                        };
                        if *unit == 0 {
                            return IssueResult::ExecBusy;
                        }
                        *unit -= 1;
                        let slot = self.slots[slot_idx].as_mut().expect("checked");
                        slot.exec.advance(program);
                        slot.reg_ready[dst.0 as usize] = now + lat as Cycle;
                        if self.kernel.role_map[idx].is_some() {
                            self.block_instrs += 1;
                        }
                        self.after_instr(now, slot_idx, idx, env);
                        IssueResult::Issued
                    }
                }
            }
            StepLite::Load {
                idx,
                dst,
                space,
                addr,
            } => {
                if *lsu_free == 0 {
                    return IssueResult::ExecBusy;
                }
                if !self.operands_ready(now, slot_idx, idx) {
                    return IssueResult::DepStall;
                }
                if space != MemSpace::Global {
                    // Scratchpad/constant: fixed-latency on-chip access.
                    *lsu_free -= 1;
                    let slot = self.slots[slot_idx].as_mut().expect("checked");
                    slot.exec.advance(program);
                    slot.reg_ready[dst.0 as usize] = now + self.cfg.shared_lat as Cycle;
                    self.after_instr(now, slot_idx, idx, env);
                    return IssueResult::Issued;
                }
                let accesses = self.coalesce_memo(slot_idx, addr);
                let r = if role == Some(InstrRole::Load) {
                    self.issue_rdf(now, slot_idx, &accesses, env)
                } else {
                    self.issue_local_load(now, slot_idx, idx, dst, &accesses, env)
                };
                if matches!(r, IssueResult::Issued) {
                    *lsu_free -= 1;
                    self.after_instr(now, slot_idx, idx, env);
                }
                r
            }
            StepLite::Store { idx, space, addr } => {
                if *lsu_free == 0 {
                    return IssueResult::ExecBusy;
                }
                if !self.operands_ready(now, slot_idx, idx) {
                    return IssueResult::DepStall;
                }
                if space != MemSpace::Global {
                    *lsu_free -= 1;
                    let slot = self.slots[slot_idx].as_mut().expect("checked");
                    slot.exec.advance(program);
                    self.after_instr(now, slot_idx, idx, env);
                    return IssueResult::Issued;
                }
                let accesses = self.coalesce_memo(slot_idx, addr);
                let r = if role == Some(InstrRole::Store) {
                    self.issue_wta(now, slot_idx, &accesses, env)
                } else {
                    self.issue_local_store(now, slot_idx, idx, &accesses)
                };
                if matches!(r, IssueResult::Issued) {
                    *lsu_free -= 1;
                    self.after_instr(now, slot_idx, idx, env);
                }
                r
            }
        }
    }

    /// Scoreboard: the cycle at which the GPU-relevant source operands are
    /// all ready. Inside an offloaded block, NSU-produced values (load dsts,
    /// `@NSU` results) are not waited on by the GPU (only address chains
    /// matter); a store's data register is likewise skipped when offloaded.
    fn operands_ready_at(&self, slot_idx: usize, idx: usize) -> Cycle {
        let slot = self.slots[slot_idx].as_ref().expect("checked");
        let Item::Op(instr) = &self.kernel.program.items[idx] else {
            return 0;
        };
        let offloaded_role = slot
            .ofl
            .as_ref()
            .and_then(|o| self.kernel.block(o.block).role_of(idx));
        let ready = |r: Reg| slot.reg_ready[r.0 as usize];
        match offloaded_role {
            Some(InstrRole::Load) | Some(InstrRole::Store) => {
                instr.addr_reg().map(ready).unwrap_or(0)
            }
            Some(InstrRole::AtNsu) => 0,
            _ => {
                let mut at = 0;
                instr.for_each_src(|r| at = at.max(ready(r)));
                at
            }
        }
    }

    /// Scoreboard check; on a stall, memoize the wake-up cycle so the
    /// scheduler skips this warp until its operands can be ready.
    fn operands_ready(&mut self, now: Cycle, slot_idx: usize, idx: usize) -> bool {
        let at = self.operands_ready_at(slot_idx, idx);
        if at <= now {
            true
        } else {
            self.sched_detach(slot_idx);
            self.slots[slot_idx].as_mut().expect("checked").wake_at = at;
            self.sched_attach(slot_idx, now);
            false
        }
    }

    /// Structural-hazard backoff: skip this warp for a few cycles (MSHRs
    /// and output queues rarely free up within one cycle). The wake slot is
    /// cleared by `deliver` when a fill arrives anyway.
    fn nap(&mut self, now: Cycle, slot_idx: usize, until: Cycle) {
        self.sched_detach(slot_idx);
        let slot = self.slots[slot_idx].as_mut().expect("checked");
        slot.wake_at = slot.wake_at.max(until);
        self.sched_attach(slot_idx, now);
    }

    /// Coalesce with memoization keyed on the warp's dynamic instruction
    /// count (stable across repeated issue attempts of the same instr).
    /// Returns a shared handle: `LineAccess` holds per-lane vectors, so a
    /// deep clone per issue attempt is real allocator traffic on the
    /// re-visit paths (a stalled warp retries the same instruction for
    /// many cycles).
    fn coalesce_memo(&mut self, slot_idx: usize, addr: Reg) -> Arc<Vec<LineAccess>> {
        let word = self.cfg.word_bytes;
        let line = self.cfg.line_bytes;
        let slot = self.slots[slot_idx].as_mut().expect("checked");
        let key = slot.exec.executed;
        if let Some((k, a)) = &slot.coalesced {
            if *k == key {
                return Arc::clone(a);
            }
        }
        let a = Arc::new(coalesce(slot.exec.reg(addr), slot.exec.active, word, line));
        slot.coalesced = Some((key, Arc::clone(&a)));
        a
    }

    /// Post-issue bookkeeping: block exit detection.
    fn after_instr(&mut self, now: Cycle, slot_idx: usize, idx: usize, env: &mut dyn NdpEnv) {
        let kernel = Arc::clone(&self.kernel);
        let slot = self.slots[slot_idx].as_mut().expect("checked");
        if let Some(ofl) = slot.ofl.as_ref() {
            let b = kernel.block(ofl.block);
            if idx + 1 == b.end {
                // OFLD.END: block until the ACK returns (§4.1.1). The warp
                // can context-switch — other warps keep the SM busy.
                let token = ofl.token;
                let block = ofl.block;
                slot.state = WState::WaitAck;
                self.sched_detach(slot_idx);
                self.ready_state_count -= 1;
                self.inflight.insert(
                    token,
                    Inflight {
                        slot: slot_idx,
                        block,
                    },
                );
                let _ = now;
            }
        } else if let Some(bid) = slot.local_block {
            let b = kernel.block(bid);
            if idx + 1 == b.end {
                slot.local_block = None;
                env.note_block_done(bid, (b.end - b.start) as u32);
            }
        }
    }

    /// Offloaded load: generate RDF packets (§4.1.1). The L1 is probed
    /// first; hits ship the cached words straight to the NSU as RDF
    /// responses (consuming GPU off-chip bandwidth — the §7.1 BPROP effect).
    fn issue_rdf(
        &mut self,
        now: Cycle,
        slot_idx: usize,
        accesses: &[LineAccess],
        env: &mut dyn NdpEnv,
    ) -> IssueResult {
        let kernel = Arc::clone(&self.kernel);
        let n = accesses.len();
        // Pending-buffer capacity check (shared across warps).
        if !self
            .buffers
            .pending_has_room(self.staged_total.saturating_add(n))
        {
            return IssueResult::ExecBusy;
        }

        // Determine target from the first memory instruction (most-accessed
        // stack wins, first on ties — Fig. 5 policy). A fresh target makes
        // the slot a reservation-retry candidate.
        let slot = self.slots[slot_idx].as_mut().expect("checked");
        let ofl = slot.ofl.as_mut().expect("role implies offload ctx");
        let newly_targeted = ofl.target.is_none();
        if newly_targeted {
            ofl.target = Some(pick_target(accesses, &self.memmap));
        }
        let target = ofl.target.expect("set above");
        let token = ofl.token;
        let seq = ofl.seq;
        ofl.seq += 1;
        if newly_targeted {
            self.retry_set.insert(slot_idx);
        }

        let ofl_block_id = ofl_block(self.slots[slot_idx].as_ref());
        let mut l1_hits = 0u32;
        let mut staged = vec![];
        for access in accesses.iter().cloned() {
            // Probe-only L1 lookup: no MSHR, the data never returns here.
            let hit = self.cfg.rdf_probes_cache && self.l1d.contains(access.line);
            if hit {
                self.l1d.stats.read_hits += 1;
                l1_hits += 1;
                if env.nsu_ro_cached(target, access.line) {
                    // §7.1 read-only NSU cache: the data is already there —
                    // send a header-only reference instead of the words.
                    staged.push(Packet::new(
                        Node::Sm(self.cfg.id),
                        Node::Nsu(target.0),
                        now,
                        PacketKind::Rdf {
                            token,
                            seq,
                            access,
                            target: Node::Nsu(target.0),
                            block: ofl_block_id,
                            cache_hit_data: false,
                        },
                    ));
                    continue;
                }
                staged.push(Packet::new(
                    Node::Sm(self.cfg.id),
                    Node::Nsu(target.0),
                    now,
                    PacketKind::RdfResp { token, seq, access },
                ));
            } else {
                self.l1d.stats.read_misses += 1;
                let coord = self.memmap.decode(access.line);
                staged.push(Packet::new(
                    Node::Sm(self.cfg.id),
                    Node::Vault(coord.hmc.0, coord.vault.0),
                    now,
                    PacketKind::Rdf {
                        token,
                        seq,
                        access,
                        target: Node::Nsu(target.0),
                        block: ofl_block_id,
                        cache_hit_data: hit,
                    },
                ));
            }
        }
        env.note_block_lines(ofl_block(self.slots[slot_idx].as_ref()), n as u32, l1_hits);
        let added = staged.len();
        let slot = self.slots[slot_idx].as_mut().expect("checked");
        slot.exec.advance(&kernel.program);
        let ofl = slot.ofl.as_mut().expect("ctx");
        ofl.staged.extend(staged);
        let promotable = ofl.reserved;
        self.staged_total += added;
        if promotable {
            self.promote_set.insert(slot_idx);
        }
        self.block_instrs += 1;
        IssueResult::Issued
    }

    /// Offloaded store: generate WTA packets carrying physical addresses.
    fn issue_wta(
        &mut self,
        now: Cycle,
        slot_idx: usize,
        accesses: &[LineAccess],
        env: &mut dyn NdpEnv,
    ) -> IssueResult {
        let kernel = Arc::clone(&self.kernel);
        let n = accesses.len();
        if !self
            .buffers
            .pending_has_room(self.staged_total.saturating_add(n))
        {
            return IssueResult::ExecBusy;
        }
        let slot = self.slots[slot_idx].as_mut().expect("checked");
        let ofl = slot.ofl.as_mut().expect("role implies offload ctx");
        let newly_targeted = ofl.target.is_none();
        if newly_targeted {
            ofl.target = Some(pick_target(accesses, &self.memmap));
        }
        let target = ofl.target.expect("set");
        let token = ofl.token;
        let seq = ofl.seq;
        ofl.seq += 1;
        let reserved = ofl.reserved;
        let n_accesses = accesses.len() as u8;
        let mut wta_hmcs = Vec::with_capacity(accesses.len());
        for access in accesses.iter().cloned() {
            wta_hmcs.push(self.memmap.hmc_of(access.line));
            ofl.staged.push_back(Packet::new(
                Node::Sm(self.cfg.id),
                Node::Nsu(target.0),
                now,
                PacketKind::Wta {
                    token,
                    seq,
                    access,
                    target: Node::Nsu(target.0),
                    n_accesses,
                },
            ));
        }
        slot.exec.advance(&kernel.program);
        self.staged_total += n;
        if newly_targeted {
            self.retry_set.insert(slot_idx);
        }
        if reserved {
            self.promote_set.insert(slot_idx);
        }
        self.block_instrs += 1;
        for h in wta_hmcs {
            env.note_wta_line(h);
        }
        IssueResult::Issued
    }

    /// Baseline load through L1 (+ L2/DRAM on miss).
    fn issue_local_load(
        &mut self,
        now: Cycle,
        slot_idx: usize,
        idx: usize,
        dst: Reg,
        accesses: &[LineAccess],
        env: &mut dyn NdpEnv,
    ) -> IssueResult {
        let kernel = Arc::clone(&self.kernel);
        // Structural checks first: we need room for worst-case misses.
        let misses_possible = accesses.len();
        if self.out.len() + misses_possible > self.cfg.out_capacity {
            self.nap(now, slot_idx, now + 4);
            return IssueResult::ExecBusy;
        }
        // MSHR room for new misses (conservative: a resident probe per
        // line). Stop counting as soon as the headroom is exceeded — under
        // MSHR backpressure this is the hottest no-issue path in the SM,
        // and each napping warp re-runs the check every few cycles.
        let headroom = self
            .l1d
            .mshr_capacity()
            .saturating_sub(self.l1d.mshr_used());
        let mut new_lines = 0usize;
        for a in accesses {
            if !self.l1d.contains(a.line) {
                new_lines += 1;
                if new_lines > headroom {
                    self.nap(now, slot_idx, now + 4);
                    return IssueResult::ExecBusy;
                }
            }
        }

        let track_id = self.next_track;
        self.next_track += 1;
        let mut remaining = 0u32;
        let mut l1_hits = 0u32;
        let n_lines = accesses.len() as u32;
        for access in accesses {
            match self.l1d.probe_read(access.line, track_id) {
                Probe::Hit => l1_hits += 1,
                Probe::MissMerged => remaining += 1,
                Probe::MissNew => {
                    remaining += 1;
                    self.out.push_back(Packet::new(
                        Node::Sm(self.cfg.id),
                        Node::L2(self.memmap.hmc_of(access.line).0),
                        now,
                        PacketKind::ReadReq {
                            addr: access.line,
                            bytes: self.cfg.line_bytes,
                            tag: ((self.cfg.id as u64) << 40) | track_id,
                            block: kernel.role_map[idx]
                                .map(|(b, _)| b)
                                .unwrap_or(ndp_common::packet::NO_BLOCK),
                        },
                    ));
                }
                Probe::MshrFull => unreachable!("capacity pre-checked"),
            }
        }

        // Per-block cache statistics also accumulate for non-offloaded
        // instances so the §7.3 gate can observe locality either way.
        if let Some((bid, InstrRole::Load)) = kernel.role_map[idx] {
            env.note_block_lines(bid, n_lines, l1_hits);
        }

        let slot = self.slots[slot_idx].as_mut().expect("checked");
        slot.exec.advance(&kernel.program);
        if remaining == 0 {
            slot.reg_ready[dst.0 as usize] = now + self.cfg.l1_lat as Cycle;
        } else {
            slot.reg_ready[dst.0 as usize] = Cycle::MAX;
            let inc = self.incarnation[slot_idx];
            self.load_tracks.insert(
                track_id,
                LoadTrack {
                    slot: slot_idx,
                    inc,
                    dst,
                    remaining,
                },
            );
        }
        if kernel.role_map[idx].is_some() {
            self.block_instrs += 1;
        }
        IssueResult::Issued
    }

    /// Baseline write-through store.
    fn issue_local_store(
        &mut self,
        now: Cycle,
        slot_idx: usize,
        idx: usize,
        accesses: &[LineAccess],
    ) -> IssueResult {
        let kernel = Arc::clone(&self.kernel);
        if self.out.len() + accesses.len() > self.cfg.out_capacity {
            return IssueResult::ExecBusy;
        }
        for access in accesses {
            self.l1d.write_touch(access.line);
            self.out.push_back(Packet::new(
                Node::Sm(self.cfg.id),
                Node::L2(self.memmap.hmc_of(access.line).0),
                now,
                PacketKind::WriteReq {
                    addr: access.line,
                    words: access.active_words(),
                    tag: 0,
                },
            ));
        }
        let slot = self.slots[slot_idx].as_mut().expect("checked");
        slot.exec.advance(&kernel.program);
        if kernel.role_map[idx].is_some() {
            self.block_instrs += 1;
        }
        IssueResult::Issued
    }

    /// Release every Barrier-state warp of `cta` back into the ready set.
    /// All of them are immediately issuable: a warp only reaches `Barrier`
    /// by issuing its BAR, so its `wake_at` predates that issue cycle.
    fn release_barrier(&mut self, cta: u32) {
        for i in 0..self.slots.len() {
            let Some(s) = self.slots[i].as_mut() else {
                continue;
            };
            if s.cta == cta && s.state == WState::Barrier {
                s.state = WState::Ready;
                self.ready_state_count += 1;
                self.sched_ready.insert(i);
            }
        }
    }

    fn finish_warp(&mut self, slot_idx: usize) {
        self.sched_detach(slot_idx);
        self.retry_set.remove(slot_idx);
        self.promote_set.remove(slot_idx);
        let slot = self.slots[slot_idx].take().expect("checked");
        debug_assert_eq!(
            slot.state,
            WState::Ready,
            "warps finish from the issue scan"
        );
        self.ready_state_count -= 1;
        self.staged_total -= slot.ofl.as_ref().map_or(0, |o| o.staged.len());
        if let Some(alive) = self.cta_alive.get_mut(&slot.cta) {
            *alive -= 1;
            // Release barrier waiters if this warp's exit satisfies the CTA.
            let cta = slot.cta;
            let arrived = self.barrier_arrived.get(&cta).copied().unwrap_or(0);
            if *alive > 0 && arrived >= *alive {
                self.barrier_arrived.insert(cta, 0);
                self.release_barrier(cta);
            }
        }
        self.warps_retired += 1;
    }

    /// Deliver an inbound packet (L1 fill or offload ACK).
    pub fn deliver(&mut self, now: Cycle, p: Packet, env: &mut dyn NdpEnv) -> Result<(), SimError> {
        match p.kind {
            PacketKind::ReadResp { addr, tag, .. } => {
                let track_id = tag & 0xff_ffff_ffff;
                let waiters = self.l1d.fill(addr);
                debug_assert!(waiters.contains(&track_id) || waiters.is_empty());
                for w in waiters {
                    if let Some(t) = self.load_tracks.get_mut(&w) {
                        t.remaining -= 1;
                        if t.remaining == 0 {
                            let (slot_idx, inc, dst) = (t.slot, t.inc, t.dst);
                            self.load_tracks.remove(&w);
                            if self.incarnation[slot_idx] == inc {
                                if let Some(slot) = self.slots[slot_idx].as_mut() {
                                    slot.reg_ready[dst.0 as usize] = now + 2;
                                }
                                self.wake_now(slot_idx);
                            }
                        }
                    }
                }
            }
            PacketKind::OffloadAck { token, .. } => {
                let Some(inf) = self.inflight.remove(&token) else {
                    return Ok(());
                };
                let b = self.kernel.block(inf.block);
                env.note_block_done(inf.block, (b.end - b.start) as u32);
                if let Some(slot) = self.slots[inf.slot].as_mut() {
                    debug_assert_eq!(slot.state, WState::WaitAck);
                    // Live-out registers become visible now.
                    for r in &b.live_out {
                        slot.reg_ready[r.0 as usize] = now + 2;
                    }
                    let leftover = slot.ofl.as_ref().map_or(0, |o| o.staged.len());
                    slot.ofl = None;
                    slot.state = WState::Ready;
                    slot.wake_at = 0;
                    self.staged_total -= leftover;
                    self.retry_set.remove(inf.slot);
                    self.promote_set.remove(inf.slot);
                    self.ready_state_count += 1;
                    self.sched_ready.insert(inf.slot);
                }
            }
            _ => {
                return Err(SimError::BadDelivery {
                    component: format!("sm{}", self.cfg.id),
                    cycle: now,
                    packet: PacketSummary::of(&p),
                    detail: "SM cannot consume this packet kind".to_string(),
                });
            }
        }
        Ok(())
    }

    /// Human-readable wait states of resident warps, for stall diagnosis.
    /// One line per non-ready warp: what it waits on and for how long.
    pub fn wait_summary(&self, now: Cycle) -> Vec<String> {
        let mut lines = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            match slot.state {
                WState::Ready => {}
                WState::Barrier => lines.push(format!(
                    "sm{} slot{i}: at barrier (cta {})",
                    self.cfg.id, slot.cta
                )),
                WState::WaitAck => {
                    let token = slot.ofl.as_ref().map(|o| o.token.0);
                    lines.push(format!(
                        "sm{} slot{i}: waiting for OffloadAck (token {:?}, since wake_at {}, now {now})",
                        self.cfg.id, token, slot.wake_at
                    ));
                }
            }
        }
        lines
    }

    /// Occupied warp slots (for utilization reporting).
    pub fn resident_warps(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Peak pending/ready buffer usage (§7.5).
    pub fn buffer_peaks(&self) -> (usize, usize) {
        (self.buffers.pending_peak, self.buffers.ready_peak)
    }

    /// Current pending/ready NDP buffer depths (occupancy sampling).
    pub fn ndp_buffer_depths(&self) -> (usize, usize) {
        (self.buffers.pending_len(), self.buffers.ready_len())
    }

    /// Quiescence horizon (see [`ndp_common::port::Component::next_work_at`]):
    /// the earliest cycle a tick could spawn, reserve, issue, promote, or
    /// eject anything. O(1): every act-now condition is a maintained
    /// membership set (see the `WAKE_SOURCES` contract), and the only
    /// deferrals — dependency-stalled warps with a known wake cycle — sit
    /// in the wake-wheel, whose first key is the exact horizon. Warps
    /// blocked on a barrier or an offload ACK wake via packet delivery or
    /// a sibling warp's issue, both visible to other horizons, so they
    /// contribute `None`.
    pub fn next_work_at(&self, now: Cycle) -> Option<Cycle> {
        if !self.launch_queue.is_empty()
            || !self.buffers.is_empty()
            || !self.sched_ready.is_empty()
            || !self.retry_set.is_empty()
            || !self.promote_set.is_empty()
        {
            return Some(now);
        }
        // `max(now)` covers not-yet-serviced keys right after a restore.
        self.wake_wheel.keys().next().map(|&at| at.max(now))
    }

    /// Replay the issue-stall statistics an elided tick would have
    /// recorded. On a cycle [`Sm::next_work_at`] proved idle, `issue`
    /// attempts nothing, so the attribution is exactly: some warp is
    /// resident and Ready (necessarily `wake_at > now`) → DependencyStall;
    /// otherwise WarpIdle. ExecUnitBusy is impossible without an issue
    /// attempt. Everything else in `tick` is a no-op on such cycles.
    pub fn note_skipped(&mut self, k: u64) {
        if self.ready_state_count > 0 {
            self.stats.dependency_stall += k;
        } else {
            self.stats.warp_idle += k;
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueResult {
    Issued,
    ExecBusy,
    DepStall,
    Idle,
}

/// Fix up a staged packet once the target NSU is known.
fn retarget(p: &mut Packet, target: HmcId) {
    match &mut p.kind {
        PacketKind::OffloadCmd { .. } => p.dst = Node::Nsu(target.0),
        PacketKind::Wta { target: t, .. } => {
            *t = Node::Nsu(target.0);
            p.dst = Node::Nsu(target.0);
        }
        PacketKind::Rdf { target: t, .. } => {
            *t = Node::Nsu(target.0);
            // dst (the vault) already set at generation.
        }
        PacketKind::RdfResp { .. } => p.dst = Node::Nsu(target.0),
        _ => {}
    }
}

/// Target-NSU policy: the stack with the most accesses from the first
/// memory instruction (first one on ties) — §4.1.1 / Fig. 5.
fn pick_target(accesses: &[LineAccess], memmap: &MemMap) -> HmcId {
    let mut counts: HashMap<HmcId, (usize, usize)> = HashMap::new(); // hmc → (count, first_idx)
    for (i, a) in accesses.iter().enumerate() {
        let h = memmap.hmc_of(a.line);
        let e = counts.entry(h).or_insert((0, i));
        e.0 += 1;
    }
    counts
        .into_iter()
        .max_by(|(_, (c1, f1)), (_, (c2, f2))| c1.cmp(c2).then(f2.cmp(f1)))
        .map(|(h, _)| h)
        .expect("nonempty accesses")
}

fn ofl_block(slot: Option<&WarpSlot>) -> u16 {
    slot.and_then(|s| s.ofl.as_ref())
        .map(|o| o.block)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_compiler::{compile, CompilerConfig};
    use ndp_isa::instr::{AluOp, Instr, Operand};
    use ndp_isa::program::{Item, Program, TripCount};

    /// Test double for the offload controller.
    struct MockEnv {
        offload: bool,
        reserve: bool,
        lines: Vec<(u16, u32, u32)>,
        done: Vec<(u16, u32)>,
        wta: Vec<HmcId>,
    }

    impl MockEnv {
        fn new(offload: bool) -> Self {
            MockEnv {
                offload,
                reserve: true,
                lines: vec![],
                done: vec![],
                wta: vec![],
            }
        }
    }

    impl NdpEnv for MockEnv {
        fn decide_offload(&mut self, _sm: u16, _block: u16) -> bool {
            self.offload
        }
        fn try_reserve(&mut self, _hmc: HmcId, _l: usize, _s: usize) -> bool {
            self.reserve
        }
        fn note_block_lines(&mut self, b: u16, l: u32, h: u32) {
            self.lines.push((b, l, h));
        }
        fn note_block_done(&mut self, b: u16, i: u32) {
            self.done.push((b, i));
        }
        fn note_wta_line(&mut self, h: HmcId) {
            self.wta.push(h);
        }
    }

    /// `out[tid] = a[tid] * a[tid]` — one 3-instruction offload block.
    fn tiny_kernel() -> Program {
        let mut p = Program::new("t", 4);
        let t = |r: u8| Operand::Reg(Reg(r));
        p.items = vec![
            Item::Op(Instr::alu3(
                AluOp::IMad,
                Reg(1),
                Operand::Tid,
                Operand::Imm(4),
                Operand::Imm(0x10_0000),
            )),
            Item::Op(Instr::ld(Reg(2), Reg(1))),
            Item::Op(Instr::alu(AluOp::FMul, Reg(3), t(2), t(2))),
            Item::Op(Instr::alu3(
                AluOp::IMad,
                Reg(4),
                Operand::Tid,
                Operand::Imm(4),
                Operand::Imm(0x20_0000),
            )),
            Item::Op(Instr::st(Reg(3), Reg(4))),
        ];
        p
    }

    fn mk_sm(program: &Program) -> Sm {
        let sys = SystemConfig::default();
        let kernel = Arc::new(compile(program, &CompilerConfig::default()));
        Sm::new(SmConfig::from_system(0, &sys), &sys, kernel)
    }

    #[test]
    fn baseline_load_goes_through_l1_and_misses() {
        let p = tiny_kernel();
        let mut sm = mk_sm(&p);
        let mut env = MockEnv::new(false);
        sm.assign_warp(0, u32::MAX, 0);
        for now in 0..20 {
            sm.tick(now, &mut env);
        }
        // The unit-stride load coalesces to one line and misses the cold L1.
        let reads: Vec<&Packet> = sm
            .out
            .iter()
            .filter(|p| matches!(p.kind, PacketKind::ReadReq { .. }))
            .collect();
        assert_eq!(reads.len(), 1);
        assert_eq!(sm.l1_stats().read_misses, 1);
        // Block stats accumulate even without offloading (§7.3 parity).
        assert_eq!(env.lines, vec![(0, 1, 0)]);
    }

    #[test]
    fn baseline_warp_completes_after_fill() {
        let p = tiny_kernel();
        let mut sm = mk_sm(&p);
        let mut env = MockEnv::new(false);
        sm.assign_warp(0, u32::MAX, 0);
        let mut fill_sent = false;
        for now in 0..400 {
            sm.tick(now, &mut env);
            if !fill_sent {
                if let Some(req) = sm.out.pop_front() {
                    if let PacketKind::ReadReq { addr, tag, .. } = req.kind {
                        sm.deliver(
                            now,
                            Packet::new(
                                Node::L2(0),
                                Node::Sm(0),
                                now,
                                PacketKind::ReadResp {
                                    addr,
                                    bytes: 128,
                                    tag,
                                },
                            ),
                            &mut env,
                        )
                        .unwrap();
                        fill_sent = true;
                    }
                }
            }
        }
        assert_eq!(sm.warps_retired, 1);
        assert_eq!(env.done, vec![(0, 5)], "block completion reported");
        // The store left as a write-through packet.
        assert!(sm
            .out
            .iter()
            .any(|p| matches!(p.kind, PacketKind::WriteReq { .. })));
    }

    #[test]
    fn offloaded_block_emits_cmd_rdf_wta_and_blocks() {
        let p = tiny_kernel();
        let mut sm = mk_sm(&p);
        let mut env = MockEnv::new(true);
        sm.assign_warp(0, u32::MAX, 0);
        for now in 0..100 {
            sm.tick(now, &mut env);
        }
        let kinds: Vec<usize> = sm.out.iter().map(|p| p.kind_index()).collect();
        // CMD(4), RDF(5), WTA(7) — in protocol order.
        assert_eq!(kinds, vec![4, 5, 7], "{kinds:?}");
        assert_eq!(env.wta.len(), 1, "one WTA line registered");
        assert_eq!(sm.warps_retired, 0, "warp blocked at OFLD.END");
        assert!(!sm.is_done());
        // The ACK releases it.
        let token = match sm.out[0].kind {
            PacketKind::OffloadCmd { token, .. } => token,
            ref other => panic!("{other:?}"),
        };
        sm.deliver(
            100,
            Packet::new(
                Node::Nsu(0),
                Node::Sm(0),
                100,
                PacketKind::OffloadAck {
                    token,
                    id: OffloadId {
                        sm: 0,
                        warp: 0,
                        seq: 0,
                    },
                    regs_out: 0,
                    active: 32,
                    values: vec![],
                },
            ),
            &mut env,
        )
        .unwrap();
        for now in 101..160 {
            sm.tick(now, &mut env);
        }
        assert_eq!(sm.warps_retired, 1);
        assert_eq!(env.done, vec![(0, 5)], "whole block range counted");
    }

    #[test]
    fn reservation_denial_keeps_packets_staged() {
        let p = tiny_kernel();
        let mut sm = mk_sm(&p);
        let mut env = MockEnv::new(true);
        env.reserve = false;
        sm.assign_warp(0, u32::MAX, 0);
        for now in 0..100 {
            sm.tick(now, &mut env);
        }
        assert!(sm.out.is_empty(), "no credits ⇒ nothing leaves the SM");
        // Granting credits releases the stream.
        env.reserve = true;
        for now in 100..200 {
            sm.tick(now, &mut env);
        }
        assert_eq!(sm.out.len(), 3, "CMD + RDF + WTA after grant");
    }

    #[test]
    fn barrier_synchronizes_cta() {
        let mut p = Program::new("bar", 2);
        p.items = vec![
            Item::Op(Instr::mov(Reg(0), Operand::Tid)),
            Item::LoopBegin(TripCount::PerWarp { base: 1, spread: 8 }),
            Item::Op(Instr::alu(
                AluOp::IAdd,
                Reg(0),
                Operand::Reg(Reg(0)),
                Operand::Imm(1),
            )),
            Item::LoopEnd,
            Item::Bar,
            Item::Op(Instr::mov(Reg(1), Operand::Imm(7))),
        ];
        let mut sm = mk_sm(&p);
        let mut env = MockEnv::new(false);
        sm.assign_warp(0, u32::MAX, 0);
        sm.assign_warp(1, u32::MAX, 0);
        for now in 0..200 {
            sm.tick(now, &mut env);
        }
        assert_eq!(sm.warps_retired, 2, "both warps pass the barrier");
    }

    #[test]
    fn no_issue_cycles_attributed() {
        let p = tiny_kernel();
        let mut sm = mk_sm(&p);
        let mut env = MockEnv::new(false);
        sm.assign_warp(0, u32::MAX, 0);
        for now in 0..100 {
            sm.tick(now, &mut env);
        }
        // The warp is stalled on its outstanding load most of the time.
        assert!(sm.stats.dependency_stall > 0);
        assert!(sm.stats.issued >= 2);
    }

    #[test]
    fn empty_sm_counts_warp_idle() {
        let p = tiny_kernel();
        let mut sm = mk_sm(&p);
        let mut env = MockEnv::new(false);
        for now in 0..10 {
            sm.tick(now, &mut env);
        }
        assert_eq!(sm.stats.warp_idle, 10);
        assert!(sm.is_done());
    }

    #[test]
    fn divergent_rdf_fans_out_per_line() {
        // One load with a data-dependent divergent address pattern.
        let mut p = Program::new("gather", 1);
        p.items = vec![
            Item::Op(Instr::alu3(
                AluOp::IMad,
                Reg(1),
                Operand::Tid,
                Operand::Imm(4),
                Operand::Imm(0x10_0000),
            )),
            Item::Op(Instr::ld(Reg(2), Reg(1))), // direct
            Item::Op(Instr::alu(
                AluOp::And,
                Reg(3),
                Operand::Reg(Reg(2)),
                Operand::Imm(0xffff),
            )),
            Item::Op(Instr::alu3(
                AluOp::IMad,
                Reg(4),
                Operand::Reg(Reg(3)),
                Operand::Imm(4),
                Operand::Imm(0x20_0000),
            )),
            Item::Op(Instr::ld(Reg(5), Reg(4))), // indirect → §4.4 block
            Item::Op(Instr::st(Reg(5), Reg(1))),
        ];
        let kernel = compile(&p, &CompilerConfig::default());
        assert!(kernel.blocks.iter().any(|b| b.indirect));
        let sys = SystemConfig::default();
        let mut sm = Sm::new(SmConfig::from_system(0, &sys), &sys, Arc::new(kernel));
        let mut env = MockEnv::new(true);
        sm.assign_warp(0, u32::MAX, 0);
        // Serve the direct load so the gather's address materializes.
        for now in 0..600 {
            sm.tick(now, &mut env);
            let fills: Vec<(u64, u64)> = sm
                .out
                .iter()
                .filter_map(|p| match p.kind {
                    PacketKind::ReadReq { addr, tag, .. } => Some((addr, tag)),
                    _ => None,
                })
                .collect();
            sm.out
                .retain(|p| !matches!(p.kind, PacketKind::ReadReq { .. }));
            for (addr, tag) in fills {
                sm.deliver(
                    now,
                    Packet::new(
                        Node::L2(0),
                        Node::Sm(0),
                        now,
                        PacketKind::ReadResp {
                            addr,
                            bytes: 128,
                            tag,
                        },
                    ),
                    &mut env,
                )
                .unwrap();
            }
        }
        let rdf_count = sm
            .out
            .iter()
            .filter(|p| matches!(p.kind, PacketKind::Rdf { .. }))
            .count();
        assert!(
            rdf_count > 8,
            "divergent gather should fan out to many lines, got {rdf_count}"
        );
    }

    #[test]
    fn pick_target_prefers_most_accessed_stack() {
        let sys = SystemConfig::default();
        let mm = MemMap::new(&sys);
        // Construct accesses: 1 line on some stack A, 2 lines on stack B.
        let mut lines_by_hmc: HashMap<u8, Vec<u64>> = HashMap::new();
        for i in 0..4096u64 {
            let line = i * 128;
            lines_by_hmc
                .entry(mm.hmc_of(line).0)
                .or_default()
                .push(line);
        }
        let (&a, la) = lines_by_hmc.iter().next().expect("nonempty");
        let (&b, lb) = lines_by_hmc
            .iter()
            .find(|(h, v)| **h != a && v.len() >= 2)
            .expect("two stacks");
        let acc = |line: u64| LineAccess {
            line,
            lanes: vec![(0, line)],
            misaligned: false,
        };
        let accesses = vec![acc(la[0]), acc(lb[0]), acc(lb[1])];
        assert_eq!(pick_target(&accesses, &mm), HmcId(b));
        // Tie → first access wins.
        let accesses = vec![acc(la[0]), acc(lb[0])];
        assert_eq!(pick_target(&accesses, &mm), HmcId(a));
    }
}
