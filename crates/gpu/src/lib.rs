//! GPU timing model: SIMT SMs, memory coalescing, write-through cache
//! hierarchy with MSHRs, and the GPU-side NDP machinery (pending/ready
//! packet buffers, the credit-keeping buffer manager, RDF/WTA/CMD packet
//! generation of §4.1.1).

#![forbid(unsafe_code)]

pub mod cache;
pub mod coalesce;
pub mod ndpbuf;
pub mod sm;
pub mod uncore;

pub use cache::{Cache, Probe};
pub use coalesce::coalesce;
pub use ndpbuf::BufferManager;
pub use sm::{NdpEnv, Sm, SmConfig};
pub use uncore::L2Slice;
