//! One memory stack: vaults + logic-layer crossbar + port queues.

use std::collections::VecDeque;

use ndp_common::bitset::BitSet;
use ndp_common::config::SystemConfig;
use ndp_common::error::{PacketSummary, SimError};
use ndp_common::ids::{Cycle, HmcId, Node};
use ndp_common::memmap::MemMap;
use ndp_common::packet::{Packet, PacketKind};
use ndp_common::port::{Component, OutPort};
use ndp_common::stats::DramStats;
use ndp_dram::{VaultController, VaultRequest};

/// One HMC stack.
pub struct HmcStack {
    pub id: HmcId,
    vaults: Vec<VaultController<Packet>>,
    /// Packets routed to a vault whose queue was full.
    vault_pending: Vec<VecDeque<Packet>>,
    /// Outputs drained by the fabric each cycle.
    pub to_gpu: OutPort,
    pub to_nsu: OutPort,
    pub to_memnet: OutPort,
    memmap: MemMap,
    line_bytes: u32,
    burst_bytes: u32,
    /// Exact clock-domain crossing in units of (1 ps / SM-clock-MHz): one
    /// SM cycle adds 1e6 such units; one DRAM cycle is `tck_ps × MHz`.
    sm_period_units: u64,
    tck_units: u64,
    acc_units: u64,
    /// Current DRAM-domain cycle (public for clock-crossing tests).
    pub dram_now: u64,
    /// Bytes moved across the logic-layer crossbar (Fig. 10 "Intra-HMC NoC"
    /// energy domain).
    pub intra_bytes: u64,
    /// First protocol violation observed inside the stack. `Component::tick`
    /// is infallible, so violations are parked here and polled by the system
    /// loop via [`HmcStack::take_error`].
    pending_err: Option<SimError>,

    // ---- Incremental vault activity sets (DESIGN.md §15) ----
    //
    // Derived from the vaults and rebuilt on restore (never serialized):
    // `tick` and `next_work_at` visit only vaults that provably have work
    // instead of scanning all of them every SM cycle.
    //
    /// Vaults with a nonempty admission queue (`vault_pending`).
    pending_vaults: BitSet,
    /// Vaults whose controller request queue is nonempty (the only vaults
    /// a DRAM-cycle tick can act on — `pick` is a no-op otherwise).
    queued_vaults: BitSet,
    /// Vaults with scheduled completions in their done heap.
    done_vaults: BitSet,
    /// Cached `min(next_done_at)` over `done_vaults`, refreshed at the end
    /// of every tick (done heaps only mutate inside `tick`), making the
    /// completion horizon O(1).
    done_min: Option<u64>,
}

impl HmcStack {
    pub fn new(id: HmcId, cfg: &SystemConfig) -> Self {
        let vaults: Vec<VaultController<Packet>> = (0..cfg.hmc.vaults_per_hmc)
            .map(|_| VaultController::new(&cfg.hmc))
            .collect();
        let nv = vaults.len();
        HmcStack {
            id,
            vaults,
            vault_pending: (0..cfg.hmc.vaults_per_hmc)
                .map(|_| VecDeque::new())
                .collect(),
            to_gpu: OutPort::unbounded(),
            to_nsu: OutPort::unbounded(),
            to_memnet: OutPort::unbounded(),
            memmap: MemMap::new(cfg),
            line_bytes: cfg.gpu.line_bytes as u32,
            burst_bytes: cfg.hmc.burst_bytes as u32,
            sm_period_units: 1_000_000,
            tck_units: cfg.hmc.timing.tck_ps * cfg.gpu.sm_clock_mhz as u64,
            acc_units: 0,
            dram_now: 0,
            intra_bytes: 0,
            pending_err: None,
            pending_vaults: BitSet::new(nv),
            queued_vaults: BitSet::new(nv),
            done_vaults: BitSet::new(nv),
            done_min: None,
        }
    }

    /// Per-tick shared-state footprint: a stack tick touches only its own
    /// logic layer and vault interiors (the enclosed `VaultController`s
    /// declare the same empty footprint), never the shared controller —
    /// what certifies the `NDP_PARALLEL` `tick:stacks` leg conflict-free
    /// by construction (DESIGN.md §16).
    pub const FOOTPRINT: ndp_common::footprint::Footprint = ndp_common::footprint::Footprint::EMPTY;

    /// Internal wake sources the quiescence horizon must observe — lint's
    /// skip-spec cross-check for `tick:stacks` (see `Sm::WAKE_SOURCES`).
    pub const WAKE_SOURCES: &'static [&'static str] = &[
        "stack:pending_vaults",
        "stack:queued_vaults",
        "stack:done_min",
    ];

    /// Rebuild the derived vault activity sets from the vault controllers
    /// (restore path).
    fn rebuild_activity(&mut self) {
        self.pending_vaults.clear();
        self.queued_vaults.clear();
        self.done_vaults.clear();
        for v in 0..self.vaults.len() {
            if !self.vault_pending[v].is_empty() {
                self.pending_vaults.insert(v);
            }
            if self.vaults[v].queue_len() > 0 {
                self.queued_vaults.insert(v);
            }
            if self.vaults[v].next_done_at().is_some() {
                self.done_vaults.insert(v);
            }
        }
        self.refresh_done_min();
    }

    fn refresh_done_min(&mut self) {
        self.done_min = self
            .done_vaults
            .iter()
            .filter_map(|v| self.vaults[v].next_done_at())
            .min();
    }

    /// Take the first protocol violation seen by this stack, if any.
    pub fn take_error(&mut self) -> Option<SimError> {
        self.pending_err.take()
    }

    fn record_err(&mut self, now: Cycle, p: &Packet, detail: &str) {
        if self.pending_err.is_none() {
            self.pending_err = Some(SimError::BadDelivery {
                component: format!("hmc{}", self.id.0),
                cycle: now,
                packet: PacketSummary::of(p),
                detail: detail.to_string(),
            });
        }
    }

    /// Accept a packet arriving at this stack (from the GPU link or the
    /// memory network) and route it on the logic layer.
    pub fn accept(&mut self, p: Packet) {
        self.intra_bytes += p.size as u64;
        match p.dst {
            Node::Vault(h, v) if h == self.id.0 => {
                self.vault_pending[v as usize].push_back(p);
                self.pending_vaults.insert(v as usize);
            }
            Node::Nsu(h) if h == self.id.0 => self.to_nsu.push_back(p),
            Node::Sm(_) | Node::L2(_) | Node::BufMgr => self.to_gpu.push_back(p),
            // Anything for another stack continues over the memory network.
            Node::Vault(_, _) | Node::Nsu(_) | Node::Hmc(_) => self.to_memnet.push_back(p),
        }
    }

    /// DRAM bytes a packet's vault access moves: baseline fills whole lines;
    /// RDF reads only the bursts covering the accessed words (§4.4); writes
    /// touch the written words rounded to bursts.
    fn access_bytes(&self, p: &Packet) -> Option<u32> {
        let round = |b: u32| b.div_ceil(self.burst_bytes).max(1) * self.burst_bytes;
        match &p.kind {
            PacketKind::ReadReq { bytes, .. } => Some(round(*bytes)),
            PacketKind::Rdf { access, .. } => {
                Some(round((access.active_words() * 4).min(self.line_bytes)))
            }
            PacketKind::WriteReq { words, .. } => Some(round(words * 4)),
            PacketKind::NsuWrite { words, .. } => Some(round(words * 4)),
            _ => None,
        }
    }

    fn is_write(p: &Packet) -> bool {
        matches!(
            p.kind,
            PacketKind::WriteReq { .. } | PacketKind::NsuWrite { .. }
        )
    }

    fn vault_addr(p: &Packet) -> Option<u64> {
        match &p.kind {
            PacketKind::ReadReq { addr, .. }
            | PacketKind::WriteReq { addr, .. }
            | PacketKind::NsuWrite { addr, .. } => Some(*addr),
            PacketKind::Rdf { access, .. } => Some(access.line),
            _ => None,
        }
    }

    /// Advance one SM cycle. Each phase visits only vaults whose membership
    /// set says they can act; membership is re-derived from the cheap vault
    /// accessors right after the mutation that could change it.
    pub fn tick(&mut self, now: Cycle) {
        // 1. Move pending packets into vault queues.
        let mut from = 0;
        while let Some(v) = self.pending_vaults.next_at_or_after(from) {
            from = v + 1;
            while let Some(front) = self.vault_pending[v].front() {
                if !self.vaults[v].can_accept() {
                    break;
                }
                let (Some(bytes), Some(addr)) = (self.access_bytes(front), Self::vault_addr(front))
                else {
                    // A non-memory packet reached a vault queue: record the
                    // violation and discard so the lane is not wedged by it.
                    let p = self.vault_pending[v].pop_front().expect("front exists");
                    self.record_err(now, &p, "not a vault access");
                    continue;
                };
                let coord = self.memmap.decode(addr);
                debug_assert_eq!(coord.hmc, self.id, "page map routed to wrong stack");
                debug_assert_eq!(coord.vault.0 as usize, v, "vault mis-route");
                let p = self.vault_pending[v].pop_front().expect("front exists");
                let is_write = Self::is_write(&p);
                self.vaults[v]
                    .push(VaultRequest {
                        bank: coord.bank,
                        row: coord.row,
                        bytes,
                        is_write,
                        payload: p,
                    })
                    .expect("checked can_accept");
                self.queued_vaults.insert(v);
            }
            if self.vault_pending[v].is_empty() {
                self.pending_vaults.remove(v);
            }
        }

        // 2. Clock-domain crossing: run DRAM cycles that fit in this SM
        //    cycle (700 MHz SM vs 666 MHz DRAM ⇒ mostly 1:1 with skips).
        //    Only vaults with queued requests are ticked — `tick` is a
        //    no-op for the rest (`pick` finds nothing), so eliding them is
        //    behavior-identical.
        self.acc_units += self.sm_period_units;
        while self.acc_units >= self.tck_units {
            self.acc_units -= self.tck_units;
            let dn = self.dram_now;
            let mut from = 0;
            while let Some(v) = self.queued_vaults.next_at_or_after(from) {
                from = v + 1;
                self.vaults[v].tick(dn);
                if self.vaults[v].queue_len() == 0 {
                    self.queued_vaults.remove(v);
                }
                if self.vaults[v].next_done_at().is_some() {
                    self.done_vaults.insert(v);
                }
            }
            self.dram_now += 1;
        }

        // 3. Drain completions and synthesize responses.
        let mut from = 0;
        while let Some(v) = self.done_vaults.next_at_or_after(from) {
            from = v + 1;
            let dn = self.dram_now;
            while let Some(done) = self.vaults[v].pop_done(dn) {
                self.respond(now, v as u8, done.payload);
            }
            if self.vaults[v].next_done_at().is_none() {
                self.done_vaults.remove(v);
            }
        }
        self.refresh_done_min();
    }

    /// Build and route the response(s) for a completed vault access.
    fn respond(&mut self, now: Cycle, vault: u8, p: Packet) {
        let src = Node::Vault(self.id.0, vault);
        match p.kind {
            PacketKind::ReadReq {
                addr, bytes, tag, ..
            } => {
                let resp = Packet::new(src, p.src, now, PacketKind::ReadResp { addr, bytes, tag });
                self.route_out(resp);
            }
            PacketKind::WriteReq { addr, tag, .. } => {
                let ack = Packet::new(src, p.src, now, PacketKind::WriteAck { addr, tag });
                self.route_out(ack);
            }
            PacketKind::Rdf {
                token,
                seq,
                access,
                target,
                ..
            } => {
                let resp =
                    Packet::new(src, target, now, PacketKind::RdfResp { token, seq, access });
                self.route_out(resp);
            }
            PacketKind::NsuWrite { token, addr, .. } => {
                // Ack to the NSU that issued the write...
                let ack = Packet::new(src, p.src, now, PacketKind::NsuWriteAck { token });
                self.route_out(ack);
                // ...and a cache invalidation to the GPU (§4.2). The L2
                // slice for this address is the one fronting this stack.
                let inval = Packet::new(
                    src,
                    Node::L2(self.id.0),
                    now,
                    PacketKind::CacheInval { addr },
                );
                self.route_out(inval);
            }
            _ => {
                self.record_err(now, &p, "vault completed non-memory packet");
            }
        }
    }

    fn route_out(&mut self, p: Packet) {
        self.intra_bytes += p.size as u64;
        match p.dst {
            Node::Nsu(h) if h == self.id.0 => self.to_nsu.push_back(p),
            Node::Sm(_) | Node::L2(_) | Node::BufMgr => self.to_gpu.push_back(p),
            _ => self.to_memnet.push_back(p),
        }
    }

    /// Aggregate DRAM activity across vaults.
    pub fn dram_stats(&self) -> DramStats {
        let mut s = DramStats::default();
        for v in &self.vaults {
            s.merge(&v.stats);
        }
        s
    }

    /// Outstanding work anywhere in the stack.
    pub fn busy(&self) -> bool {
        self.vaults.iter().any(|v| v.busy())
            || self.vault_pending.iter().any(|q| !q.is_empty())
            || !self.to_gpu.is_empty()
            || !self.to_nsu.is_empty()
            || !self.to_memnet.is_empty()
    }

    /// Checkpoint vault controllers, pending vault admissions, the three
    /// output ports, the clock-crossing accumulator and byte counters.
    /// `memmap`/geometry are config-derived (fresh construction); any
    /// `pending_err` has been polled by the system loop before a checkpoint
    /// boundary, so it is deliberately not serialized.
    pub fn snap(&self, w: &mut ndp_common::snap::SnapWriter) {
        w.len(self.vaults.len());
        for v in &self.vaults {
            v.snap(w, |w, p: &Packet| p.snap(w));
        }
        w.len(self.vault_pending.len());
        for q in &self.vault_pending {
            w.len(q.len());
            for p in q {
                p.snap(w);
            }
        }
        self.to_gpu.snap(w);
        self.to_nsu.snap(w);
        self.to_memnet.snap(w);
        w.u64(self.acc_units);
        w.u64(self.dram_now);
        w.u64(self.intra_bytes);
    }

    /// Overwrite from a checkpoint stream; `self` must be freshly built
    /// against the same config (vault count is validated).
    pub fn restore(
        &mut self,
        r: &mut ndp_common::snap::SnapReader<'_>,
    ) -> Result<(), ndp_common::snap::SnapError> {
        let nv = r.len()?;
        if nv != self.vaults.len() {
            return Err(ndp_common::snap::SnapError(format!(
                "stack has {} vaults, checkpoint has {nv}",
                self.vaults.len()
            )));
        }
        for v in &mut self.vaults {
            v.restore(r, Packet::restore)?;
        }
        let np = r.len()?;
        if np != self.vault_pending.len() {
            return Err(ndp_common::snap::SnapError(format!(
                "stack has {} vault-pending lanes, checkpoint has {np}",
                self.vault_pending.len()
            )));
        }
        for q in &mut self.vault_pending {
            q.clear();
            for _ in 0..r.len()? {
                q.push_back(Packet::restore(r)?);
            }
        }
        self.to_gpu.restore(r)?;
        self.to_nsu.restore(r)?;
        self.to_memnet.restore(r)?;
        self.acc_units = r.u64()?;
        self.dram_now = r.u64()?;
        self.intra_bytes = r.u64()?;
        self.pending_err = None;
        self.rebuild_activity();
        Ok(())
    }

    /// Requests/packets queued anywhere inside this stack: pending vault
    /// admissions, vault controller queues, and the three output ports
    /// (occupancy sampling).
    pub fn queued_requests(&self) -> usize {
        self.vault_pending.iter().map(|q| q.len()).sum::<usize>()
            + self.vaults.iter().map(|v| v.queue_len()).sum::<usize>()
            + self.to_gpu.len()
            + self.to_nsu.len()
            + self.to_memnet.len()
    }
}

impl Component for HmcStack {
    fn tick(&mut self, now: Cycle) {
        HmcStack::tick(self, now);
    }

    // Output ports are deliberately not wake sources: draining them is the
    // stack→{gpu,nsu,memnet} edges' horizon, and `tick` never reads them.
    fn next_work_at(&self, now: Cycle) -> Option<Cycle> {
        if !self.pending_vaults.is_empty() || !self.queued_vaults.is_empty() {
            return Some(now);
        }
        // Only scheduled completions remain. Convert the earliest DRAM-
        // domain completion cycle into SM cycles through the exact
        // clock-crossing accumulator: after k SM-cycle ticks the DRAM clock
        // has advanced by floor((acc + k·sm_period) / tck) cycles, and a
        // completion at DRAM cycle A drains once dram_now reaches A. The
        // tick at cycle `now` itself is the first of those k (the horizon
        // is consulted before the stage runs), so the completion drains at
        // `now + k - 1`. k ≥ 1 because need ≥ tck > acc (the accumulator
        // invariant keeps acc < tck after every tick). `done_min` is the
        // cached min over the done heaps, which only mutate inside `tick`.
        let at_min = self.done_min?;
        if at_min <= self.dram_now {
            return Some(now);
        }
        let need_units = (at_min - self.dram_now) * self.tck_units;
        let k = (need_units - self.acc_units).div_ceil(self.sm_period_units);
        Some(now + k - 1)
    }

    // `tick` unconditionally advances the clock-crossing accumulator, so a
    // skipped cycle must replay exactly that. The elided DRAM cycles are
    // safe: every vault queue was empty (`pick` is a no-op) and the
    // horizon guarantees no completion became drainable in the span.
    fn note_skipped(&mut self, k: u64) {
        let total = self.acc_units + k * self.sm_period_units;
        self.dram_now += total / self.tck_units;
        self.acc_units = total % self.tck_units;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_common::ids::OffloadToken;
    use ndp_common::packet::LineAccess;

    fn cfg() -> SystemConfig {
        SystemConfig::default()
    }

    /// Find an address mapping to stack `h`, vault `v` under the config's
    /// page map (typed error instead of panic on an exhausted scan).
    fn addr_for(cfg: &SystemConfig, h: u8, v: u8) -> u64 {
        MemMap::new(cfg)
            .find_addr(
                ndp_common::ids::HmcId(h),
                ndp_common::ids::VaultId(v),
                100_000,
            )
            .expect("address exists for every (hmc, vault) pair")
    }

    fn run(stack: &mut HmcStack, cycles: Cycle) {
        for now in 0..cycles {
            stack.tick(now);
        }
    }

    #[test]
    fn read_request_produces_response_to_gpu() {
        let c = cfg();
        let mut s = HmcStack::new(HmcId(2), &c);
        let addr = addr_for(&c, 2, 3);
        s.accept(Packet::new(
            Node::L2(2),
            Node::Vault(2, 3),
            0,
            PacketKind::ReadReq {
                addr,
                bytes: 128,
                tag: 77,
                block: ndp_common::packet::NO_BLOCK,
            },
        ));
        run(&mut s, 200);
        assert_eq!(s.to_gpu.len(), 1);
        let resp = s.to_gpu.pop_front().unwrap();
        match resp.kind {
            PacketKind::ReadResp {
                addr: a,
                bytes,
                tag,
            } => {
                assert_eq!((a, bytes, tag), (addr, 128, 77));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!s.busy());
        assert_eq!(s.dram_stats().read_bytes, 128);
    }

    #[test]
    fn rdf_response_goes_to_local_nsu() {
        let c = cfg();
        let mut s = HmcStack::new(HmcId(1), &c);
        let addr = addr_for(&c, 1, 0);
        let access = LineAccess {
            line: addr,
            lanes: vec![(0, addr), (1, addr + 4)],
            misaligned: false,
        };
        s.accept(Packet::new(
            Node::Sm(0),
            Node::Vault(1, 0),
            0,
            PacketKind::Rdf {
                token: OffloadToken(9),
                seq: 0,
                access,
                target: Node::Nsu(1),
                block: 0,
                cache_hit_data: false,
            },
        ));
        run(&mut s, 200);
        assert_eq!(s.to_nsu.len(), 1);
        let resp = s.to_nsu.pop_front().unwrap();
        assert!(matches!(
            resp.kind,
            PacketKind::RdfResp {
                token: OffloadToken(9),
                ..
            }
        ));
        // Only 2 active words ⇒ a single 32 B burst read, not 128 B (§4.4).
        assert_eq!(s.dram_stats().read_bytes, 32);
    }

    #[test]
    fn rdf_response_for_remote_nsu_enters_memnet() {
        let c = cfg();
        let mut s = HmcStack::new(HmcId(1), &c);
        let addr = addr_for(&c, 1, 5);
        let access = LineAccess {
            line: addr,
            lanes: (0..32).map(|l| (l, addr + 4 * l as u64)).collect(),
            misaligned: false,
        };
        s.accept(Packet::new(
            Node::Sm(3),
            Node::Vault(1, 5),
            0,
            PacketKind::Rdf {
                token: OffloadToken(1),
                seq: 0,
                access,
                target: Node::Nsu(6),
                block: 0,
                cache_hit_data: false,
            },
        ));
        run(&mut s, 200);
        assert_eq!(s.to_memnet.len(), 1);
        assert_eq!(s.to_memnet[0].dst, Node::Nsu(6));
    }

    #[test]
    fn nsu_write_acks_and_invalidates() {
        let c = cfg();
        let mut s = HmcStack::new(HmcId(4), &c);
        let addr = addr_for(&c, 4, 2);
        s.accept(Packet::new(
            Node::Nsu(4),
            Node::Vault(4, 2),
            0,
            PacketKind::NsuWrite {
                token: OffloadToken(5),
                addr,
                words: 32,
            },
        ));
        run(&mut s, 300);
        assert_eq!(s.to_nsu.len(), 1, "write ack to local NSU");
        assert!(matches!(
            s.to_nsu[0].kind,
            PacketKind::NsuWriteAck {
                token: OffloadToken(5)
            }
        ));
        assert_eq!(s.to_gpu.len(), 1, "cache invalidation to GPU");
        assert!(matches!(s.to_gpu[0].kind, PacketKind::CacheInval { .. }));
        assert_eq!(s.to_gpu[0].dst, Node::L2(4));
        assert_eq!(s.dram_stats().write_bytes, 128);
    }

    #[test]
    fn foreign_packets_forwarded_to_memnet() {
        let c = cfg();
        let mut s = HmcStack::new(HmcId(0), &c);
        s.accept(Packet::new(
            Node::Nsu(0),
            Node::Vault(3, 1),
            0,
            PacketKind::NsuWrite {
                token: OffloadToken(1),
                addr: 0,
                words: 1,
            },
        ));
        assert_eq!(s.to_memnet.len(), 1);
    }

    #[test]
    fn dram_clock_crossing_ratio() {
        // 700 MHz SM (1428.57 ps) vs 666 MHz DRAM (1500 ps): after N SM
        // cycles the DRAM must have advanced ≈ N × 1428.57/1500 cycles.
        let c = cfg();
        let mut s = HmcStack::new(HmcId(0), &c);
        let n = 21_000u64; // lcm-ish horizon
        for now in 0..n {
            s.tick(now);
        }
        // Exact rational crossing: 21000 SM cycles × (1e6 / (1500×700)).
        let expect = (n as u128 * 1_000_000 / (1500 * 700)) as i64;
        let got = s.dram_now as i64;
        assert!(
            (got - expect).abs() <= 1,
            "DRAM clock drifted: {got} vs {expect}"
        );
    }

    #[test]
    fn intra_hmc_traffic_accumulates_both_ways() {
        let c = cfg();
        let mut s = HmcStack::new(HmcId(2), &c);
        let addr = addr_for(&c, 2, 3);
        let req = Packet::new(
            Node::L2(2),
            Node::Vault(2, 3),
            0,
            PacketKind::ReadReq {
                addr,
                bytes: 128,
                tag: 1,
                block: ndp_common::packet::NO_BLOCK,
            },
        );
        let req_size = req.size as u64;
        s.accept(req);
        run(&mut s, 200);
        let resp_size = s.to_gpu[0].size as u64;
        assert_eq!(s.intra_bytes, req_size + resp_size);
    }

    #[test]
    fn skipping_idle_spans_is_bit_identical_to_ticking() {
        // Drive the same request through a per-cycle-ticked stack and one
        // that elides provably idle cycles via next_work_at/note_skipped:
        // DRAM clocks, responses, and stats must be indistinguishable.
        let c = cfg();
        let addr = addr_for(&c, 2, 3);
        let mk = || {
            let mut s = HmcStack::new(HmcId(2), &c);
            s.accept(Packet::new(
                Node::L2(2),
                Node::Vault(2, 3),
                0,
                PacketKind::ReadReq {
                    addr,
                    bytes: 128,
                    tag: 7,
                    block: ndp_common::packet::NO_BLOCK,
                },
            ));
            s
        };
        const END: Cycle = 500;
        let mut ticked = mk();
        // The response must become externally visible on exactly the same
        // cycle in both drives — a horizon that is even one cycle late
        // would delay the packet without changing any end-of-run totals.
        let mut ticked_out_at = None;
        for now in 0..END {
            HmcStack::tick(&mut ticked, now);
            if ticked_out_at.is_none() && !ticked.to_gpu.is_empty() {
                ticked_out_at = Some(now);
            }
        }
        let mut skipped = mk();
        let mut skipped_out_at = None;
        let mut now: Cycle = 0;
        let mut elided = 0u64;
        while now < END {
            match Component::next_work_at(&skipped, now) {
                Some(h) if h <= now => {
                    Component::tick(&mut skipped, now);
                    if skipped_out_at.is_none() && !skipped.to_gpu.is_empty() {
                        skipped_out_at = Some(now);
                    }
                    now += 1;
                }
                Some(h) => {
                    let j = h.min(END);
                    Component::note_skipped(&mut skipped, j - now);
                    elided += j - now;
                    now = j;
                }
                None => {
                    Component::note_skipped(&mut skipped, END - now);
                    elided += END - now;
                    now = END;
                }
            }
        }
        assert!(elided > 400, "the idle tail should dominate: {elided}");
        assert_eq!(ticked.dram_now, skipped.dram_now);
        assert_eq!(ticked.acc_units, skipped.acc_units);
        assert_eq!(ticked.to_gpu.len(), skipped.to_gpu.len());
        assert_eq!(
            ticked_out_at, skipped_out_at,
            "response visibility cycle must not shift under skipping"
        );
        assert!(ticked_out_at.is_some());
        assert_eq!(ticked.dram_stats().read_bytes, 128);
        assert_eq!(skipped.dram_stats().read_bytes, 128);
        assert!(!skipped.busy() || !skipped.to_gpu.is_empty());
    }

    #[test]
    fn vault_backpressure_queues_excess() {
        let c = cfg();
        let mut s = HmcStack::new(HmcId(0), &c);
        let addr = addr_for(&c, 0, 0);
        // 80 requests to one vault (queue holds 64).
        for i in 0..80u64 {
            s.accept(Packet::new(
                Node::L2(0),
                Node::Vault(0, 0),
                0,
                PacketKind::ReadReq {
                    addr,
                    bytes: 128,
                    tag: i,
                    block: ndp_common::packet::NO_BLOCK,
                },
            ));
        }
        run(&mut s, 5000);
        assert_eq!(s.to_gpu.len(), 80, "all eventually served");
    }
}
