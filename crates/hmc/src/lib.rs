//! HMC-like 3D-stacked memory device (Table 2: 8 layers × 16 vaults,
//! 16 banks/vault, FR-FCFS vault controllers, packetized I/O).
//!
//! The stack's logic layer routes packets between its I/O ports (one GPU
//! link + three memory-network links), its 16 vault controllers, and the
//! NSU. The vault controllers run in the DRAM clock domain (tCK = 1.5 ns);
//! this crate owns the SM-cycle ⇄ DRAM-cycle conversion.

#![forbid(unsafe_code)]

pub mod stack;

pub use stack::HmcStack;
