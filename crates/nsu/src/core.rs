//! NSU timing model.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use ndp_common::config::SystemConfig;
use ndp_common::error::{PacketSummary, SimError};
use ndp_common::ids::{Cycle, HmcId, Node, OffloadId, OffloadToken};
use ndp_common::memmap::MemMap;
use ndp_common::packet::{LineAccess, Packet, PacketKind};
use ndp_common::port::{Component, OutPort};
use ndp_common::watchdog::TokenInFlight;
use ndp_isa::offload::{NsuInstr, OffloadBlock};

pub use ndp_common::port::CreditEvents;

struct CmdInfo {
    token: OffloadToken,
    id: OffloadId,
    block: u16,
    sm: u16,
    active: u8,
    mask: u32,
}

struct ReadEntry {
    arrived_mask: u32,
}

struct NsuWarp {
    token: OffloadToken,
    id: OffloadId,
    block: u16,
    sm: u16,
    active: u8,
    mask: u32,
    /// Index into the block's `nsu_code`.
    pc: usize,
    /// NSU cycle at which the next instruction may issue.
    next_free: u64,
    seq: u16,
    writes_outstanding: u32,
}

/// One near-data processing SIMD unit.
pub struct Nsu {
    pub id: HmcId,
    blocks: Arc<Vec<OffloadBlock>>,
    pc_to_block: HashMap<u64, u16>,
    slots: Vec<Option<NsuWarp>>,
    cmd_q: VecDeque<CmdInfo>,
    cmd_capacity: usize,
    read_buf: HashMap<(OffloadToken, u16), ReadEntry>,
    /// (expected packet count, arrived accesses) per store instruction.
    write_buf: HashMap<(OffloadToken, u16), (u8, Vec<LineAccess>)>,
    read_capacity: usize,
    write_capacity: usize,
    memmap: MemMap,
    sfu_lat: u64,
    /// Outgoing packets (DRAM writes, ACKs) — routed by the stack's logic
    /// layer (possibly across the memory network for remote vaults).
    pub out: OutPort,
    pub credits: CreditEvents,
    /// NSU cycle counter.
    nsu_now: u64,
    rr_cursor: usize,
    // --- Fig. 11 statistics ---
    /// Blocks whose code was executed here (I-cache footprint).
    icache_touched: HashSet<u16>,
    /// Σ occupied slots over ticks, and tick count, for average occupancy.
    pub occupied_sum: u64,
    pub ticks: u64,
    /// Warp-instructions executed.
    pub instrs: u64,
    /// Blocks completed on this NSU.
    pub blocks_done: u64,
}

impl Nsu {
    /// Per-tick shared-state footprint: an NSU tick reads and writes only
    /// its own slots/buffers and out-ports (credit *returns* are messages
    /// drained later by the fabric owner, not direct pool writes) — what
    /// certifies the `NDP_PARALLEL` `tick:nsus` leg conflict-free by
    /// construction (DESIGN.md §16).
    pub const FOOTPRINT: ndp_common::footprint::Footprint = ndp_common::footprint::Footprint::EMPTY;

    pub fn new(id: HmcId, cfg: &SystemConfig, blocks: Arc<Vec<OffloadBlock>>) -> Self {
        let pc_to_block = blocks.iter().map(|b| (b.nsu_pc, b.id as u16)).collect();
        Nsu {
            id,
            pc_to_block,
            slots: (0..cfg.nsu.warp_slots).map(|_| None).collect(),
            cmd_q: VecDeque::new(),
            cmd_capacity: cfg.nsu.cmd_entries,
            read_buf: HashMap::new(),
            write_buf: HashMap::new(),
            read_capacity: cfg.nsu.read_data_entries,
            write_capacity: cfg.nsu.write_addr_entries,
            memmap: MemMap::new(cfg),
            sfu_lat: 8,
            out: OutPort::unbounded(),
            credits: CreditEvents::default(),
            nsu_now: 0,
            rr_cursor: 0,
            icache_touched: HashSet::new(),
            occupied_sum: 0,
            ticks: 0,
            instrs: 0,
            blocks_done: 0,
            blocks,
        }
    }

    /// Structured delivery error with this NSU's identity attached.
    fn bad_delivery(&self, now: Cycle, summary: PacketSummary, detail: String) -> SimError {
        SimError::BadDelivery {
            component: format!("nsu{}", self.id.0),
            cycle: now,
            packet: summary,
            detail,
        }
    }

    /// Deliver a packet from the stack's logic layer. Protocol violations
    /// (buffer overflow past the credit bound, an ACK for an unknown warp,
    /// an unconsumable kind) come back as structured errors instead of
    /// panicking mid-simulation.
    pub fn deliver(&mut self, now: Cycle, p: Packet) -> Result<(), SimError> {
        let summary = PacketSummary::of(&p);
        match p.kind {
            PacketKind::OffloadCmd {
                token,
                id,
                nsu_pc,
                active,
                mask,
                ..
            } => {
                if self.cmd_q.len() >= self.cmd_capacity {
                    return Err(self.bad_delivery(
                        now,
                        summary,
                        "command buffer overflow — credit protocol violated".into(),
                    ));
                }
                let Some(&block) = self.pc_to_block.get(&nsu_pc) else {
                    return Err(self.bad_delivery(
                        now,
                        summary,
                        format!("unknown NSU code address {nsu_pc:#x}"),
                    ));
                };
                self.cmd_q.push_back(CmdInfo {
                    token,
                    id,
                    block,
                    sm: id.sm,
                    active,
                    mask,
                });
            }
            PacketKind::RdfResp { token, seq, access } => {
                let entry = self
                    .read_buf
                    .entry((token, seq))
                    .or_insert(ReadEntry { arrived_mask: 0 });
                entry.arrived_mask |= access.lane_mask();
                if self.read_buf.len() > self.read_capacity {
                    return Err(self.bad_delivery(
                        now,
                        summary,
                        "read data buffer overflow — credit protocol violated".into(),
                    ));
                }
            }
            PacketKind::Rdf {
                token, seq, access, ..
            } => {
                // A header-only RDF arriving directly at the NSU is the
                // read-only-cache ablation path (§7.1 suggestion): the data
                // is already on the NSU, the packet just names the lanes.
                let entry = self
                    .read_buf
                    .entry((token, seq))
                    .or_insert(ReadEntry { arrived_mask: 0 });
                entry.arrived_mask |= access.lane_mask();
            }
            PacketKind::Wta {
                token,
                seq,
                access,
                n_accesses,
                ..
            } => {
                let e = self
                    .write_buf
                    .entry((token, seq))
                    .or_insert((n_accesses, vec![]));
                e.1.push(access);
                if self.write_buf.len() > self.write_capacity {
                    return Err(self.bad_delivery(
                        now,
                        summary,
                        "write address buffer overflow — credit protocol violated".into(),
                    ));
                }
            }
            PacketKind::NsuWriteAck { token } => {
                for w in self.slots.iter_mut().flatten() {
                    if w.token == token {
                        if w.writes_outstanding == 0 {
                            return Err(self.bad_delivery(
                                now,
                                summary,
                                "write-ack underflow: no writes outstanding".into(),
                            ));
                        }
                        w.writes_outstanding -= 1;
                        return Ok(());
                    }
                }
                return Err(self.bad_delivery(now, summary, "write ack for unknown warp".into()));
            }
            _ => {
                return Err(self.bad_delivery(now, summary, "NSU cannot consume this kind".into()))
            }
        }
        Ok(())
    }

    /// Advance one NSU cycle (`now` is the SM-cycle timestamp used for
    /// outgoing packets).
    pub fn tick(&mut self, now: Cycle) {
        self.nsu_now += 1;
        self.ticks += 1;
        self.spawn();
        self.occupied_sum += self.slots.iter().filter(|s| s.is_some()).count() as u64;
        self.issue(now);
    }

    fn spawn(&mut self) {
        for i in 0..self.slots.len() {
            if self.slots[i].is_some() {
                continue;
            }
            let Some(cmd) = self.cmd_q.pop_front() else {
                break;
            };
            self.credits.cmd += 1; // command buffer entry drained
            self.icache_touched.insert(cmd.block);
            self.slots[i] = Some(NsuWarp {
                token: cmd.token,
                id: cmd.id,
                block: cmd.block,
                sm: cmd.sm,
                active: cmd.active,
                mask: cmd.mask,
                pc: 0,
                next_free: self.nsu_now,
                seq: 0,
                writes_outstanding: 0,
            });
        }
    }

    /// Single-issue, round-robin across warp slots (temporal SIMT, §4.5).
    fn issue(&mut self, now: Cycle) {
        let n = self.slots.len();
        for k in 0..n {
            let i = (self.rr_cursor + k) % n;
            if self.try_issue_slot(i, now) {
                self.rr_cursor = (i + 1) % n;
                return;
            }
        }
    }

    /// Attempt to issue the current instruction of slot `i`. Returns true if
    /// an instruction issued (or the warp retired this cycle).
    fn try_issue_slot(&mut self, i: usize, now: Cycle) -> bool {
        let blocks = Arc::clone(&self.blocks);
        let Some(w) = self.slots[i].as_mut() else {
            return false;
        };
        if w.next_free > self.nsu_now {
            return false;
        }
        let code = &blocks[w.block as usize].nsu_code;
        match &code[w.pc] {
            NsuInstr::Begin { .. } => {
                w.pc += 1;
                self.instrs += 1;
                true
            }
            NsuInstr::Alu(instr) => {
                let sfu = matches!(
                    instr,
                    ndp_isa::instr::Instr::Alu { op, .. } if op.is_sfu()
                );
                w.next_free = self.nsu_now + if sfu { self.sfu_lat } else { 1 };
                w.pc += 1;
                self.instrs += 1;
                true
            }
            NsuInstr::Ld { .. } => {
                let key = (w.token, w.seq);
                let complete = self
                    .read_buf
                    .get(&key)
                    .is_some_and(|e| e.arrived_mask & w.mask == w.mask);
                if !complete {
                    return false; // stall until RDF responses merge (§4.1.2)
                }
                self.read_buf.remove(&key);
                self.credits.read += 1;
                w.seq += 1;
                w.pc += 1;
                self.instrs += 1;
                true
            }
            NsuInstr::St { .. } => {
                let key = (w.token, w.seq);
                // All coalesced WTA packets of this store must have arrived.
                let complete = self
                    .write_buf
                    .get(&key)
                    .is_some_and(|(n, v)| v.len() == *n as usize);
                if !complete {
                    return false;
                }
                let (_, accesses) = self.write_buf.remove(&key).expect("checked");
                self.credits.write += 1;
                let token = w.token;
                w.writes_outstanding += accesses.len() as u32;
                w.seq += 1;
                w.pc += 1;
                self.instrs += 1;
                let nsu = self.id;
                for access in accesses {
                    let coord = self.memmap.decode(access.line);
                    self.out.push_back(Packet::new(
                        Node::Nsu(nsu.0),
                        Node::Vault(coord.hmc.0, coord.vault.0),
                        now,
                        PacketKind::NsuWrite {
                            token,
                            addr: access.line,
                            words: access.active_words(),
                        },
                    ));
                }
                true
            }
            NsuInstr::End { regs_out } => {
                if w.writes_outstanding > 0 {
                    return false; // wait for DRAM write acks (§4.1.2)
                }
                let ack = Packet::new(
                    Node::Nsu(self.id.0),
                    Node::Sm(w.sm),
                    now,
                    PacketKind::OffloadAck {
                        token: w.token,
                        id: w.id,
                        regs_out: *regs_out,
                        active: w.active,
                        values: vec![],
                    },
                );
                self.out.push_back(ack);
                self.instrs += 1;
                self.blocks_done += 1;
                self.slots[i] = None;
                true
            }
        }
    }

    /// Average warp-slot occupancy in `[0, 1]` (Fig. 11).
    pub fn avg_occupancy(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.occupied_sum as f64 / (self.ticks as f64 * self.slots.len() as f64)
        }
    }

    /// I-cache utilization in `[0, 1]`: bytes of distinct block code executed
    /// over the 4 KB I-cache (Fig. 11).
    pub fn icache_utilization(&self, icache_bytes: usize) -> f64 {
        let used: usize = self
            .icache_touched
            .iter()
            .map(|&b| self.blocks[b as usize].nsu_code_bytes())
            .sum();
        (used as f64 / icache_bytes as f64).min(1.0)
    }

    /// Anything still queued or running?
    pub fn busy(&self) -> bool {
        !self.cmd_q.is_empty() || self.slots.iter().any(|s| s.is_some()) || !self.out.is_empty()
    }

    /// Current depths of the three NSU buffers: `(cmd_q, read_data,
    /// write_addr)` entries (occupancy sampling).
    pub fn buffer_depths(&self) -> (usize, usize, usize) {
        (self.cmd_q.len(), self.read_buf.len(), self.write_buf.len())
    }

    /// Warp slots currently running a block instance (occupancy sampling).
    pub fn occupied_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Drain accumulated credit events.
    pub fn take_credits(&mut self) -> CreditEvents {
        std::mem::take(&mut self.credits)
    }

    /// Credit events accumulated but not yet drained? (Horizon of the
    /// credit side-channel: `take_credits` only does work when nonzero.)
    pub fn has_pending_credits(&self) -> bool {
        self.credits.cmd != 0 || self.credits.read != 0 || self.credits.write != 0
    }

    /// Quiescence horizon in *NSU ticks from now*: `Some(0)` means the very
    /// next tick could do work, `Some(d)` that the next `d` ticks are
    /// provably idle, `None` that no tick will do work until a packet is
    /// delivered. `tick` pre-increments the internal clock, so the next
    /// tick runs at `nsu_now + 1`; a warp with `next_free` beyond that is
    /// idle for `next_free - (nsu_now + 1)` ticks. Warps stalled on buffer
    /// merges or write ACKs wake only via `deliver`, which other horizons
    /// (link/edge) track, so they contribute `None`.
    pub fn next_work_delta(&self) -> Option<u64> {
        if !self.cmd_q.is_empty() {
            return Some(0); // conservative: spawn may or may not find a slot
        }
        let m = self.nsu_now + 1;
        let mut best: Option<u64> = None;
        for w in self.slots.iter().flatten() {
            let runnable = match &self.blocks[w.block as usize].nsu_code[w.pc] {
                NsuInstr::Begin { .. } | NsuInstr::Alu(_) => true,
                NsuInstr::Ld { .. } => self
                    .read_buf
                    .get(&(w.token, w.seq))
                    .is_some_and(|e| e.arrived_mask & w.mask == w.mask),
                NsuInstr::St { .. } => self
                    .write_buf
                    .get(&(w.token, w.seq))
                    .is_some_and(|(n, v)| v.len() == *n as usize),
                NsuInstr::End { .. } => w.writes_outstanding == 0,
            };
            if runnable {
                let d = w.next_free.saturating_sub(m);
                best = Some(best.map_or(d, |b: u64| b.min(d)));
                if best == Some(0) {
                    break;
                }
            }
        }
        best
    }

    /// Replay the bookkeeping `k` elided ticks would have done. On a cycle
    /// [`Nsu::next_work_delta`] proved idle, `tick` only advances the
    /// clock/tick counters and accumulates occupancy (no spawn — the
    /// command queue was empty, so occupancy is constant over the span; no
    /// issue — `try_issue_slot` is read-only when it declines).
    pub fn note_skipped(&mut self, k: u64) {
        self.nsu_now += k;
        self.ticks += k;
        self.occupied_sum += self.occupied_slots() as u64 * k;
    }

    /// Checkpoint warp slots, command queue, merge buffers (sorted by key
    /// for byte-stable output), the outgoing port, pending credit events,
    /// the NSU clock, round-robin cursor, and statistics. `blocks`,
    /// `pc_to_block`, `memmap` and capacities are config/kernel-derived and
    /// come from fresh construction on restore.
    pub fn snap(&self, w: &mut ndp_common::snap::SnapWriter) {
        w.len(self.slots.len());
        for s in &self.slots {
            w.bool(s.is_some());
            if let Some(nw) = s {
                w.u64(nw.token.0);
                w.u16(nw.id.sm);
                w.u16(nw.id.warp);
                w.u16(nw.id.seq);
                w.u16(nw.block);
                w.u16(nw.sm);
                w.u8(nw.active);
                w.u32(nw.mask);
                w.usize(nw.pc);
                w.u64(nw.next_free);
                w.u16(nw.seq);
                w.u32(nw.writes_outstanding);
            }
        }
        w.len(self.cmd_q.len());
        for c in &self.cmd_q {
            w.u64(c.token.0);
            w.u16(c.id.sm);
            w.u16(c.id.warp);
            w.u16(c.id.seq);
            w.u16(c.block);
            w.u16(c.sm);
            w.u8(c.active);
            w.u32(c.mask);
        }
        let mut reads: Vec<(&(OffloadToken, u16), &ReadEntry)> = self.read_buf.iter().collect();
        reads.sort_unstable_by_key(|(k, _)| **k);
        w.len(reads.len());
        for ((tok, seq), e) in reads {
            w.u64(tok.0);
            w.u16(*seq);
            w.u32(e.arrived_mask);
        }
        let mut writes: Vec<_> = self.write_buf.iter().collect();
        writes.sort_unstable_by_key(|(k, _)| **k);
        w.len(writes.len());
        for ((tok, seq), (expected, accesses)) in writes {
            w.u64(tok.0);
            w.u16(*seq);
            w.u8(*expected);
            w.len(accesses.len());
            for a in accesses {
                a.snap(w);
            }
        }
        self.out.snap(w);
        w.u32(self.credits.cmd);
        w.u32(self.credits.read);
        w.u32(self.credits.write);
        w.u64(self.nsu_now);
        w.usize(self.rr_cursor);
        let mut touched: Vec<u16> = self.icache_touched.iter().copied().collect();
        touched.sort_unstable();
        w.len(touched.len());
        for b in touched {
            w.u16(b);
        }
        w.u64(self.occupied_sum);
        w.u64(self.ticks);
        w.u64(self.instrs);
        w.u64(self.blocks_done);
    }

    /// Overwrite from a checkpoint stream; `self` must be freshly built
    /// against the same config and kernel (slot count is validated).
    pub fn restore(
        &mut self,
        r: &mut ndp_common::snap::SnapReader<'_>,
    ) -> Result<(), ndp_common::snap::SnapError> {
        let ns = r.len()?;
        if ns != self.slots.len() {
            return Err(ndp_common::snap::SnapError(format!(
                "nsu has {} warp slots, checkpoint has {ns}",
                self.slots.len()
            )));
        }
        for s in &mut self.slots {
            *s = if r.bool()? {
                Some(NsuWarp {
                    token: OffloadToken(r.u64()?),
                    id: OffloadId {
                        sm: r.u16()?,
                        warp: r.u16()?,
                        seq: r.u16()?,
                    },
                    block: r.u16()?,
                    sm: r.u16()?,
                    active: r.u8()?,
                    mask: r.u32()?,
                    pc: r.usize()?,
                    next_free: r.u64()?,
                    seq: r.u16()?,
                    writes_outstanding: r.u32()?,
                })
            } else {
                None
            };
        }
        self.cmd_q.clear();
        for _ in 0..r.len()? {
            self.cmd_q.push_back(CmdInfo {
                token: OffloadToken(r.u64()?),
                id: OffloadId {
                    sm: r.u16()?,
                    warp: r.u16()?,
                    seq: r.u16()?,
                },
                block: r.u16()?,
                sm: r.u16()?,
                active: r.u8()?,
                mask: r.u32()?,
            });
        }
        self.read_buf.clear();
        for _ in 0..r.len()? {
            let tok = OffloadToken(r.u64()?);
            let seq = r.u16()?;
            let arrived_mask = r.u32()?;
            self.read_buf.insert((tok, seq), ReadEntry { arrived_mask });
        }
        self.write_buf.clear();
        for _ in 0..r.len()? {
            let tok = OffloadToken(r.u64()?);
            let seq = r.u16()?;
            let expected = r.u8()?;
            let mut accesses = Vec::new();
            for _ in 0..r.len()? {
                accesses.push(LineAccess::restore(r)?);
            }
            self.write_buf.insert((tok, seq), (expected, accesses));
        }
        self.out.restore(r)?;
        self.credits.cmd = r.u32()?;
        self.credits.read = r.u32()?;
        self.credits.write = r.u32()?;
        self.nsu_now = r.u64()?;
        self.rr_cursor = r.usize()?;
        self.icache_touched.clear();
        for _ in 0..r.len()? {
            self.icache_touched.insert(r.u16()?);
        }
        self.occupied_sum = r.u64()?;
        self.ticks = r.u64()?;
        self.instrs = r.u64()?;
        self.blocks_done = r.u64()?;
        Ok(())
    }

    /// Tokens resident in warp slots, with execution state (stall reports).
    pub fn resident_tokens(&self) -> Vec<TokenInFlight> {
        self.slots
            .iter()
            .flatten()
            .map(|w| TokenInFlight {
                token: w.token.0,
                state: format!(
                    "nsu{} slot: pc {}, {} writes outstanding",
                    self.id.0, w.pc, w.writes_outstanding
                ),
            })
            .collect()
    }
}

impl Component for Nsu {
    fn tick(&mut self, now: Cycle) {
        Nsu::tick(self, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_isa::instr::{AluOp, Instr, Operand, Reg};
    use ndp_isa::offload::InstrRole;

    fn test_block() -> OffloadBlock {
        OffloadBlock {
            id: 0,
            start: 0,
            end: 3,
            roles: vec![InstrRole::Load, InstrRole::AtNsu, InstrRole::Store],
            live_in: vec![],
            live_out: vec![],
            nsu_code: vec![
                NsuInstr::Begin { regs_in: 0 },
                NsuInstr::Ld { dst: Reg(1) },
                NsuInstr::Alu(Instr::alu(
                    AluOp::FMul,
                    Reg(2),
                    Operand::Reg(Reg(1)),
                    Operand::Reg(Reg(1)),
                )),
                NsuInstr::St { src: Reg(2) },
                NsuInstr::End { regs_out: 0 },
            ],
            nsu_pc: 0xd00,
            score: 1,
            indirect: false,
        }
    }

    fn nsu() -> Nsu {
        Nsu::new(
            HmcId(0),
            &SystemConfig::default(),
            Arc::new(vec![test_block()]),
        )
    }

    fn cmd(token: u64) -> Packet {
        Packet::new(
            Node::Sm(0),
            Node::Nsu(0),
            0,
            PacketKind::OffloadCmd {
                token: OffloadToken(token),
                id: OffloadId {
                    sm: 0,
                    warp: 0,
                    seq: 0,
                },
                nsu_pc: 0xd00,
                regs_in: 0,
                active: 32,
                mask: u32::MAX,
                n_loads: 1,
                n_stores: 1,
            },
        )
    }

    fn full_access(line: u64) -> LineAccess {
        LineAccess {
            line,
            lanes: (0..32).map(|l| (l, line + 4 * l as u64)).collect(),
            misaligned: false,
        }
    }

    fn rdf_resp(token: u64, seq: u16, access: LineAccess) -> Packet {
        Packet::new(
            Node::Vault(0, 0),
            Node::Nsu(0),
            0,
            PacketKind::RdfResp {
                token: OffloadToken(token),
                seq,
                access,
            },
        )
    }

    fn wta2(token: u64, seq: u16, access: LineAccess, n_accesses: u8) -> Packet {
        Packet::new(
            Node::Sm(0),
            Node::Nsu(0),
            0,
            PacketKind::Wta {
                token: OffloadToken(token),
                seq,
                access,
                target: Node::Nsu(0),
                n_accesses,
            },
        )
    }

    fn wta(token: u64, seq: u16, access: LineAccess) -> Packet {
        Packet::new(
            Node::Sm(0),
            Node::Nsu(0),
            0,
            PacketKind::Wta {
                token: OffloadToken(token),
                seq,
                access,
                target: Node::Nsu(0),
                n_accesses: 1,
            },
        )
    }

    #[test]
    fn full_block_lifecycle() {
        let mut n = nsu();
        n.deliver(0, cmd(1)).unwrap();
        n.deliver(0, rdf_resp(1, 0, full_access(0x1000))).unwrap();
        n.deliver(0, wta(1, 1, full_access(0x2000))).unwrap();
        let mut acked = false;
        for now in 0..200 {
            n.tick(now);
            while let Some(p) = n.out.pop_front() {
                match p.kind {
                    PacketKind::NsuWrite { token, words, .. } => {
                        assert_eq!(token, OffloadToken(1));
                        assert_eq!(words, 32);
                        // Ack the write.
                        n.deliver(
                            0,
                            Packet::new(
                                p.dst,
                                Node::Nsu(0),
                                now,
                                PacketKind::NsuWriteAck { token },
                            ),
                        )
                        .unwrap();
                    }
                    PacketKind::OffloadAck { token, .. } => {
                        assert_eq!(token, OffloadToken(1));
                        acked = true;
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        assert!(acked);
        assert!(!n.busy());
        let c = n.take_credits();
        assert_eq!((c.cmd, c.read, c.write), (1, 1, 1));
        assert_eq!(n.blocks_done, 1);
    }

    #[test]
    fn load_stalls_until_all_responses_merge() {
        let mut n = nsu();
        n.deliver(0, cmd(2)).unwrap();
        // Two partial responses covering half the warp each.
        let mut a1 = full_access(0x1000);
        a1.lanes.truncate(16);
        for now in 0..20 {
            n.tick(now);
        }
        assert!(n.out.is_empty(), "no progress before data");
        n.deliver(0, rdf_resp(2, 0, a1)).unwrap();
        for now in 20..40 {
            n.tick(now);
        }
        assert!(n.out.is_empty(), "half the lanes still missing");
        let mut a2 = full_access(0x1000);
        a2.lanes.drain(0..16);
        n.deliver(0, rdf_resp(2, 0, a2)).unwrap();
        n.deliver(0, wta(2, 1, full_access(0x2000))).unwrap();
        let mut wrote = false;
        for now in 40..200 {
            n.tick(now);
            if let Some(p) = n.out.pop_front() {
                assert!(matches!(p.kind, PacketKind::NsuWrite { .. }));
                wrote = true;
                break;
            }
        }
        assert!(wrote);
    }

    #[test]
    fn end_waits_for_write_acks() {
        let mut n = nsu();
        n.deliver(0, cmd(3)).unwrap();
        n.deliver(0, rdf_resp(3, 0, full_access(0x1000))).unwrap();
        n.deliver(0, wta(3, 1, full_access(0x2000))).unwrap();
        let mut write_pkt = None;
        for now in 0..100 {
            n.tick(now);
            if let Some(p) = n.out.pop_front() {
                write_pkt = Some(p);
                break;
            }
        }
        let wp = write_pkt.expect("write emitted");
        // Without the ack, no ACK packet may appear.
        for now in 100..200 {
            n.tick(now);
        }
        assert!(n.out.is_empty(), "OFLD.END must wait for write acks");
        if let PacketKind::NsuWrite { token, .. } = wp.kind {
            n.deliver(
                0,
                Packet::new(wp.dst, Node::Nsu(0), 200, PacketKind::NsuWriteAck { token }),
            )
            .unwrap();
        }
        let mut acked = false;
        for now in 200..260 {
            n.tick(now);
            if let Some(p) = n.out.pop_front() {
                assert!(matches!(p.kind, PacketKind::OffloadAck { .. }));
                acked = true;
            }
        }
        assert!(acked);
    }

    #[test]
    fn divergent_store_fans_out_writes() {
        let mut n = nsu();
        n.deliver(0, cmd(4)).unwrap();
        n.deliver(0, rdf_resp(4, 0, full_access(0x1000))).unwrap();
        // Two WTA line accesses for one store instruction (divergent store).
        let mut h1 = full_access(0x2000);
        h1.lanes.truncate(16);
        let mut h2 = full_access(0x8000);
        h2.lanes.drain(0..16);
        n.deliver(0, wta2(4, 1, h1, 2)).unwrap();
        n.deliver(0, wta2(4, 1, h2, 2)).unwrap();
        let mut writes = 0;
        for now in 0..100 {
            n.tick(now);
            while let Some(p) = n.out.pop_front() {
                if matches!(p.kind, PacketKind::NsuWrite { .. }) {
                    writes += 1;
                }
            }
            if writes == 2 {
                break;
            }
        }
        assert_eq!(writes, 2);
        // One write-address buffer entry per store instruction.
        assert_eq!(n.take_credits().write, 1);
    }

    #[test]
    fn occupancy_and_icache_stats() {
        let mut n = nsu();
        n.deliver(0, cmd(5)).unwrap();
        n.deliver(0, rdf_resp(5, 0, full_access(0x1000))).unwrap();
        for now in 0..10 {
            n.tick(now);
        }
        assert!(n.avg_occupancy() > 0.0);
        let util = n.icache_utilization(4096);
        // 5 instructions × 8 B = 40 B of 4096.
        assert!((util - 40.0 / 4096.0).abs() < 1e-9);
    }

    #[test]
    fn skipping_idle_ticks_matches_ticking() {
        // A warp that runs Begin/Ld/Alu then stalls on its store data:
        // eliding the provably idle ticks must leave every counter (clock,
        // occupancy, instructions, outputs) identical to per-tick running.
        let prime = |n: &mut Nsu| {
            n.deliver(0, cmd(1)).unwrap();
            n.deliver(0, rdf_resp(1, 0, full_access(0x1000))).unwrap();
        };
        const END: u64 = 100;
        let mut ticked = nsu();
        prime(&mut ticked);
        for now in 0..END {
            ticked.tick(now);
        }
        let mut skipped = nsu();
        prime(&mut skipped);
        let mut t = 0u64;
        let mut elided = 0u64;
        while t < END {
            match skipped.next_work_delta() {
                Some(0) => {
                    skipped.tick(t);
                    t += 1;
                }
                Some(d) => {
                    let d = d.min(END - t);
                    skipped.note_skipped(d);
                    elided += d;
                    t += d;
                }
                None => {
                    skipped.note_skipped(END - t);
                    elided += END - t;
                    t = END;
                }
            }
        }
        assert!(elided > 50, "the stalled tail should dominate: {elided}");
        assert_eq!(ticked.ticks, skipped.ticks);
        assert_eq!(ticked.nsu_now, skipped.nsu_now);
        assert_eq!(ticked.occupied_sum, skipped.occupied_sum);
        assert_eq!(ticked.instrs, skipped.instrs);
        assert_eq!(ticked.out.len(), skipped.out.len());
        assert_eq!(ticked.occupied_slots(), skipped.occupied_slots());
    }

    #[test]
    fn many_commands_queue_within_capacity() {
        let mut n = nsu();
        for t in 0..10 {
            n.deliver(0, cmd(t)).unwrap();
        }
        // 10 commands (capacity) is fine; all eventually spawn.
        for now in 0..50 {
            n.tick(now);
        }
        assert_eq!(n.take_credits().cmd, 10);
    }
}
