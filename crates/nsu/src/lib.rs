//! The Near-data processing SIMD Unit (NSU, §4.5).
//!
//! An NSU sits on the logic layer of each memory stack. It has **no MMU, no
//! TLB, and no data cache** — that is the paper's standardization argument.
//! It holds 48 warp slots, a 10-entry offload command buffer, a 256-entry
//! read data buffer and a 256-entry write address buffer (Table 2), and
//! executes the translated NSU code of offload blocks: loads pop merged RDF
//! responses from the read data buffer, stores emit DRAM writes using
//! GPU-provided physical addresses from the write address buffer, and
//! `OFLD.END` returns an acknowledgment (with live-out registers) after all
//! writes are acknowledged (§4.1.2).

#![forbid(unsafe_code)]

pub mod core;

pub use core::{CreditEvents, Nsu};
