//! Property tests: the NSU protocol state machine under randomized packet
//! arrival orders.

use ndp_common::config::SystemConfig;
use ndp_common::ids::{HmcId, Node, OffloadId, OffloadToken};
use ndp_common::packet::{LineAccess, Packet, PacketKind};
use ndp_isa::instr::Reg;
use ndp_isa::offload::{InstrRole, NsuInstr, OffloadBlock};
use ndp_nsu::Nsu;
use proptest::prelude::*;
use std::sync::Arc;

fn block() -> OffloadBlock {
    OffloadBlock {
        id: 0,
        start: 0,
        end: 2,
        roles: vec![InstrRole::Load, InstrRole::Store],
        live_in: vec![],
        live_out: vec![],
        nsu_code: vec![
            NsuInstr::Begin { regs_in: 0 },
            NsuInstr::Ld { dst: Reg(1) },
            NsuInstr::St { src: Reg(1) },
            NsuInstr::End { regs_out: 0 },
        ],
        nsu_pc: 0xd00,
        score: 1,
        indirect: false,
    }
}

fn cmd(token: u64) -> Packet {
    Packet::new(
        Node::Sm(0),
        Node::Nsu(0),
        0,
        PacketKind::OffloadCmd {
            token: OffloadToken(token),
            id: OffloadId {
                sm: 0,
                warp: 0,
                seq: 0,
            },
            nsu_pc: 0xd00,
            regs_in: 0,
            active: 32,
            mask: u32::MAX,
            n_loads: 1,
            n_stores: 1,
        },
    )
}

fn rdf_resp(token: u64, lanes: std::ops::Range<u8>) -> Packet {
    Packet::new(
        Node::Vault(0, 0),
        Node::Nsu(0),
        0,
        PacketKind::RdfResp {
            token: OffloadToken(token),
            seq: 0,
            access: LineAccess {
                line: 0x1000,
                lanes: lanes.map(|l| (l, 0x1000 + l as u64 * 4)).collect(),
                misaligned: false,
            },
        },
    )
}

fn wta(token: u64) -> Packet {
    Packet::new(
        Node::Sm(0),
        Node::Nsu(0),
        0,
        PacketKind::Wta {
            token: OffloadToken(token),
            seq: 1,
            access: LineAccess {
                line: 0x2000,
                lanes: (0..32).map(|l| (l, 0x2000 + l as u64 * 4)).collect(),
                misaligned: false,
            },
            target: Node::Nsu(0),
            n_accesses: 1,
        },
    )
}

proptest! {
    /// Whatever order the CMD / split RDF responses / WTA arrive in, the
    /// block completes exactly once, all credits return, and the write is
    /// issued exactly once.
    #[test]
    fn any_arrival_order_completes(order in Just(()).prop_perturb(|_, mut rng| {
        let mut idx: Vec<usize> = (0..4).collect();
        // Fisher–Yates with the proptest RNG.
        for i in (1..idx.len()).rev() {
            let j = (rng.next_u32() as usize) % (i + 1);
            idx.swap(i, j);
        }
        idx
    })) {
        let mut nsu = Nsu::new(HmcId(0), &SystemConfig::default(), Arc::new(vec![block()]));
        let packets: Vec<Packet> = vec![
            cmd(7),
            rdf_resp(7, 0..16),
            rdf_resp(7, 16..32),
            wta(7),
        ];
        for &i in &order {
            nsu.deliver(0, packets[i].clone()).unwrap();
        }
        let mut writes = 0;
        let mut acks = 0;
        for now in 0..10_000u64 {
            nsu.tick(now);
            while let Some(p) = nsu.out.pop_front() {
                match p.kind {
                    PacketKind::NsuWrite { token, .. } => {
                        writes += 1;
                        nsu.deliver(
                            now,
                            Packet::new(p.dst, Node::Nsu(0), now, PacketKind::NsuWriteAck { token }),
                        )
                        .unwrap();
                    }
                    PacketKind::OffloadAck { .. } => acks += 1,
                    ref other => prop_assert!(false, "unexpected {other:?}"),
                }
            }
            if acks == 1 {
                break;
            }
        }
        prop_assert_eq!(writes, 1);
        prop_assert_eq!(acks, 1);
        prop_assert!(!nsu.busy());
        let c = nsu.take_credits();
        prop_assert_eq!((c.cmd, c.read, c.write), (1, 1, 1));
    }
}
