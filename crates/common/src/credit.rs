//! Credit-based buffer management (§4.3, "Deadlock Prevention").
//!
//! The GPU-side NDP buffer manager keeps credit counts for the three NSU
//! buffer classes in every HMC — offload command, read data, and write
//! address buffers. An SM's reservation request at `OFLD.BEG` is granted only
//! if all three classes have sufficient credits; the NSU returns credits
//! (piggybacked on other packets, hence free on the wire) as entries drain.

/// A single credit pool with a hard capacity.
#[derive(Debug, Clone, Copy)]
pub struct CreditPool {
    available: usize,
    capacity: usize,
}

impl CreditPool {
    pub fn new(capacity: usize) -> Self {
        CreditPool {
            available: capacity,
            capacity,
        }
    }

    pub fn available(&self) -> usize {
        self.available
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Credits currently reserved (occupancy of the buffer this pool
    /// guards) — what the observability sampler plots over time.
    pub fn in_use(&self) -> usize {
        self.capacity - self.available
    }

    /// Try to reserve `n` credits; all-or-nothing.
    pub fn try_reserve(&mut self, n: usize) -> bool {
        if self.available >= n {
            self.available -= n;
            true
        } else {
            false
        }
    }

    /// Return `n` credits, clamped at capacity. `false` signals an
    /// over-release (a double credit return — e.g. from a duplicated
    /// packet), which the caller reports as an invariant violation.
    #[must_use]
    pub fn try_release(&mut self, n: usize) -> bool {
        if self.available + n > self.capacity {
            self.available = self.capacity;
            return false;
        }
        self.available += n;
        true
    }

    /// Checkpoint the pool balance (capacity is config-derived and comes
    /// from fresh construction on restore).
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.usize(self.available);
    }

    /// Overwrite the pool balance from a checkpoint stream. A balance above
    /// the pool's capacity is structurally impossible and rejected.
    pub fn restore(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        let available = r.usize()?;
        if available > self.capacity {
            return Err(crate::snap::SnapError(format!(
                "credit balance {available} exceeds pool capacity {}",
                self.capacity
            )));
        }
        self.available = available;
        Ok(())
    }

    /// Return `n` credits. Panics if that would exceed capacity — a protocol
    /// bug (double release) rather than a runtime condition.
    pub fn release(&mut self, n: usize) {
        assert!(
            self.available + n <= self.capacity,
            "credit over-release: {} + {} > {}",
            self.available,
            n,
            self.capacity
        );
        self.available += n;
    }
}

/// Per-HMC credit state for the three NSU buffer classes.
#[derive(Debug, Clone)]
pub struct NsuCredits {
    pub cmd: CreditPool,
    pub read_data: CreditPool,
    pub write_addr: CreditPool,
}

impl NsuCredits {
    pub fn new(cmd: usize, read_data: usize, write_addr: usize) -> Self {
        NsuCredits {
            cmd: CreditPool::new(cmd),
            read_data: CreditPool::new(read_data),
            write_addr: CreditPool::new(write_addr),
        }
    }

    /// Reserve the buffers an offload block needs: 1 command slot,
    /// `n_loads` read-data entries and `n_stores` write-address entries.
    /// All-or-nothing: partial reservations are rolled back so the pools
    /// never leak credits when a reservation fails (deadlock freedom).
    pub fn try_reserve_block(&mut self, n_loads: usize, n_stores: usize) -> bool {
        if !self.cmd.try_reserve(1) {
            return false;
        }
        if !self.read_data.try_reserve(n_loads) {
            self.cmd.release(1);
            return false;
        }
        if !self.write_addr.try_reserve(n_stores) {
            self.cmd.release(1);
            self.read_data.release(n_loads);
            return false;
        }
        true
    }

    /// Release all buffers of a finished block (ACK received at the GPU).
    pub fn release_block(&mut self, n_loads: usize, n_stores: usize) {
        self.cmd.release(1);
        self.read_data.release(n_loads);
        self.write_addr.release(n_stores);
    }

    /// Checkpoint all three pool balances.
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        self.cmd.snap(w);
        self.read_data.snap(w);
        self.write_addr.snap(w);
    }

    /// Overwrite all three pool balances from a checkpoint stream.
    pub fn restore(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        self.cmd.restore(r)?;
        self.read_data.restore(r)?;
        self.write_addr.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_roundtrip() {
        let mut p = CreditPool::new(4);
        assert!(p.try_reserve(3));
        assert_eq!(p.available(), 1);
        assert_eq!(p.in_use(), 3);
        assert!(!p.try_reserve(2));
        p.release(3);
        assert_eq!(p.available(), 4);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "credit over-release")]
    fn over_release_panics() {
        let mut p = CreditPool::new(2);
        p.release(1);
    }

    #[test]
    fn block_reservation_is_atomic() {
        // cmd=1, read=4, write=1: a block needing 2 stores must fail and
        // leave every pool untouched.
        let mut c = NsuCredits::new(1, 4, 1);
        assert!(!c.try_reserve_block(2, 2));
        assert_eq!(c.cmd.available(), 1);
        assert_eq!(c.read_data.available(), 4);
        assert_eq!(c.write_addr.available(), 1);
        assert!(c.try_reserve_block(4, 1));
        assert!(!c.try_reserve_block(0, 0), "cmd slot exhausted");
        c.release_block(4, 1);
        assert!(c.try_reserve_block(0, 0));
    }
}
