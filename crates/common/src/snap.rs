//! Binary snapshot primitives for deterministic checkpoint/restore.
//!
//! Every stateful component serializes itself through [`SnapWriter`] /
//! [`SnapReader`]: a tiny, dependency-free little-endian binary codec.
//! There is deliberately no reflection and no derive — the offline build
//! carries only inert serde stubs, and a hand-rolled codec keeps the
//! on-disk layout explicit, stable, and auditable (DESIGN.md §13).
//!
//! Conventions shared by every `snap`/`restore` pair in the workspace:
//!
//! - integers are little-endian fixed width; `usize` travels as `u64`;
//! - `f64` travels as its IEEE-754 bit pattern ([`f64::to_bits`]) so
//!   restore is bit-exact, never a decimal round-trip;
//! - sequences are length-prefixed (`u64`) and written in a deterministic
//!   order — hash maps/sets serialize their entries sorted by key so two
//!   snapshots of identical state are byte-identical across processes;
//! - `Option<T>` is a `bool` presence flag followed by the payload;
//! - composite sections open with a [`SnapWriter::tag`] that the reader
//!   checks, so a truncated or shifted stream fails loudly at the first
//!   misaligned section instead of silently misparsing.
//!
//! Corruption is never a panic: every reader method returns a
//! [`SnapError`] naming the byte offset and what was being decoded, which
//! `System::try_restore` wraps into `SimError::BadCheckpoint`.

use std::fmt;

/// Why a snapshot stream could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError(pub String);

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a 64-bit content hash — the checkpoint checksum and the
/// config/kernel fingerprint function. Not cryptographic; it guards
/// against truncation, bit rot, and mismatched inputs, not adversaries.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only little-endian encoder.
#[derive(Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Bit-exact float transport.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Sequence length prefix; follow with exactly that many elements.
    pub fn len(&mut self, n: usize) {
        self.u64(n as u64);
    }

    /// Section marker — readers verify it with [`SnapReader::tag`].
    pub fn tag(&mut self, t: u16) {
        self.u16(t);
    }

    pub fn position(&self) -> usize {
        self.buf.len()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over a snapshot byte stream; every decode is bounds-checked.
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError(format!(
                "truncated stream at byte {}: need {} bytes for {}, {} left",
                self.pos,
                n,
                what,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1, "u8")?[0])
    }

    pub fn u16(&mut self) -> Result<u16, SnapError> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| {
            SnapError(format!(
                "value {v} at byte {} does not fit in usize",
                self.pos - 8
            ))
        })
    }

    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(SnapError(format!(
                "invalid bool byte {v:#x} at byte {}",
                self.pos - 1
            ))),
        }
    }

    pub fn str(&mut self) -> Result<String, SnapError> {
        let at = self.pos;
        let n = self.usize()?;
        let b = self.take(n, "string payload")?;
        String::from_utf8(b.to_vec())
            .map_err(|_| SnapError(format!("invalid UTF-8 string at byte {at}")))
    }

    /// Sequence length prefix. Rejects lengths that cannot possibly fit in
    /// the remaining bytes (each element occupies at least one byte), so a
    /// corrupted prefix fails here rather than in a giant allocation.
    // Not a container length — `is_empty` has no meaning for a decoder.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize, SnapError> {
        let at = self.pos;
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(SnapError(format!(
                "sequence length {n} at byte {at} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Consume and verify a section marker written by [`SnapWriter::tag`].
    pub fn tag(&mut self, expected: u16, what: &str) -> Result<(), SnapError> {
        let at = self.pos;
        let got = self.u16()?;
        if got != expected {
            return Err(SnapError(format!(
                "bad section tag at byte {at}: expected {expected:#06x} ({what}), got {got:#06x}"
            )));
        }
        Ok(())
    }

    /// Assert the stream was consumed exactly.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError(format!(
                "{} trailing bytes after byte {}",
                self.remaining(),
                self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.usize(12345);
        w.f64(-0.1);
        w.bool(true);
        w.bool(false);
        w.str("héllo");
        w.tag(0x42);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        r.tag(0x42, "test").unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = SnapWriter::new();
        w.u64(99);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        let e = r.u64().unwrap_err();
        assert!(e.0.contains("truncated"), "{e}");
    }

    #[test]
    fn bad_bool_and_bad_tag_are_named() {
        let mut w = SnapWriter::new();
        w.u8(9);
        w.tag(0x1111);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.bool().unwrap_err().0.contains("invalid bool"));
        let e = r.tag(0x2222, "sms").unwrap_err();
        assert!(e.0.contains("sms") && e.0.contains("0x2222"), "{e}");
    }

    #[test]
    fn oversized_sequence_length_rejected() {
        let mut w = SnapWriter::new();
        w.len(1 << 40);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(r.len().unwrap_err().0.contains("exceeds"));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = SnapWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.u8().unwrap();
        assert!(r.finish().unwrap_err().0.contains("trailing"));
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }
}
