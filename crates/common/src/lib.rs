//! Shared substrate for the SC'17 "Standardized NDP for GPUs" reproduction.
//!
//! This crate holds everything that more than one simulator component needs:
//! node/packet identifiers, the Table-2 system configuration, the packetized
//! message formats of the partitioned-execution protocol (Fig. 4), a
//! bandwidth-modelled link primitive, credit pools for the NSU buffer
//! reservation scheme (§4.3), deterministic value/hash functions used to
//! synthesize memory contents, the page→HMC mapping (§5, random 4 KB
//! page interleaving), the unified observability layer ([`obs`]:
//! latency histograms, occupancy time-series, protocol event tracing and
//! Chrome-trace export), and the robustness layer: structured simulation
//! errors ([`error`]), the forward-progress watchdog and stall reports
//! ([`watchdog`]), the protocol-invariant engine ([`invariant`]), and the
//! deterministic fault injector ([`fault`]). The static-verification layer
//! lives in [`analysis`] (fabric-graph checks) and [`env`] (typed `NDP_*`
//! environment parsing with a registry of known knobs).

#![forbid(unsafe_code)]

pub mod analysis;
pub mod bitset;
pub mod config;
pub mod credit;
pub mod env;
pub mod error;
pub mod fault;
pub mod footprint;
pub mod ids;
pub mod invariant;
pub mod link;
pub mod memmap;
pub mod obs;
pub mod packet;
pub mod port;
pub mod rng;
pub mod snap;
pub mod stats;
pub mod watchdog;

pub use analysis::{
    CreditPoolSpec, FabricGraph, FootprintSpec, GraphDiag, GraphEdge, GraphNode,
    SharedResourceSpec, WakeSourceSpec,
};
pub use bitset::BitSet;
pub use config::SystemConfig;
pub use error::{PacketSummary, SimError};
pub use fault::{FaultAction, FaultConfig, FaultInjector, FaultStats, InjectedFault};
pub use footprint::{Access, Footprint, RaceDetector};
pub use ids::{Cycle, HmcId, Node, OffloadToken, SmId, VaultId};
pub use invariant::Invariants;
pub use packet::{Packet, PacketKind};
pub use port::{Component, Fabric, FabricCtx, InPort, OutPort};
pub use watchdog::{StallReport, Watchdog, DEFAULT_WATCHDOG_CYCLES};
