//! Deterministic seeded fault injection.
//!
//! Robustness machinery is only trustworthy if it is *tested against real
//! failures*. The fault injector perturbs the fabric at its single
//! packet-movement loop (`run_edge`): it can drop a packet in transit,
//! delay it at the head of its queue, duplicate it into the receiver, or
//! withhold NSU credit returns entirely (wedging the credit protocol).
//!
//! Decisions are **pure functions** of `(seed, edge, packet identity)` via
//! the counter-based [`unit_sample`](crate::rng::unit_sample) generator:
//! the same seed always produces the same fault schedule, independent of
//! evaluation order — so faulty runs are exactly reproducible and a fault
//! schedule can be replayed from its seed alone.
//!
//! Configure programmatically with [`FaultConfig`] or from the environment
//! (`NDP_FAULT_SEED`, `NDP_FAULT_DROP`, `NDP_FAULT_DUP`, `NDP_FAULT_DELAY_P`,
//! `NDP_FAULT_DELAY_CYCLES`, `NDP_FAULT_WITHHOLD_CREDITS`).

use serde::Serialize;

use crate::ids::{Cycle, Node};
use crate::packet::Packet;
use crate::rng::{splitmix64, unit_sample};

/// Per-fault-class RNG stream tags (xored with the edge index so the same
/// packet sees independent decisions on different edges).
const STREAM_DROP: u64 = 0xfa01;
const STREAM_DUP: u64 = 0xfa02;
const STREAM_DELAY: u64 = 0xfa03;

/// Knobs of the deterministic fault injector. All probabilities are per
/// (packet, edge) movement attempt.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    /// Seed of the fault schedule; same seed → same faults.
    pub seed: u64,
    /// Probability a packet vanishes in transit.
    pub drop_prob: f64,
    /// Probability a packet is delivered twice.
    pub dup_prob: f64,
    /// Probability a packet is held at the head of its queue.
    pub delay_prob: f64,
    /// How long a delayed packet is held (from its birth cycle).
    pub delay_cycles: Cycle,
    /// Discard all NSU credit returns: reserved buffer entries are never
    /// credited back, so the credit pools drain and the machine wedges.
    pub withhold_credits: bool,
}

impl FaultConfig {
    /// Any per-packet fault class enabled?
    pub fn any_packet_faults(&self) -> bool {
        self.drop_prob > 0.0 || self.dup_prob > 0.0 || self.delay_prob > 0.0
    }

    /// Anything at all enabled?
    pub fn is_active(&self) -> bool {
        self.any_packet_faults() || self.withhold_credits
    }

    /// Read the `NDP_FAULT_*` environment surface; `None` when no fault
    /// variable is set (the common case — faults fully disabled). A set but
    /// malformed variable is a typed [`crate::env::EnvError`] panic, never a
    /// silent fall-back to the default.
    pub fn from_env() -> Option<Self> {
        use crate::env::{flag_or_die, parse_or_die};
        let cfg = FaultConfig {
            seed: parse_or_die("NDP_FAULT_SEED").unwrap_or(0),
            drop_prob: parse_or_die("NDP_FAULT_DROP").unwrap_or(0.0),
            dup_prob: parse_or_die("NDP_FAULT_DUP").unwrap_or(0.0),
            delay_prob: parse_or_die("NDP_FAULT_DELAY_P").unwrap_or(0.0),
            delay_cycles: parse_or_die("NDP_FAULT_DELAY_CYCLES").unwrap_or(1_000),
            withhold_credits: flag_or_die("NDP_FAULT_WITHHOLD_CREDITS").unwrap_or(false),
        };
        cfg.is_active().then_some(cfg)
    }
}

/// What the injector does to one packet at one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    None,
    /// Remove the packet from the fabric without delivering it.
    Drop,
    /// Hold the packet at the head of its queue until `until`.
    Delay {
        until: Cycle,
    },
    /// Deliver the packet twice (if the receiver has room for both).
    Duplicate,
}

/// Injected-fault accounting (what actually happened, vs. the schedule).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FaultStats {
    pub dropped: u64,
    pub duplicated: u64,
    /// Head-of-line hold events (one per cycle a delayed packet blocked).
    pub delay_holds: u64,
    pub credits_withheld: u64,
}

/// Category of an injected fault, for accounting hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    Dropped,
    Duplicated,
    Held,
}

/// The injector: pure per-packet decisions plus occurrence counters.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    pub cfg: FaultConfig,
    pub stats: FaultStats,
}

fn node_key(n: Node) -> u64 {
    match n {
        Node::Sm(i) => 0x100 | i as u64,
        Node::L2(i) => 0x200 | i as u64,
        Node::Hmc(i) => 0x300 | i as u64,
        Node::Vault(h, v) => 0x400 | ((h as u64) << 8) | v as u64,
        Node::Nsu(i) => 0x500 | i as u64,
        Node::BufMgr => 0x600,
    }
}

/// A stable identity hash for one packet: src, dst, kind, size, and birth
/// cycle. Two distinct packets can collide, but collisions only mean they
/// share a fault decision — determinism is unaffected.
fn packet_key(p: &Packet) -> u64 {
    let mut k = node_key(p.src);
    k = splitmix64(k ^ node_key(p.dst).wrapping_mul(0x9e37));
    k = splitmix64(k ^ ((p.kind_index() as u64) << 32) ^ p.size as u64);
    splitmix64(k ^ p.birth.wrapping_mul(0x1000_0001))
}

impl FaultInjector {
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector {
            cfg,
            stats: FaultStats::default(),
        }
    }

    /// The (pure, deterministic) fault decision for one packet at one edge.
    /// `edge` distinguishes fabric edges so a duplicated packet is not
    /// re-duplicated at every subsequent hop by the same draw.
    pub fn decide(&self, edge: u64, p: &Packet) -> FaultAction {
        if !self.cfg.any_packet_faults() {
            return FaultAction::None;
        }
        let key = packet_key(p);
        let c = &self.cfg;
        if c.drop_prob > 0.0 && unit_sample(c.seed, STREAM_DROP ^ (edge << 16), key) < c.drop_prob {
            return FaultAction::Drop;
        }
        if c.dup_prob > 0.0 && unit_sample(c.seed, STREAM_DUP ^ (edge << 16), key) < c.dup_prob {
            return FaultAction::Duplicate;
        }
        if c.delay_prob > 0.0
            && unit_sample(c.seed, STREAM_DELAY ^ (edge << 16), key) < c.delay_prob
        {
            return FaultAction::Delay {
                until: p.birth + c.delay_cycles,
            };
        }
        FaultAction::None
    }

    /// Record that a fault actually happened (the schedule may name faults
    /// for packets that never exist; only occurrences count).
    pub fn note(&mut self, f: InjectedFault) {
        match f {
            InjectedFault::Dropped => self.stats.dropped += 1,
            InjectedFault::Duplicated => self.stats.duplicated += 1,
            InjectedFault::Held => self.stats.delay_holds += 1,
        }
    }

    /// Checkpoint the schedule config and occurrence counters. Decisions
    /// are pure functions of `(seed, edge, packet)`, so restoring these two
    /// is enough to replay the remainder of a faulty run exactly.
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.cfg.seed);
        w.f64(self.cfg.drop_prob);
        w.f64(self.cfg.dup_prob);
        w.f64(self.cfg.delay_prob);
        w.u64(self.cfg.delay_cycles);
        w.bool(self.cfg.withhold_credits);
        w.u64(self.stats.dropped);
        w.u64(self.stats.duplicated);
        w.u64(self.stats.delay_holds);
        w.u64(self.stats.credits_withheld);
    }

    /// Rebuild an injector from a checkpoint stream.
    pub fn restore(
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<FaultInjector, crate::snap::SnapError> {
        let cfg = FaultConfig {
            seed: r.u64()?,
            drop_prob: r.f64()?,
            dup_prob: r.f64()?,
            delay_prob: r.f64()?,
            delay_cycles: r.u64()?,
            withhold_credits: r.bool()?,
        };
        let stats = FaultStats {
            dropped: r.u64()?,
            duplicated: r.u64()?,
            delay_holds: r.u64()?,
            credits_withheld: r.u64()?,
        };
        Ok(FaultInjector { cfg, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    fn pkt(birth: Cycle, tag: u64) -> Packet {
        Packet::new(
            Node::Sm((tag % 7) as u16),
            Node::L2((tag % 5) as u8),
            birth,
            PacketKind::ReadReq {
                addr: tag * 128,
                bytes: 128,
                tag,
                block: crate::packet::NO_BLOCK,
            },
        )
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultInjector::new(FaultConfig {
            seed: 1,
            drop_prob: 0.2,
            dup_prob: 0.2,
            delay_prob: 0.2,
            delay_cycles: 100,
            ..Default::default()
        });
        let b = FaultInjector::new(FaultConfig { seed: 2, ..a.cfg });
        let mut same = 0;
        let n = 500;
        for i in 0..n {
            let p = pkt(i, i);
            assert_eq!(a.decide(3, &p), a.decide(3, &p), "pure decision");
            if a.decide(3, &p) == b.decide(3, &p) {
                same += 1;
            }
        }
        assert!(same < n, "different seeds must differ somewhere");
    }

    #[test]
    fn edges_draw_independent_decisions() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 7,
            drop_prob: 0.5,
            ..Default::default()
        });
        let differing = (0..200)
            .filter(|&i| {
                let p = pkt(i, i);
                inj.decide(0, &p) != inj.decide(1, &p)
            })
            .count();
        assert!(differing > 20, "only {differing} differing decisions");
    }

    #[test]
    fn probabilities_are_roughly_honoured() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 11,
            drop_prob: 0.25,
            ..Default::default()
        });
        let n = 4000;
        let dropped = (0..n)
            .filter(|&i| inj.decide(0, &pkt(i, i * 31)) == FaultAction::Drop)
            .count();
        let frac = dropped as f64 / n as f64;
        assert!((0.18..0.32).contains(&frac), "drop fraction {frac}");
    }

    #[test]
    fn zero_config_never_faults() {
        let inj = FaultInjector::new(FaultConfig::default());
        assert!(!inj.cfg.is_active());
        for i in 0..100 {
            assert_eq!(inj.decide(0, &pkt(i, i)), FaultAction::None);
        }
    }

    #[test]
    fn delay_is_relative_to_birth() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 3,
            delay_prob: 1.0,
            delay_cycles: 64,
            ..Default::default()
        });
        match inj.decide(0, &pkt(100, 1)) {
            FaultAction::Delay { until } => assert_eq!(until, 164),
            other => panic!("expected delay, got {other:?}"),
        }
    }
}
