//! Deterministic hashing and synthetic memory contents.
//!
//! The simulator is trace-free: workloads are IR kernels executed
//! functionally, and memory *values* are synthesized by a pure function of
//! the address (and a per-run seed). This gives bit-reproducible runs, lets
//! indirect workloads (BFS, STCL) produce genuinely data-dependent divergent
//! address streams, and costs no memory for multi-GB footprints.

/// SplitMix64 — tiny, high-quality 64-bit mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Synthetic memory contents: the word stored at `addr`.
///
/// Stores are timing-only in this simulator (no workload reads an address
/// whose *value* it previously wrote within the same kernel — see DESIGN.md),
/// so an immutable value function is sufficient, and both the GPU-side and
/// NSU-side functional executors observe identical data.
#[inline]
pub fn mem_value(seed: u64, addr: u64) -> u64 {
    splitmix64(addr ^ seed.rotate_left(17))
}

/// A value in `0..bound` derived from memory contents — used by workloads to
/// turn loaded words into array indices (e.g. `B[A[i]]`).
#[inline]
pub fn bounded(value: u64, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Multiply-shift range reduction (unbiased enough for simulation).
    ((value as u128 * bound as u128) >> 64) as u64
}

/// A tiny counter-based RNG for decision sampling (static offload ratio).
/// Unlike `SmallRng` it is `Copy` and needs no state mutation discipline:
/// sample `i` of stream `s` is pure.
#[inline]
pub fn unit_sample(seed: u64, stream: u64, index: u64) -> f64 {
    let bits = splitmix64(seed ^ stream.wrapping_mul(0xA24B_AED4_963E_E407) ^ index);
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Avalanche sanity: flipping one input bit flips ~half the output.
        let d = (splitmix64(0x1234) ^ splitmix64(0x1235)).count_ones();
        assert!((16..=48).contains(&d), "poor avalanche: {d}");
    }

    #[test]
    fn mem_value_differs_by_seed_and_addr() {
        assert_eq!(mem_value(7, 0x100), mem_value(7, 0x100));
        assert_ne!(mem_value(7, 0x100), mem_value(8, 0x100));
        assert_ne!(mem_value(7, 0x100), mem_value(7, 0x104));
    }

    #[test]
    fn bounded_respects_bound() {
        for i in 0..1000u64 {
            let v = bounded(splitmix64(i), 37);
            assert!(v < 37);
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let n = 100_000u64;
        let buckets = 10u64;
        let mut hist = [0u64; 10];
        for i in 0..n {
            hist[bounded(splitmix64(i), buckets) as usize] += 1;
        }
        let expect = n / buckets;
        for (b, &h) in hist.iter().enumerate() {
            assert!(
                (h as i64 - expect as i64).unsigned_abs() < expect / 5,
                "bucket {b}: {h} vs {expect}"
            );
        }
    }

    #[test]
    fn unit_sample_in_range_and_stream_independent() {
        let mut acc = 0.0;
        for i in 0..10_000 {
            let u = unit_sample(42, 3, i);
            assert!((0.0..1.0).contains(&u));
            acc += u;
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
        assert_ne!(unit_sample(42, 1, 5), unit_sample(42, 2, 5));
    }
}
