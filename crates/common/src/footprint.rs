//! Shared-state footprints and the deterministic race detector.
//!
//! The fabric executes most stages as a sequential member loop, but the
//! `NDP_PARALLEL` path ticks the HMC-stack and NSU interiors on scoped
//! threads, and ROADMAP item 1 wants `tick:sms` parallel too. Whether a
//! member loop *may* go parallel is a property of what shared state its
//! members touch per tick — so every component class declares a
//! [`Footprint`]: the named shared resources it reads and writes from
//! inside its `tick`. The declarations are checked twice (DESIGN.md §16):
//!
//! * **Statically** — `FabricGraph::check_parallel_safety` (ndp-lint
//!   Pass 2) proves that every member of a parallel-eligible stage has a
//!   write-free footprint, and renders the per-stage conflict report
//!   (`results/parallel_footprint.txt`) naming exactly which shared
//!   resources serialize the remaining stages.
//! * **Dynamically** — `NDP_RACE=1` arms the [`RaceDetector`]: every
//!   declared-resource access is recorded with the accessor's identity
//!   and the current stage epoch, and an access outside the accessor's
//!   declared footprint ([`SimError::UndeclaredAccess`]) or a conflicting
//!   cross-member access inside a parallel region
//!   ([`SimError::DataRace`]) is a typed error naming the resource, both
//!   accessors, and the cycle. The dynamic side mechanically validates
//!   the static declarations, the same coupling discipline as the
//!   `WAKE_SOURCES` quiescence pass (DESIGN.md §14).
//!
//! The detector is strictly read-only with respect to the model: arming
//! it never changes simulation output (pinned byte-identical by
//! `tests/perf_profile.rs` and the `NDP_RACE=1` equivalence leg).

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Mutex;

use crate::error::SimError;
use crate::ids::Cycle;

/// Canonical shared-resource names. Components declare footprints and the
/// access hooks record against these constants, so the static and dynamic
/// sides cannot drift apart by a typo'd string.
pub mod res {
    /// NSU buffer-credit pools (`BufferManager`): `try_reserve` decrements,
    /// credit-return messages replenish.
    pub const CTRL_CREDITS: &str = "ctrl.credits";
    /// Offload decision stream: `offered`/`offloaded` counters and the
    /// sampled per-warp decision log.
    pub const CTRL_DECISIONS: &str = "ctrl.decisions";
    /// Per-block cache-behaviour statistics feeding the §7.3 locality gate.
    pub const CTRL_BLOCK_STATS: &str = "ctrl.block_stats";
    /// Algorithm-1 hill-climb state: current ratio and the epoch
    /// instruction counter it steps on.
    pub const CTRL_HILL_CLIMB: &str = "ctrl.hill_climb";
    /// In-flight WTA line counters per stack (write-throttle accounting).
    pub const CTRL_WTA_INFLIGHT: &str = "ctrl.wta_inflight";
    /// Per-NSU read-only cache directories (RO-line residency tracking).
    pub const CTRL_RO_CACHE: &str = "ctrl.ro_cache";
    /// Observability event ring (`obs`): append-only event log.
    pub const OBS_EVENT_RING: &str = "obs.event_ring";
    /// Fault-injector RNG stream: draws are order-dependent.
    pub const FAULT_RNG: &str = "fault.rng";
    /// Watchdog progress counter: any-progress notifications.
    pub const WATCHDOG_PROGRESS: &str = "watchdog.progress";
}

/// How a shared resource is touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    Read,
    Write,
}

/// The per-tick shared-state footprint of one component class: which
/// shared resources any member may read or write from inside its `tick`
/// (including calls it makes into the shared `NdpEnv`). Write membership
/// implies read permission — a read-modify-write declares only the write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprint {
    pub reads: &'static [&'static str],
    pub writes: &'static [&'static str],
}

impl Footprint {
    /// The footprint of a component whose tick touches no shared state —
    /// what certifies its stage parallel-eligible by construction.
    pub const EMPTY: Footprint = Footprint {
        reads: &[],
        writes: &[],
    };

    /// Whether `access` on `resource` is covered by this declaration.
    pub fn allows(&self, resource: &str, access: Access) -> bool {
        match access {
            Access::Write => self.writes.contains(&resource),
            Access::Read => self.reads.contains(&resource) || self.writes.contains(&resource),
        }
    }

    /// True when the footprint declares no shared writes (reads are safe
    /// to share across concurrent members).
    pub fn is_write_free(&self) -> bool {
        self.writes.is_empty()
    }
}

// The identity of the member currently ticking on this thread. Set by the
// fabric owner around each member's tick (and inside each spawned scoped
// thread on the parallel path); access hooks that fire with no accessor
// set — deliveries, credit drains, controller side-stages, tests poking
// the controller directly — are fabric-owner work, serialized by
// construction, and are not recorded.
thread_local! {
    static ACCESSOR: Cell<Option<(&'static str, usize)>> = const { Cell::new(None) };
}

/// Mark the current thread as ticking member `lane` of component class
/// `class` (e.g. `("sm", 3)`). Only called when the detector is armed.
pub fn set_accessor(class: &'static str, lane: usize) {
    ACCESSOR.with(|a| a.set(Some((class, lane))));
}

/// Clear the current thread's accessor mark (end of a member loop).
pub fn clear_accessor() {
    ACCESSOR.with(|a| a.set(None));
}

fn current_accessor() -> Option<(&'static str, usize)> {
    ACCESSOR.with(|a| a.get())
}

/// One recorded access to a shared resource.
#[derive(Debug, Clone)]
struct Rec {
    class: &'static str,
    lane: usize,
    write: bool,
    cycle: Cycle,
    epoch: u64,
}

#[derive(Debug, Default)]
struct Inner {
    /// Declared footprint per component class (accessor class name).
    footprints: Vec<(&'static str, Footprint)>,
    /// Stage whose member loop is currently running.
    stage: Option<&'static str>,
    /// Whether the current member loop actually took the threaded path.
    parallel: bool,
    /// Stages treated as parallel regions spanning the whole run: records
    /// never expire, so *any* cross-member conflict — even one separated
    /// by many cycles — is promoted to a `DataRace`. Test hook used to
    /// demonstrate deterministically what parallel `tick:sms` would trip.
    forced: Vec<&'static str>,
    /// Monotonic member-loop counter; records from earlier epochs of the
    /// same stage are stale (the loop restarted, accesses are ordered).
    epoch: u64,
    now: Cycle,
    /// Recorded accesses keyed by (stage, resource).
    records: HashMap<(&'static str, &'static str), Vec<Rec>>,
    /// Cross-member conflicts observed on *sequential* member loops,
    /// keyed by (stage, resource) — the dynamic evidence for the static
    /// conflict report (these are exactly the accesses that would race if
    /// the stage went parallel).
    would_conflict: HashMap<(&'static str, &'static str), u64>,
    accesses: u64,
    error: Option<SimError>,
    trace: Vec<String>,
}

/// Maximum retained trace lines under `NDP_RACE_LOG=1` (bounded so a long
/// run cannot exhaust memory; the head of the trace is what matters for
/// diagnosing the first conflict).
const TRACE_CAP: usize = 4096;

/// The epoch-tagged shared-resource access recorder behind `NDP_RACE=1`.
///
/// One instance is shared (via `Arc`) between `System` — which brackets
/// each member loop with [`RaceDetector::begin_members`] and marks the
/// per-member accessor — and the `OffloadController`, whose `NdpEnv`
/// methods record their declared resource accesses. All state lives
/// behind one `Mutex`: the detector is correctness tooling, not a fast
/// path, and the armed cost is irrelevant as long as the *disarmed* cost
/// is zero (no detector → no TLS writes, no locks, no recording).
#[derive(Debug)]
pub struct RaceDetector {
    inner: Mutex<Inner>,
    log: bool,
}

impl RaceDetector {
    /// Build a detector over the given per-class footprint declarations.
    /// `log` retains a bounded human-readable access trace
    /// (`NDP_RACE_LOG=1`), retrievable via [`RaceDetector::take_trace`].
    pub fn new(footprints: Vec<(&'static str, Footprint)>, log: bool) -> Self {
        RaceDetector {
            inner: Mutex::new(Inner {
                footprints,
                ..Inner::default()
            }),
            log,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicking member thread poisons the lock; the detector's state
        // is still coherent for error reporting, so ignore the poison.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Start a member loop: `stage` is the fabric stage label (e.g.
    /// `tick:sms`), `parallel` whether this pass actually ticks members on
    /// threads. Bumps the epoch so records from the previous pass of the
    /// same stage no longer conflict (sequential passes are ordered).
    pub fn begin_members(&self, stage: &'static str, parallel: bool, now: Cycle) {
        let mut g = self.lock();
        g.epoch += 1;
        g.stage = Some(stage);
        g.parallel = parallel;
        g.now = now;
    }

    /// Treat `stage` as a run-spanning parallel region: records never go
    /// stale, so any cross-member conflict on it becomes a `DataRace`
    /// regardless of which sequential pass each access happened in.
    /// Deterministic test hook — see `tests/static_verify.rs`.
    pub fn force_parallel(&self, stage: &'static str) {
        self.lock().forced.push(stage);
    }

    /// Record one access to `resource` by the current thread's accessor.
    /// No-op when no accessor is set (fabric-owner work). Parks the first
    /// `UndeclaredAccess`/`DataRace` error for [`RaceDetector::take_error`].
    pub fn record(&self, resource: &'static str, access: Access) {
        let Some((class, lane)) = current_accessor() else {
            return;
        };
        let write = access == Access::Write;
        let mut g = self.lock();
        if g.error.is_some() {
            return; // keep the first error; the run is already doomed
        }
        g.accesses += 1;
        let now = g.now;
        if self.log && g.trace.len() < TRACE_CAP {
            let stage = g.stage.unwrap_or("-");
            let rw = if write { "W" } else { "R" };
            g.trace
                .push(format!("cycle {now} {stage} {class}{lane} {rw} {resource}"));
        }

        // Undeclared-access check: the accessor's class must declare the
        // resource (writes need write membership).
        let declared = g
            .footprints
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, fp)| fp.allows(resource, access))
            .unwrap_or(false);
        if !declared {
            g.error = Some(SimError::UndeclaredAccess {
                resource: resource.to_string(),
                accessor: format!("{class}[{lane}]"),
                cycle: now,
            });
            return;
        }

        let Some(stage) = g.stage else {
            return; // accessor set outside any member loop: nothing to order against
        };
        let forced = g.forced.contains(&stage);
        let parallel = g.parallel;
        let epoch = g.epoch;
        let recs = g.records.entry((stage, resource)).or_default();
        // Records from earlier passes of this stage are ordered before us
        // by the sequential fabric — unless the stage is a (forced)
        // run-spanning parallel region, where every pass is concurrent.
        if !forced {
            recs.retain(|r| r.epoch == epoch);
        }
        let conflict = recs
            .iter()
            .find(|r| (r.class, r.lane) != (class, lane) && (r.write || write))
            .cloned();
        recs.push(Rec {
            class,
            lane,
            write,
            cycle: now,
            epoch,
        });
        if let Some(c) = conflict {
            if parallel || forced {
                g.error = Some(SimError::DataRace {
                    stage,
                    resource: resource.to_string(),
                    first: format!("{}[{}] at cycle {}", c.class, c.lane, c.cycle),
                    second: format!("{class}[{lane}]"),
                    cycle: now,
                });
            } else {
                *g.would_conflict.entry((stage, resource)).or_default() += 1;
            }
        }
    }

    /// Take the parked error, if any (polled once per cycle by the system).
    pub fn take_error(&self) -> Option<SimError> {
        self.lock().error.take()
    }

    /// `(accesses recorded, sequential cross-member conflicts observed)` —
    /// the first proves the detector was engaged, the second is the
    /// dynamic evidence that a stage's member loop is order-dependent.
    pub fn stats(&self) -> (u64, u64) {
        let g = self.lock();
        (g.accesses, g.would_conflict.values().sum())
    }

    /// Sequential cross-member conflict sites as `(stage, resource, count)`,
    /// sorted for deterministic output.
    pub fn conflict_sites(&self) -> Vec<(&'static str, &'static str, u64)> {
        let g = self.lock();
        let mut v: Vec<_> = g
            .would_conflict
            .iter()
            .map(|(&(s, r), &n)| (s, r, n))
            .collect();
        v.sort();
        v
    }

    /// Drain the bounded access trace (`NDP_RACE_LOG=1`; empty otherwise).
    pub fn take_trace(&self) -> Vec<String> {
        std::mem::take(&mut self.lock().trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FP_A: Footprint = Footprint {
        reads: &["pool"],
        writes: &["log"],
    };

    fn det() -> RaceDetector {
        RaceDetector::new(vec![("a", FP_A), ("b", Footprint::EMPTY)], false)
    }

    #[test]
    fn allows_covers_reads_writes_and_rmw() {
        assert!(FP_A.allows("pool", Access::Read));
        assert!(!FP_A.allows("pool", Access::Write));
        assert!(FP_A.allows("log", Access::Write));
        assert!(FP_A.allows("log", Access::Read)); // write implies read
        assert!(!FP_A.allows("ghost", Access::Read));
        assert!(Footprint::EMPTY.is_write_free());
        assert!(!FP_A.is_write_free());
    }

    #[test]
    fn no_accessor_means_no_recording() {
        let d = det();
        d.begin_members("tick:x", false, 1);
        d.record("log", Access::Write);
        assert_eq!(d.stats(), (0, 0));
        assert!(d.take_error().is_none());
    }

    #[test]
    fn undeclared_access_is_typed_and_named() {
        let d = det();
        d.begin_members("tick:x", false, 7);
        set_accessor("b", 2);
        d.record("log", Access::Write); // b declares nothing
        clear_accessor();
        match d.take_error() {
            Some(SimError::UndeclaredAccess {
                resource,
                accessor,
                cycle,
            }) => {
                assert_eq!(resource, "log");
                assert_eq!(accessor, "b[2]");
                assert_eq!(cycle, 7);
            }
            other => panic!("expected UndeclaredAccess, got {other:?}"),
        }
    }

    #[test]
    fn read_beyond_declared_write_set_is_undeclared() {
        let d = det();
        d.begin_members("tick:x", false, 1);
        set_accessor("a", 0);
        d.record("pool", Access::Write); // declared read-only
        clear_accessor();
        assert!(matches!(
            d.take_error(),
            Some(SimError::UndeclaredAccess { .. })
        ));
    }

    #[test]
    fn sequential_conflicts_are_counted_not_fatal() {
        let d = det();
        d.begin_members("tick:x", false, 1);
        set_accessor("a", 0);
        d.record("log", Access::Write);
        set_accessor("a", 1);
        d.record("log", Access::Write); // cross-member WW, but sequential
        clear_accessor();
        assert!(d.take_error().is_none());
        assert_eq!(d.stats(), (2, 1));
        assert_eq!(d.conflict_sites(), vec![("tick:x", "log", 1)]);
    }

    #[test]
    fn parallel_conflict_is_a_data_race_naming_both_accessors() {
        let d = det();
        d.begin_members("tick:x", true, 9);
        set_accessor("a", 0);
        d.record("log", Access::Write);
        set_accessor("a", 3);
        d.record("log", Access::Write);
        clear_accessor();
        match d.take_error() {
            Some(SimError::DataRace {
                stage,
                resource,
                first,
                second,
                cycle,
            }) => {
                assert_eq!(stage, "tick:x");
                assert_eq!(resource, "log");
                assert!(first.starts_with("a[0]"), "{first}");
                assert_eq!(second, "a[3]");
                assert_eq!(cycle, 9);
            }
            other => panic!("expected DataRace, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_reads_do_not_race() {
        let d = det();
        d.begin_members("tick:x", true, 1);
        set_accessor("a", 0);
        d.record("pool", Access::Read);
        set_accessor("a", 1);
        d.record("pool", Access::Read);
        clear_accessor();
        assert!(d.take_error().is_none());
    }

    #[test]
    fn epoch_bump_retires_prior_pass_records() {
        let d = det();
        d.begin_members("tick:x", true, 1);
        set_accessor("a", 0);
        d.record("log", Access::Write);
        d.begin_members("tick:x", true, 2); // next cycle's pass
        set_accessor("a", 1);
        d.record("log", Access::Write); // ordered after the epoch barrier
        clear_accessor();
        assert!(d.take_error().is_none());
    }

    #[test]
    fn forced_stage_spans_epochs() {
        let d = det();
        d.force_parallel("tick:x");
        d.begin_members("tick:x", false, 1);
        set_accessor("a", 0);
        d.record("log", Access::Write);
        d.begin_members("tick:x", false, 2);
        set_accessor("a", 1);
        d.record("log", Access::Write);
        clear_accessor();
        assert!(matches!(d.take_error(), Some(SimError::DataRace { .. })));
    }

    #[test]
    fn trace_is_bounded_and_gated_on_log_flag() {
        let d = RaceDetector::new(vec![("a", FP_A)], true);
        d.begin_members("tick:x", false, 1);
        set_accessor("a", 0);
        for _ in 0..2 {
            d.record("pool", Access::Read);
        }
        clear_accessor();
        let t = d.take_trace();
        assert_eq!(t.len(), 2);
        assert!(t[0].contains("tick:x a0 R pool"), "{}", t[0]);
        assert!(det().take_trace().is_empty());
    }
}
