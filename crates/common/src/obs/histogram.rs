//! Log-bucketed latency histogram.
//!
//! Values (cycle counts) land in power-of-two octaves refined into four
//! linear sub-buckets each, so any recorded value is reconstructed from its
//! bucket with at most 25 % relative overestimate while the whole `u64`
//! range fits in a fixed 252-slot table. Single-threaded by construction —
//! the simulator ticks one system per thread — so recording is one array
//! increment, no locks, no allocation after construction.

/// 4 linear buckets for values 0–3, then 4 sub-buckets per octave for
/// exponents 2–63.
pub const NUM_BUCKETS: usize = 4 + 62 * 4;

/// Fixed-size log-linear histogram over `u64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for a value: exact below 4, log-linear above.
fn bucket_of(v: u64) -> usize {
    if v < 4 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (exp - 2)) & 3) as usize;
        4 + (exp - 2) * 4 + sub
    }
}

/// Inclusive upper bound of a bucket (what percentiles report).
fn bucket_upper(i: usize) -> u64 {
    if i < 4 {
        i as u64
    } else {
        let exp = 2 + (i - 4) / 4;
        let sub = ((i - 4) % 4) as u64;
        let step = 1u64 << (exp - 2);
        (1u64 << exp) + sub * step + (step - 1)
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Value at quantile `q ∈ [0, 1]`: the upper bound of the bucket holding
    /// the rank-`⌈q·count⌉` sample, clamped to the observed min/max so exact
    /// extremes are exact.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    pub fn p50(&self) -> Option<u64> {
        self.percentile(0.50)
    }

    pub fn p90(&self) -> Option<u64> {
        self.percentile(0.90)
    }

    pub fn p99(&self) -> Option<u64> {
        self.percentile(0.99)
    }

    /// Checkpoint all buckets and summary accumulators.
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        for c in &self.counts {
            w.u64(*c);
        }
        w.u64(self.count);
        w.u64(self.sum);
        w.u64(self.min);
        w.u64(self.max);
    }

    /// Overwrite from a checkpoint stream.
    pub fn restore(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        for c in &mut self.counts {
            *c = r.u64()?;
        }
        self.count = r.u64()?;
        self.sum = r.u64()?;
        self.min = r.u64()?;
        self.max = r.u64()?;
        Ok(())
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_total() {
        let mut last = 0;
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 100, 1 << 20, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= last, "bucket order broken at {v}");
            assert!(b < NUM_BUCKETS);
            assert!(bucket_upper(b) >= v, "upper bound below value {v}");
            last = b;
        }
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.25), Some(0));
        assert_eq!(h.percentile(1.0), Some(3));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(3));
    }

    #[test]
    fn percentiles_of_uniform_distribution() {
        // 1..=1000 uniformly: p50 ≈ 500, p90 ≈ 900, p99 ≈ 990, each
        // overestimated by at most the 25 % bucket width.
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean().unwrap() - 500.5).abs() < 1e-9);
        let p50 = h.p50().unwrap();
        assert!((500..=625).contains(&p50), "p50 = {p50}");
        let p90 = h.p90().unwrap();
        assert!((900..=1000).contains(&p90), "p90 = {p90}");
        let p99 = h.p99().unwrap();
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.percentile(1.0), Some(1000), "max is exact");
    }

    #[test]
    fn empty_histogram_yields_none() {
        let h = Histogram::new();
        assert_eq!(h.p50(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn merge_combines_populations() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=500u64 {
            a.record(v);
        }
        for v in 501..=1000u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(1000));
        let p50 = a.p50().unwrap();
        assert!((500..=625).contains(&p50), "p50 = {p50}");
    }
}
