//! Protocol event recording: the single tracing substrate.
//!
//! A [`TraceEvent`] is one packet observed at one of the system's routing
//! sites; an [`EventRing`] is a bounded recorder of them. The Fig. 2
//! walkthrough tracer (`ndp-core`), the transaction-latency tracker and the
//! Chrome-trace exporter all consume this one event stream — there is no
//! second tracing path.

use serde::Serialize;

use crate::ids::{Cycle, Node, OffloadToken};
use crate::packet::Packet;

/// Where in the system a packet was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceSite {
    /// Ejected from an SM into the on-die interconnect.
    SmEject,
    /// Delivered up a GPU link into a stack's logic layer.
    GpuLinkUp,
    /// Handed from a stack's logic layer to its NSU.
    ToNsu,
    /// Emitted by an NSU back into its stack.
    FromNsu,
    /// Delivered down a GPU link to the GPU.
    GpuLinkDown,
}

impl TraceSite {
    pub fn name(&self) -> &'static str {
        match self {
            TraceSite::SmEject => "SM→icnt",
            TraceSite::GpuLinkUp => "link↑→HMC",
            TraceSite::ToNsu => "xbar→NSU",
            TraceSite::FromNsu => "NSU→xbar",
            TraceSite::GpuLinkDown => "link↓→GPU",
        }
    }

    /// ASCII identifier (Chrome-trace thread names, JSON keys).
    pub fn key(&self) -> &'static str {
        match self {
            TraceSite::SmEject => "sm_eject",
            TraceSite::GpuLinkUp => "gpu_link_up",
            TraceSite::ToNsu => "to_nsu",
            TraceSite::FromNsu => "from_nsu",
            TraceSite::GpuLinkDown => "gpu_link_down",
        }
    }

    /// Stable small index (Chrome-trace `tid` lanes).
    pub fn index(&self) -> u32 {
        match self {
            TraceSite::SmEject => 0,
            TraceSite::GpuLinkUp => 1,
            TraceSite::ToNsu => 2,
            TraceSite::FromNsu => 3,
            TraceSite::GpuLinkDown => 4,
        }
    }

    pub const ALL: [TraceSite; 5] = [
        TraceSite::SmEject,
        TraceSite::GpuLinkUp,
        TraceSite::ToNsu,
        TraceSite::FromNsu,
        TraceSite::GpuLinkDown,
    ];
}

/// One observed packet movement.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceEvent {
    pub cycle: Cycle,
    pub site: TraceSite,
    pub src: Node,
    pub dst: Node,
    pub size: u32,
    pub kind: &'static str,
    /// Offload token, for NDP-protocol packets.
    pub token: Option<OffloadToken>,
}

/// Bounded event recorder (disabled ⇒ zero overhead beyond a branch).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventRing {
    events: Vec<TraceEvent>,
    limit: usize,
}

impl EventRing {
    pub fn disabled() -> Self {
        EventRing::default()
    }

    pub fn with_limit(limit: usize) -> Self {
        EventRing {
            events: Vec::with_capacity(limit.min(4096)),
            limit,
        }
    }

    #[inline]
    pub fn is_on(&self) -> bool {
        self.limit > 0 && self.events.len() < self.limit
    }

    #[inline]
    pub fn record(&mut self, cycle: Cycle, site: TraceSite, p: &Packet) {
        if !self.is_on() {
            return;
        }
        self.events.push(TraceEvent {
            cycle,
            site,
            src: p.src,
            dst: p.dst,
            size: p.size,
            kind: Packet::KIND_NAMES[p.kind_index()],
            token: p.token(),
        });
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// All events belonging to one offload-block instance, in order.
    pub fn instance(&self, token: OffloadToken) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.token == Some(token))
            .collect()
    }

    /// The first offload token observed, if any.
    pub fn first_token(&self) -> Option<OffloadToken> {
        self.events.iter().find_map(|e| e.token)
    }

    /// Checkpoint the limit and recorded events. `kind` is transported as
    /// its [`Packet::kind_index`] so restore can re-point it at the static
    /// [`Packet::KIND_NAMES`] entry; `site` by its stable index.
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.usize(self.limit);
        w.len(self.events.len());
        for e in &self.events {
            w.u64(e.cycle);
            w.u8(e.site.index() as u8);
            e.src.snap(w);
            e.dst.snap(w);
            w.u32(e.size);
            let ki = Packet::KIND_NAMES
                .iter()
                .position(|&n| n == e.kind)
                .expect("event kind is a KIND_NAMES entry");
            w.u8(ki as u8);
            w.bool(e.token.is_some());
            w.u64(e.token.map_or(0, |t| t.0));
        }
    }

    /// Rebuild a ring from a checkpoint stream.
    pub fn restore(
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<EventRing, crate::snap::SnapError> {
        let limit = r.usize()?;
        let n = r.len()?;
        let mut events = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let cycle = r.u64()?;
            let si = r.u8()? as usize;
            let site = *TraceSite::ALL
                .get(si)
                .ok_or_else(|| crate::snap::SnapError(format!("unknown TraceSite index {si}")))?;
            let src = Node::restore(r)?;
            let dst = Node::restore(r)?;
            let size = r.u32()?;
            let ki = r.u8()? as usize;
            let kind = *Packet::KIND_NAMES
                .get(ki)
                .ok_or_else(|| crate::snap::SnapError(format!("unknown packet kind index {ki}")))?;
            let present = r.bool()?;
            let tok = r.u64()?;
            events.push(TraceEvent {
                cycle,
                site,
                src,
                dst,
                size,
                kind,
                token: present.then_some(OffloadToken(tok)),
            });
        }
        Ok(EventRing { events, limit })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    #[test]
    fn disabled_ring_records_nothing() {
        let mut r = EventRing::disabled();
        let p = Packet::new(
            Node::Sm(0),
            Node::L2(0),
            0,
            PacketKind::CacheInval { addr: 0 },
        );
        r.record(1, TraceSite::SmEject, &p);
        assert!(r.events().is_empty());
        assert!(!r.is_on());
    }

    #[test]
    fn limit_caps_recording() {
        let mut r = EventRing::with_limit(3);
        let p = Packet::new(
            Node::Sm(0),
            Node::L2(0),
            0,
            PacketKind::CacheInval { addr: 0 },
        );
        for i in 0..10 {
            r.record(i, TraceSite::SmEject, &p);
        }
        assert_eq!(r.events().len(), 3);
    }
}
