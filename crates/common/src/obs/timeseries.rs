//! Bounded fixed-interval time-series sampler.
//!
//! Callers offer one sample per base interval (the system's sampling
//! cadence). The series keeps every accepted sample until its capacity is
//! reached, then halves its resolution — drop every other retained sample,
//! double the accept stride — so memory stays bounded for arbitrarily long
//! runs while the retained samples remain evenly spaced.

/// A bounded, uniformly-spaced series of samples.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    cap: usize,
    /// Accept every `stride`-th offer; doubles on each decimation.
    stride: u64,
    /// Offers remaining to skip before the next accept.
    skip: u64,
    samples: Vec<f64>,
}

impl TimeSeries {
    /// `cap` must be at least 2 (enforced) — a 1-slot series cannot decimate.
    pub fn new(cap: usize) -> Self {
        TimeSeries {
            cap: cap.max(2),
            stride: 1,
            skip: 0,
            samples: Vec::new(),
        }
    }

    /// Offer the sample for the current base interval.
    pub fn offer(&mut self, v: f64) {
        if self.skip > 0 {
            self.skip -= 1;
            return;
        }
        if self.samples.len() >= self.cap {
            let mut i = 0usize;
            self.samples.retain(|_| {
                let keep = i.is_multiple_of(2);
                i += 1;
                keep
            });
            self.stride *= 2;
        }
        self.samples.push(v);
        self.skip = self.stride - 1;
    }

    /// Base intervals between retained samples.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn peak(&self) -> f64 {
        self.samples.iter().copied().fold(0.0f64, f64::max)
    }

    /// Checkpoint stride/skip and the retained samples (bit-exact floats).
    /// `cap` is config-derived and comes from fresh construction on restore.
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.stride);
        w.u64(self.skip);
        w.len(self.samples.len());
        for s in &self.samples {
            w.f64(*s);
        }
    }

    /// Overwrite from a checkpoint stream.
    pub fn restore(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        self.stride = r.u64()?;
        self.skip = r.u64()?;
        self.samples.clear();
        for _ in 0..r.len()? {
            self.samples.push(r.f64()?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_exceeds_cap() {
        let mut ts = TimeSeries::new(64);
        for i in 0..100_000u64 {
            ts.offer(i as f64);
            assert!(ts.len() <= 64, "cap exceeded at offer {i}");
        }
        assert!(ts.stride() > 1, "long run must have decimated");
        // Retained samples stay in offer order.
        let s = ts.samples();
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn short_series_keeps_every_sample() {
        let mut ts = TimeSeries::new(16);
        for i in 0..10 {
            ts.offer(i as f64);
        }
        assert_eq!(ts.stride(), 1);
        assert_eq!(ts.samples(), (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn decimation_keeps_even_spacing() {
        let mut ts = TimeSeries::new(4);
        for i in 0..8 {
            ts.offer(i as f64);
        }
        // After one decimation the series holds every other offer.
        assert_eq!(ts.stride(), 2);
        for w in ts.samples().windows(2) {
            assert_eq!(w[1] - w[0], 2.0, "uneven spacing: {:?}", ts.samples());
        }
    }

    #[test]
    fn peak_tracks_maximum_retained() {
        let mut ts = TimeSeries::new(8);
        for v in [1.0, 9.0, 3.0] {
            ts.offer(v);
        }
        assert_eq!(ts.peak(), 9.0);
    }
}
