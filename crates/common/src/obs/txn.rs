//! Per-offload-transaction lifecycle tracking.
//!
//! Every offload block instance is one transaction, keyed by its
//! [`OffloadToken`] (strictly increasing per SM, never reused). The tracker
//! timestamps the four observable protocol milestones —
//!
//! 1. CMD ejected by the SM (`cmd_issued`),
//! 2. CMD delivered to the target NSU (`cmd_at_nsu`),
//! 3. last RDF data delivered to the NSU (`rdf_at_nsu`),
//! 4. ACK emitted by the NSU (`ack_emitted`) and delivered back to the SM
//!    (`ack_delivered`)
//!
//! — and on completion folds the transaction into per-segment latency
//! histograms: command dispatch, RDF drain, NSU execute, ACK return, and
//! end-to-end round trip.

use std::collections::HashMap;

use crate::ids::{Cycle, OffloadToken};

use super::histogram::Histogram;

#[derive(Debug, Clone, Copy)]
struct Pending {
    issued: Cycle,
    at_nsu: Option<Cycle>,
    last_rdf: Option<Cycle>,
    ack_out: Option<Cycle>,
}

/// Tracks in-flight offload transactions and their segment latencies.
#[derive(Debug, Clone, Default)]
pub struct TxnTracker {
    pending: HashMap<OffloadToken, Pending>,
    /// CMD packets observed leaving an SM.
    pub issued: u64,
    /// ACKs matched back to a tracked CMD.
    pub completed: u64,
    /// ACKs with no matching CMD — a protocol bug if ever nonzero.
    pub orphan_acks: u64,
    /// SM CMD eject → full round trip back at the SM.
    pub end_to_end: Histogram,
    /// SM CMD eject → CMD delivered to the NSU.
    pub cmd_dispatch: Histogram,
    /// CMD at NSU → last RDF data at the NSU (zero for store-only blocks).
    pub rdf_drain: Histogram,
    /// Last RDF (or CMD arrival) → ACK emitted by the NSU.
    pub nsu_execute: Histogram,
    /// ACK emitted → ACK delivered to the SM.
    pub ack_return: Histogram,
}

impl TxnTracker {
    pub fn cmd_issued(&mut self, token: OffloadToken, now: Cycle) {
        self.issued += 1;
        self.pending.insert(
            token,
            Pending {
                issued: now,
                at_nsu: None,
                last_rdf: None,
                ack_out: None,
            },
        );
    }

    pub fn cmd_at_nsu(&mut self, token: OffloadToken, now: Cycle) {
        if let Some(t) = self.pending.get_mut(&token) {
            t.at_nsu = Some(now);
        }
    }

    pub fn rdf_at_nsu(&mut self, token: OffloadToken, now: Cycle) {
        if let Some(t) = self.pending.get_mut(&token) {
            t.last_rdf = Some(now);
        }
    }

    pub fn ack_emitted(&mut self, token: OffloadToken, now: Cycle) {
        if let Some(t) = self.pending.get_mut(&token) {
            t.ack_out = Some(now);
        }
    }

    pub fn ack_delivered(&mut self, token: OffloadToken, now: Cycle) {
        let Some(t) = self.pending.remove(&token) else {
            self.orphan_acks += 1;
            return;
        };
        self.completed += 1;
        self.end_to_end.record(now.saturating_sub(t.issued));
        let at_nsu = t.at_nsu.unwrap_or(t.issued);
        self.cmd_dispatch.record(at_nsu.saturating_sub(t.issued));
        let exec_from = t.last_rdf.unwrap_or(at_nsu);
        self.rdf_drain.record(exec_from.saturating_sub(at_nsu));
        let ack_out = t.ack_out.unwrap_or(now);
        self.nsu_execute.record(ack_out.saturating_sub(exec_from));
        self.ack_return.record(now.saturating_sub(ack_out));
    }

    /// Transactions with a CMD out but no ACK back yet.
    pub fn inflight(&self) -> usize {
        self.pending.len()
    }

    /// Checkpoint the pending map (sorted by token for byte-stable output),
    /// counters, and all five segment histograms.
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        fn opt(w: &mut crate::snap::SnapWriter, v: Option<Cycle>) {
            w.bool(v.is_some());
            w.u64(v.unwrap_or(0));
        }
        let mut pend: Vec<(OffloadToken, Pending)> =
            self.pending.iter().map(|(&t, &p)| (t, p)).collect();
        pend.sort_unstable_by_key(|&(t, _)| t);
        w.len(pend.len());
        for (t, p) in pend {
            w.u64(t.0);
            w.u64(p.issued);
            opt(w, p.at_nsu);
            opt(w, p.last_rdf);
            opt(w, p.ack_out);
        }
        w.u64(self.issued);
        w.u64(self.completed);
        w.u64(self.orphan_acks);
        self.end_to_end.snap(w);
        self.cmd_dispatch.snap(w);
        self.rdf_drain.snap(w);
        self.nsu_execute.snap(w);
        self.ack_return.snap(w);
    }

    /// Overwrite the tracker from a checkpoint stream.
    pub fn restore(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        fn opt(
            r: &mut crate::snap::SnapReader<'_>,
        ) -> Result<Option<Cycle>, crate::snap::SnapError> {
            let present = r.bool()?;
            let v = r.u64()?;
            Ok(present.then_some(v))
        }
        self.pending.clear();
        for _ in 0..r.len()? {
            let t = OffloadToken(r.u64()?);
            let p = Pending {
                issued: r.u64()?,
                at_nsu: opt(r)?,
                last_rdf: opt(r)?,
                ack_out: opt(r)?,
            };
            self.pending.insert(t, p);
        }
        self.issued = r.u64()?;
        self.completed = r.u64()?;
        self.orphan_acks = r.u64()?;
        self.end_to_end.restore(r)?;
        self.cmd_dispatch.restore(r)?;
        self.rdf_drain.restore(r)?;
        self.nsu_execute.restore(r)?;
        self.ack_return.restore(r)
    }

    /// `(name, histogram)` for every segment, report order.
    pub fn segments(&self) -> [(&'static str, &Histogram); 5] {
        [
            ("end_to_end", &self.end_to_end),
            ("cmd_dispatch", &self.cmd_dispatch),
            ("rdf_drain", &self.rdf_drain),
            ("nsu_execute", &self.nsu_execute),
            ("ack_return", &self.ack_return),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_transaction_full_lifecycle() {
        let mut t = TxnTracker::default();
        let tok = OffloadToken(7);
        t.cmd_issued(tok, 100);
        t.cmd_at_nsu(tok, 140);
        t.rdf_at_nsu(tok, 180);
        t.rdf_at_nsu(tok, 220);
        t.ack_emitted(tok, 300);
        t.ack_delivered(tok, 340);
        assert_eq!(t.issued, 1);
        assert_eq!(t.completed, 1);
        assert_eq!(t.inflight(), 0);
        assert_eq!(t.orphan_acks, 0);
        assert_eq!(t.end_to_end.max(), Some(240));
        assert_eq!(t.cmd_dispatch.max(), Some(40));
        assert_eq!(t.rdf_drain.max(), Some(80), "drain ends at the last RDF");
        assert_eq!(t.nsu_execute.max(), Some(80));
        assert_eq!(t.ack_return.max(), Some(40));
    }

    #[test]
    fn store_only_block_has_zero_rdf_drain() {
        let mut t = TxnTracker::default();
        let tok = OffloadToken(1);
        t.cmd_issued(tok, 0);
        t.cmd_at_nsu(tok, 50);
        t.ack_emitted(tok, 90);
        t.ack_delivered(tok, 120);
        assert_eq!(t.rdf_drain.max(), Some(0));
        assert_eq!(t.nsu_execute.max(), Some(40));
    }

    #[test]
    fn orphan_acks_are_counted_not_recorded() {
        let mut t = TxnTracker::default();
        t.ack_delivered(OffloadToken(9), 10);
        assert_eq!(t.orphan_acks, 1);
        assert_eq!(t.completed, 0);
        assert_eq!(t.end_to_end.count(), 0);
    }
}
