//! Performance self-profiling: host wall-time and work attribution for
//! the simulator itself.
//!
//! The protocol-observability layer (the rest of `obs`) sees what the
//! *simulated machine* does; this module sees where the *simulator*
//! spends host time. Every pipeline stage of the fabric reports, each
//! cycle, what it did via [`StageOutcome`]; [`Perf`] folds that into
//! per-stage counters:
//!
//! * `invocations` — the stage ran (its clock gate was open);
//! * `gated` — the stage was skipped by its clock gate;
//! * `idle` — a routing stage ran but moved **zero** packets (the direct
//!   evidence for the event-driven/cycle-skipping rework: an idle tick is
//!   pure overhead an event queue would never pay);
//! * `moved` — packets the stage delivered;
//! * estimated wall time, from a **strided timer**: only every Nth
//!   pipeline pass is timestamped (21 `Instant::now` calls on a sampled
//!   pass, zero otherwise), and the sampled time is scaled back up by the
//!   observed sampling ratio. The hot loop is never timestamped every
//!   cycle.
//!
//! A periodic **heartbeat** snapshots throughput (cycles/sec since the
//! previous beat), the current sim cycle, and routing-stage occupancy —
//! the progress stream a future `ndp-serve` can forward to clients.
//!
//! Everything is off by default and *read-only*: enabling profiling never
//! changes simulated behaviour, and wall-clock readings never feed back
//! into the model. Because wall times are host-dependent, the perf report
//! is excluded from `RunResult`'s `Debug` rendering so golden-determinism
//! byte comparisons are unaffected (see `ndp-core::result`).

use std::collections::VecDeque;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::ids::Cycle;

/// Version stamp of [`PerfReport`]'s serialized form, so downstream
/// tooling (dashboards, `BENCH_core.json` diffing) can evolve. v2 added
/// the `skipped` counter and `skip_frac` from the event-driven core: the
/// per-stage accounting identity is now
/// `invocations + gated + skipped == cycles`. v3 added
/// `sm_ready_occupancy` — per-SM mean ready-set size from the ready-set
/// scheduler (DESIGN.md §15), the direct measure of how much issue-scan
/// work each invoked cycle actually holds.
pub const PERF_SCHEMA_VERSION: u32 = 3;

/// Profiling knobs. `Default` is fully disabled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfConfig {
    pub enabled: bool,
    /// Pipeline passes between wall-clock-sampled passes (the strided
    /// timer). `1` timestamps every pass; larger strides cost less.
    pub stride: u64,
    /// Simulated cycles between heartbeat snapshots (`0` disables).
    pub heartbeat_interval: u64,
    /// Max retained heartbeats (oldest are dropped).
    pub heartbeat_cap: usize,
    /// Print each heartbeat to stderr as it is taken (progress display
    /// for long sweeps; `NDP_PERF_STDERR`).
    pub stderr_heartbeat: bool,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            enabled: false,
            stride: 64,
            heartbeat_interval: 1 << 20,
            heartbeat_cap: 256,
            stderr_heartbeat: false,
        }
    }
}

impl PerfConfig {
    /// Enabled with default stride and heartbeat cadence.
    pub fn on() -> Self {
        PerfConfig {
            enabled: true,
            ..PerfConfig::default()
        }
    }

    /// The `NDP_PERF*` environment surface: `NDP_PERF` turns profiling
    /// on, `NDP_PERF_STRIDE` / `NDP_PERF_HEARTBEAT` / `NDP_PERF_STDERR`
    /// tune it. Malformed values die loudly (typed env policy).
    pub fn from_env() -> Self {
        let mut cfg = PerfConfig {
            enabled: crate::env::flag_or_die("NDP_PERF").unwrap_or(false),
            ..PerfConfig::default()
        };
        if let Some(s) = crate::env::parse_or_die::<u64>("NDP_PERF_STRIDE") {
            cfg.stride = s.max(1);
        }
        if let Some(h) = crate::env::parse_or_die::<u64>("NDP_PERF_HEARTBEAT") {
            cfg.heartbeat_interval = h;
        }
        cfg.stderr_heartbeat = crate::env::flag_or_die("NDP_PERF_STDERR").unwrap_or(false);
        cfg
    }
}

/// What one pipeline stage did in one cycle, reported by the fabric to
/// the profiler (`FabricCtx::stage_done`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageOutcome {
    /// The stage's clock gate was closed; it did not run.
    Gated,
    /// A routing stage ran and moved this many packets. `Routed(0)` is an
    /// **idle tick**: the stage was polled but had no work.
    Routed(u64),
    /// A component-tick or side-channel stage ran.
    Ticked,
    /// The quiescence layer proved the stage had no work at this cycle
    /// and skipped it without invoking it.
    Skipped,
}

/// Live per-stage counters (internal; folded into [`StagePerf`]).
#[derive(Debug, Default, Clone, Copy)]
struct StageCounters {
    invocations: u64,
    gated: u64,
    /// Cycles the quiescence layer proved the stage workless (per-stage
    /// skips plus whole-system next-event jumps).
    skipped: u64,
    idle: u64,
    moved: u64,
    /// Invocations that were routing stages (`idle`'s denominator).
    routed: u64,
    /// Wall nanoseconds accumulated on sampled passes only.
    sampled_wall_ns: u64,
    /// Invocations that fell on a sampled pass.
    timed: u64,
}

/// One periodic telemetry snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Simulated cycle at which the snapshot was taken.
    pub cycle: u64,
    /// Host wall nanoseconds since profiling started.
    pub wall_ns: u64,
    /// Simulated cycles per host second since the previous heartbeat.
    pub cycles_per_sec: f64,
    /// Fraction of routing-stage invocations since the previous heartbeat
    /// that moved at least one packet (1.0 = every polled edge had work;
    /// low values are the cycle-skipping headroom).
    pub route_occupancy: f64,
}

/// The profiler. One branch per hook when disabled.
#[derive(Debug, Clone, Default)]
pub struct Perf {
    cfg: PerfConfig,
    names: Vec<String>,
    stages: Vec<StageCounters>,
    /// Pipeline passes seen (drives the strided timer).
    passes: u64,
    /// Is the current pass wall-clock sampled?
    sampling: bool,
    /// Set on the first pass; all wall times are relative to it.
    start: Option<Instant>,
    /// Timestamp of the previous stage boundary within a sampled pass.
    mark: Option<Instant>,
    heartbeats: VecDeque<Heartbeat>,
    /// Counter snapshot at the previous heartbeat: (cycle, wall_ns,
    /// idle, routed).
    hb_prev: (u64, u64, u64, u64),
    /// Next cycle at (or after) which a heartbeat is due. A watermark
    /// rather than a `now % interval` test: next-event jumps can leap
    /// straight over a boundary, and the beat must then fire on the first
    /// executed cycle past it.
    next_hb: u64,
}

impl Perf {
    /// The zero-cost default: every hook reduces to one branch.
    pub fn disabled() -> Self {
        Perf::default()
    }

    /// A profiler for a pipeline whose stages carry the given display
    /// names (index-aligned with the fabric's stage list).
    pub fn new(cfg: PerfConfig, stage_names: Vec<String>) -> Self {
        let stages = vec![StageCounters::default(); stage_names.len()];
        Perf {
            cfg,
            names: stage_names,
            stages,
            next_hb: cfg.heartbeat_interval,
            ..Perf::default()
        }
    }

    #[inline]
    pub fn is_on(&self) -> bool {
        self.cfg.enabled
    }

    pub fn config(&self) -> &PerfConfig {
        &self.cfg
    }

    /// Start-of-pipeline-pass hook: decides whether this pass is
    /// wall-clock sampled and takes a heartbeat when one is due. Call
    /// once per simulated cycle, before the fabric runs.
    #[inline]
    pub fn cycle_begin(&mut self, now: Cycle) {
        if !self.cfg.enabled {
            return;
        }
        let start = *self.start.get_or_insert_with(Instant::now);
        self.sampling = self.passes.is_multiple_of(self.cfg.stride.max(1));
        self.passes += 1;
        if self.sampling {
            self.mark = Some(Instant::now());
        }
        if self.cfg.heartbeat_interval > 0 && now >= self.next_hb {
            self.heartbeat(now, start);
            // Advance past `now` to the next interval boundary.
            self.next_hb = (now / self.cfg.heartbeat_interval + 1) * self.cfg.heartbeat_interval;
        }
    }

    /// Per-stage attribution hook: counters always (integer adds), wall
    /// time only on sampled passes.
    #[inline]
    pub fn stage(&mut self, idx: usize, outcome: StageOutcome) {
        if !self.cfg.enabled {
            return;
        }
        let c = &mut self.stages[idx];
        match outcome {
            // A gate skip costs ~nothing on the host; it is counted but
            // never timestamped (its time folds into the next stage).
            StageOutcome::Gated => {
                c.gated += 1;
                return;
            }
            // A quiescence skip is, like a gate skip, never timestamped:
            // its whole point is to cost nothing.
            StageOutcome::Skipped => {
                c.skipped += 1;
                return;
            }
            StageOutcome::Routed(n) => {
                c.invocations += 1;
                c.routed += 1;
                c.moved += n;
                if n == 0 {
                    c.idle += 1;
                }
            }
            StageOutcome::Ticked => c.invocations += 1,
        }
        if self.sampling {
            if let Some(mark) = self.mark {
                let t = Instant::now();
                let c = &mut self.stages[idx];
                c.sampled_wall_ns += t.duration_since(mark).as_nanos() as u64;
                c.timed += 1;
                self.mark = Some(t);
            }
        }
    }

    /// Account a next-event time jump for one stage: `gated` cycles were
    /// leapt over with the stage's clock gate closed, `skipped` with it
    /// open but provably workless. Keeps the per-stage identity
    /// `invocations + gated + skipped == cycles` exact across jumps.
    #[inline]
    pub fn jump(&mut self, idx: usize, gated: u64, skipped: u64) {
        if !self.cfg.enabled {
            return;
        }
        let c = &mut self.stages[idx];
        c.gated += gated;
        c.skipped += skipped;
    }

    fn heartbeat(&mut self, now: Cycle, start: Instant) {
        let wall_ns = start.elapsed().as_nanos() as u64;
        let idle: u64 = self.stages.iter().map(|c| c.idle).sum();
        let routed: u64 = self.stages.iter().map(|c| c.routed).sum();
        let (p_cycle, p_wall, p_idle, p_routed) = self.hb_prev;
        let d_wall = wall_ns.saturating_sub(p_wall);
        let cycles_per_sec = if d_wall > 0 {
            (now - p_cycle) as f64 * 1e9 / d_wall as f64
        } else {
            0.0
        };
        let d_routed = routed - p_routed;
        let route_occupancy = if d_routed > 0 {
            1.0 - (idle - p_idle) as f64 / d_routed as f64
        } else {
            0.0
        };
        let hb = Heartbeat {
            cycle: now,
            wall_ns,
            cycles_per_sec,
            route_occupancy,
        };
        if self.cfg.stderr_heartbeat {
            eprintln!(
                "[perf] cycle {now}: {cycles_per_sec:.0} cycles/s, \
                 route occupancy {route_occupancy:.3}"
            );
        }
        if self.heartbeats.len() >= self.cfg.heartbeat_cap.max(1) {
            self.heartbeats.pop_front();
        }
        self.heartbeats.push_back(hb);
        self.hb_prev = (now, wall_ns, idle, routed);
    }

    /// Fold the live counters into a serializable report. `cycles` is the
    /// total simulated-cycle count of the run.
    pub fn report(&self, cycles: u64) -> PerfReport {
        let wall_ns = self
            .start
            .map(|s| s.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        let stages: Vec<StagePerf> = self
            .names
            .iter()
            .zip(self.stages.iter())
            .map(|(name, c)| {
                // Scale the sampled time back up by the realized sampling
                // ratio (robust even when the stride misses gated cycles).
                let est_wall_ns = if c.timed > 0 {
                    (c.sampled_wall_ns as f64 * c.invocations as f64 / c.timed as f64) as u64
                } else {
                    0
                };
                let total = c.invocations + c.gated + c.skipped;
                StagePerf {
                    name: name.clone(),
                    invocations: c.invocations,
                    gated: c.gated,
                    skipped: c.skipped,
                    idle: c.idle,
                    moved: c.moved,
                    routed: c.routed,
                    est_wall_ns,
                    idle_frac: if c.routed > 0 {
                        c.idle as f64 / c.routed as f64
                    } else {
                        0.0
                    },
                    skip_frac: if total > 0 {
                        c.skipped as f64 / total as f64
                    } else {
                        0.0
                    },
                    wall_frac: 0.0, // filled below once the total is known
                }
            })
            .collect();
        let total_est: u64 = stages.iter().map(|s| s.est_wall_ns).sum();
        let mut stages = stages;
        if total_est > 0 {
            for s in &mut stages {
                s.wall_frac = s.est_wall_ns as f64 / total_est as f64;
            }
        }
        PerfReport {
            schema_version: PERF_SCHEMA_VERSION,
            cycles,
            wall_ns,
            cycles_per_sec: if wall_ns > 0 {
                cycles as f64 * 1e9 / wall_ns as f64
            } else {
                0.0
            },
            sample_stride: self.cfg.stride,
            timed_passes: self.passes.div_ceil(self.cfg.stride.max(1)),
            stages,
            heartbeats: self.heartbeats.iter().copied().collect(),
            sm_ready_occupancy: Vec::new(),
        }
    }
}

/// Per-stage slice of a [`PerfReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagePerf {
    pub name: String,
    pub invocations: u64,
    pub gated: u64,
    /// Cycles the quiescence layer skipped this stage (stage-level skips
    /// plus next-event jumps with the stage's gate open).
    pub skipped: u64,
    /// Routing-stage invocations that moved nothing.
    pub idle: u64,
    pub moved: u64,
    /// Routing-stage invocations (`idle`'s denominator; 0 for tick/side
    /// stages).
    pub routed: u64,
    /// Estimated total host wall time (sampled time × sampling ratio).
    pub est_wall_ns: u64,
    /// `idle / routed` (0 when the stage never routed).
    pub idle_frac: f64,
    /// `skipped / (invocations + gated + skipped)` — the fraction of
    /// simulated cycles the event-driven core never touched this stage.
    pub skip_frac: f64,
    /// Share of the total estimated stage wall time.
    pub wall_frac: f64,
}

/// The serializable self-profiling outcome of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    pub schema_version: u32,
    /// Simulated cycles covered.
    pub cycles: u64,
    /// Host wall nanoseconds from the first profiled cycle to report time.
    pub wall_ns: u64,
    /// Whole-run throughput: simulated cycles per host second.
    pub cycles_per_sec: f64,
    /// Strided-timer stride the estimates were sampled at.
    pub sample_stride: u64,
    /// Pipeline passes that were wall-clock sampled.
    pub timed_passes: u64,
    pub stages: Vec<StagePerf>,
    pub heartbeats: Vec<Heartbeat>,
    /// Mean ready-set size per SM over its invoked issue cycles (index =
    /// SM id): how many warps were actual issue candidates when the
    /// scheduler ran. Filled by the simulator core after the run (the
    /// profiler itself never inspects components); empty when the model
    /// has no SMs or profiling predates v3.
    #[serde(default)]
    pub sm_ready_occupancy: Vec<f64>,
}

impl PerfReport {
    pub fn stage(&self, name: &str) -> Option<&StagePerf> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Chrome trace-event JSON of the perf lane (open in Perfetto
    /// alongside the protocol trace).
    pub fn chrome_trace_json(&self) -> String {
        super::chrome::perf_chrome_trace_json(self)
    }

    /// Human-readable per-stage attribution table.
    pub fn table_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "simulator self-profile: {} cycles in {:.3} s host time — {:.0} cycles/sec \
             (strided timer: every {} passes)\n",
            self.cycles,
            self.wall_ns as f64 / 1e9,
            self.cycles_per_sec,
            self.sample_stride
        ));
        out.push_str(
            "stage                    invoked     gated   skipped  skip%      idle  idle%      moved  est ms  wall%\n",
        );
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<22} {:>8} {:>9} {:>9} {:>5.1} {:>9} {:>5.1} {:>10} {:>7.1} {:>5.1}\n",
                s.name,
                s.invocations,
                s.gated,
                s.skipped,
                s.skip_frac * 100.0,
                s.idle,
                s.idle_frac * 100.0,
                s.moved,
                s.est_wall_ns as f64 / 1e6,
                s.wall_frac * 100.0
            ));
        }
        if !self.sm_ready_occupancy.is_empty() {
            let n = self.sm_ready_occupancy.len();
            let mean: f64 = self.sm_ready_occupancy.iter().sum::<f64>() / n as f64;
            let max = self
                .sm_ready_occupancy
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            out.push_str(&format!(
                "sm ready-set occupancy: mean {mean:.2} warps over {n} SMs (max {max:.2}) \
                 per invoked issue cycle\n"
            ));
        }
        if let Some(hb) = self.heartbeats.last() {
            out.push_str(&format!(
                "last heartbeat: cycle {}, {:.0} cycles/s, route occupancy {:.3} \
                 ({} heartbeats retained)\n",
                hb.cycle,
                hb.cycles_per_sec,
                hb.route_occupancy,
                self.heartbeats.len()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf(cfg: PerfConfig) -> Perf {
        Perf::new(
            cfg,
            vec![
                "tick:toy".to_string(),
                "edge:toy".to_string(),
                "side:toy".to_string(),
            ],
        )
    }

    #[test]
    fn disabled_perf_records_nothing() {
        let mut p = Perf::disabled();
        assert!(!p.is_on());
        p.cycle_begin(0);
        p.stage(0, StageOutcome::Routed(3));
        let r = p.report(100);
        assert!(r.stages.is_empty());
        assert_eq!(r.cycles, 100);
        assert_eq!(r.wall_ns, 0);
    }

    #[test]
    fn idle_tick_accounting() {
        // A stage that moves nothing must count as idle, not active.
        let mut p = perf(PerfConfig::on());
        p.cycle_begin(0);
        p.stage(1, StageOutcome::Routed(0));
        p.cycle_begin(1);
        p.stage(1, StageOutcome::Routed(4));
        p.cycle_begin(2);
        p.stage(1, StageOutcome::Gated);
        p.cycle_begin(3);
        p.stage(0, StageOutcome::Ticked);
        let r = p.report(4);
        let edge = r.stage("edge:toy").unwrap();
        assert_eq!(edge.invocations, 2, "gated does not count as invoked");
        assert_eq!(edge.idle, 1, "Routed(0) is an idle tick");
        assert_eq!(edge.gated, 1);
        assert_eq!(edge.moved, 4);
        assert_eq!(edge.routed, 2);
        assert!((edge.idle_frac - 0.5).abs() < 1e-12);
        let tick = r.stage("tick:toy").unwrap();
        assert_eq!(tick.invocations, 1);
        assert_eq!(tick.idle, 0, "tick stages are never idle-counted");
        assert_eq!(tick.idle_frac, 0.0);
    }

    #[test]
    fn strided_timer_samples_every_nth_pass() {
        let mut cfg = PerfConfig::on();
        cfg.stride = 4;
        let mut p = perf(cfg);
        for now in 0..8u64 {
            p.cycle_begin(now);
            p.stage(0, StageOutcome::Ticked);
        }
        // Passes 0 and 4 were sampled.
        assert_eq!(p.stages[0].timed, 2);
        assert_eq!(p.stages[0].invocations, 8);
        let r = p.report(8);
        let s = r.stage("tick:toy").unwrap();
        // The estimate is scaled by the realized sampling ratio (8/2).
        assert!(s.est_wall_ns >= 4 * p.stages[0].sampled_wall_ns);
    }

    #[test]
    fn heartbeats_snapshot_throughput_and_occupancy() {
        let mut cfg = PerfConfig::on();
        cfg.heartbeat_interval = 10;
        cfg.heartbeat_cap = 2;
        let mut p = perf(cfg);
        for now in 0..35u64 {
            p.cycle_begin(now);
            // Edge stage busy 1 cycle in 5.
            p.stage(1, StageOutcome::Routed(u64::from(now % 5 == 0)));
        }
        let r = p.report(35);
        assert_eq!(r.heartbeats.len(), 2, "cap drops the oldest beat");
        let hb = r.heartbeats.last().unwrap();
        assert_eq!(hb.cycle, 30);
        assert!(hb.cycles_per_sec > 0.0);
        assert!(hb.route_occupancy > 0.0 && hb.route_occupancy < 0.5);
    }

    #[test]
    fn skipped_cycles_account_exactly() {
        // Per-stage skips and next-event jumps both land in `skipped`, and
        // the identity invocations + gated + skipped == cycles holds.
        let mut p = perf(PerfConfig::on());
        p.cycle_begin(0);
        p.stage(0, StageOutcome::Ticked);
        p.stage(1, StageOutcome::Routed(2));
        p.stage(2, StageOutcome::Gated);
        p.cycle_begin(1);
        p.stage(0, StageOutcome::Skipped);
        p.stage(1, StageOutcome::Skipped);
        p.stage(2, StageOutcome::Gated);
        // A jump over cycles 2..10: stage 2's gate stayed closed for 5 of
        // the 8 cycles, open-and-workless for 3.
        for idx in 0..2 {
            p.jump(idx, 0, 8);
        }
        p.jump(2, 5, 3);
        let r = p.report(10);
        for s in &r.stages {
            assert_eq!(
                s.invocations + s.gated + s.skipped,
                10,
                "{}: identity broken",
                s.name
            );
        }
        let tick = r.stage("tick:toy").unwrap();
        assert_eq!(tick.skipped, 9);
        assert!((tick.skip_frac - 0.9).abs() < 1e-12);
        let side = r.stage("side:toy").unwrap();
        assert_eq!((side.gated, side.skipped), (7, 3));
        let table = r.table_text();
        assert!(table.contains("skip%"), "{table}");
    }

    #[test]
    fn heartbeat_fires_after_a_jump_over_the_boundary() {
        let mut cfg = PerfConfig::on();
        cfg.heartbeat_interval = 10;
        let mut p = perf(cfg);
        p.cycle_begin(0);
        // Jump straight over the cycle-10 boundary; the first executed
        // cycle after it must carry the beat.
        p.cycle_begin(17);
        p.cycle_begin(18);
        let r = p.report(19);
        assert_eq!(r.heartbeats.len(), 1);
        assert_eq!(r.heartbeats[0].cycle, 17);
    }

    #[test]
    fn report_is_versioned_and_serializable() {
        let mut p = perf(PerfConfig::on());
        p.cycle_begin(0);
        p.stage(1, StageOutcome::Routed(2));
        let mut r = p.report(1);
        r.sm_ready_occupancy = vec![1.5, 0.25];
        assert_eq!(r.schema_version, PERF_SCHEMA_VERSION);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"schema_version\":3"));
        let back: PerfReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.stages.len(), 3);
        assert_eq!(back.sm_ready_occupancy, vec![1.5, 0.25]);
        assert!(
            r.table_text().contains("ready-set occupancy"),
            "{}",
            r.table_text()
        );
        // v2 reports (no occupancy field) still deserialize.
        let v2 = json.replace(",\"sm_ready_occupancy\":[1.5,0.25]", "");
        let old: PerfReport = serde_json::from_str(&v2).unwrap();
        assert!(old.sm_ready_occupancy.is_empty());
    }
}
