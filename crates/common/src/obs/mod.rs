//! Unified simulator observability.
//!
//! One layer provides everything the figure drivers and performance work
//! need to see *inside* a run instead of just its scalar totals:
//!
//! * [`Histogram`] — log-bucketed latency distribution (p50/p90/p99/max);
//! * [`TimeSeries`] — bounded fixed-interval occupancy sampler;
//! * [`TxnTracker`] — per-offload-transaction lifecycle latencies keyed by
//!   `OffloadToken` (CMD issue → RDF drain → NSU execute → ACK return);
//! * [`EventRing`] — the single protocol-event stream (also backs the
//!   Fig. 2 walkthrough tracer in `ndp-core`);
//! * [`ObsReport`] — the serializable outcome, with Chrome trace-event JSON
//!   ([`ObsReport::chrome_trace_json`], loadable in Perfetto) and a flat
//!   metrics document ([`ObsReport::metrics_json`]);
//! * [`perf`] — the simulator's *self*-profile: per-pipeline-stage host
//!   wall-time and idle-tick attribution, throughput heartbeats, and its
//!   own Perfetto lane (`NDP_PERF`).
//!
//! Everything is gated behind [`ObsConfig`], **off by default**: a disabled
//! [`Obs`] costs one branch per hook, records nothing, and leaves every
//! simulation result bit-identical to an uninstrumented run.

pub mod chrome;
pub mod event;
pub mod histogram;
pub mod perf;
pub mod timeseries;
pub mod txn;

pub use event::{EventRing, TraceEvent, TraceSite};
pub use histogram::Histogram;
pub use perf::{Perf, PerfConfig, PerfReport, StageOutcome, StagePerf};
pub use timeseries::TimeSeries;
pub use txn::TxnTracker;

use serde::{Deserialize, Serialize};

use crate::ids::Cycle;
use crate::packet::{Packet, PacketKind};

/// Observability knobs. `Default` is fully disabled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObsConfig {
    pub enabled: bool,
    /// Cycles between occupancy samples.
    pub sample_interval: u64,
    /// Max retained samples per time series (older data decimates).
    pub timeseries_cap: usize,
    /// Max retained protocol events for trace export.
    pub event_cap: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            sample_interval: 512,
            timeseries_cap: 512,
            event_cap: 16384,
        }
    }
}

impl ObsConfig {
    /// Enabled with default cadence and caps.
    pub fn on() -> Self {
        ObsConfig {
            enabled: true,
            ..ObsConfig::default()
        }
    }
}

/// Live observability state for one simulated system.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    cfg: ObsConfig,
    pub txns: TxnTracker,
    pub events: EventRing,
    series: Vec<(&'static str, TimeSeries)>,
}

impl Obs {
    /// The zero-cost default: every hook reduces to one branch.
    pub fn disabled() -> Self {
        Obs::default()
    }

    pub fn new(cfg: ObsConfig) -> Self {
        let events = if cfg.enabled {
            EventRing::with_limit(cfg.event_cap)
        } else {
            EventRing::disabled()
        };
        Obs {
            cfg,
            txns: TxnTracker::default(),
            events,
            series: Vec::new(),
        }
    }

    #[inline]
    pub fn is_on(&self) -> bool {
        self.cfg.enabled
    }

    pub fn config(&self) -> &ObsConfig {
        &self.cfg
    }

    /// Is an occupancy sample due this cycle?
    #[inline]
    pub fn sample_due(&self, now: Cycle) -> bool {
        self.cfg.enabled && now.is_multiple_of(self.cfg.sample_interval.max(1))
    }

    /// Earliest cycle at or after `now` with a sample due — the quiescence
    /// horizon of the sampling side-channel. `None` when sampling is off.
    pub fn next_sample_at(&self, now: Cycle) -> Option<Cycle> {
        if !self.cfg.enabled {
            return None;
        }
        Some(now.next_multiple_of(self.cfg.sample_interval.max(1)))
    }

    /// Offer one occupancy sample to the named series (created on first
    /// use). Call once per series per due cycle.
    pub fn offer_sample(&mut self, name: &'static str, v: f64) {
        if !self.cfg.enabled {
            return;
        }
        match self.series.iter_mut().find(|(n, _)| *n == name) {
            Some((_, ts)) => ts.offer(v),
            None => {
                let mut ts = TimeSeries::new(self.cfg.timeseries_cap);
                ts.offer(v);
                self.series.push((name, ts));
            }
        }
    }

    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, ts)| ts)
    }

    /// Record a packet observed at a routing site: feeds both the event
    /// ring and the transaction tracker.
    #[inline]
    pub fn on_packet(&mut self, now: Cycle, site: TraceSite, p: &Packet) {
        if !self.cfg.enabled {
            return;
        }
        self.events.record(now, site, p);
        match (site, &p.kind) {
            (TraceSite::SmEject, PacketKind::OffloadCmd { token, .. }) => {
                self.txns.cmd_issued(*token, now)
            }
            (TraceSite::ToNsu, PacketKind::OffloadCmd { token, .. }) => {
                self.txns.cmd_at_nsu(*token, now)
            }
            // RDF data reaches the NSU as RdfResp (DRAM reads) or as an Rdf
            // packet carrying GPU-cached data (§7.1).
            (TraceSite::ToNsu, PacketKind::RdfResp { token, .. })
            | (TraceSite::ToNsu, PacketKind::Rdf { token, .. }) => {
                self.txns.rdf_at_nsu(*token, now)
            }
            (TraceSite::FromNsu, PacketKind::OffloadAck { token, .. }) => {
                self.txns.ack_emitted(*token, now)
            }
            (TraceSite::GpuLinkDown, PacketKind::OffloadAck { token, .. }) => {
                self.txns.ack_delivered(*token, now)
            }
            _ => {}
        }
    }

    /// Checkpoint the config, transaction tracker, event ring, and
    /// occupancy series.
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.bool(self.cfg.enabled);
        w.u64(self.cfg.sample_interval);
        w.usize(self.cfg.timeseries_cap);
        w.usize(self.cfg.event_cap);
        self.txns.snap(w);
        self.events.snap(w);
        w.len(self.series.len());
        for (name, ts) in &self.series {
            w.str(name);
            ts.snap(w);
        }
    }

    /// Rebuild the observability layer from a checkpoint stream. Series
    /// names created at runtime are interned with `Box::leak` — a handful
    /// of short strings per restore, matching the `&'static str` keys the
    /// live sampler uses.
    pub fn restore(r: &mut crate::snap::SnapReader<'_>) -> Result<Obs, crate::snap::SnapError> {
        let cfg = ObsConfig {
            enabled: r.bool()?,
            sample_interval: r.u64()?,
            timeseries_cap: r.usize()?,
            event_cap: r.usize()?,
        };
        let mut txns = TxnTracker::default();
        txns.restore(r)?;
        let events = EventRing::restore(r)?;
        let n = r.len()?;
        let mut series = Vec::with_capacity(n);
        for _ in 0..n {
            let name: &'static str = Box::leak(r.str()?.into_boxed_str());
            let mut ts = TimeSeries::new(cfg.timeseries_cap);
            ts.restore(r)?;
            series.push((name, ts));
        }
        Ok(Obs {
            cfg,
            txns,
            events,
            series,
        })
    }

    /// Fold the live state into a serializable report.
    pub fn report(&self) -> ObsReport {
        ObsReport {
            sample_interval: self.cfg.sample_interval,
            txn_issued: self.txns.issued,
            txn_completed: self.txns.completed,
            txn_inflight: self.txns.inflight() as u64,
            orphan_acks: self.txns.orphan_acks,
            latency: self
                .txns
                .segments()
                .iter()
                .map(|(name, h)| SegmentLatency {
                    segment: name.to_string(),
                    latency: HistogramSummary::of(h),
                })
                .collect(),
            series: self
                .series
                .iter()
                .map(|(name, ts)| SeriesReport {
                    name: name.to_string(),
                    interval_cycles: self.cfg.sample_interval * ts.stride(),
                    samples: ts.samples().to_vec(),
                })
                .collect(),
            events: self.events.events().to_vec(),
        }
    }
}

/// Percentile summary of one [`Histogram`] (all zero when empty).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub mean: f64,
    pub min: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

impl HistogramSummary {
    pub fn of(h: &Histogram) -> Self {
        HistogramSummary {
            count: h.count(),
            mean: h.mean().unwrap_or(0.0),
            min: h.min().unwrap_or(0),
            p50: h.p50().unwrap_or(0),
            p90: h.p90().unwrap_or(0),
            p99: h.p99().unwrap_or(0),
            max: h.max().unwrap_or(0),
        }
    }
}

/// One named latency segment of the offload round trip.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SegmentLatency {
    pub segment: String,
    pub latency: HistogramSummary,
}

/// One named occupancy series.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SeriesReport {
    pub name: String,
    /// Cycles between retained samples (base interval × decimation stride).
    pub interval_cycles: u64,
    pub samples: Vec<f64>,
}

/// The serializable observability outcome of one run.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct ObsReport {
    pub sample_interval: u64,
    pub txn_issued: u64,
    pub txn_completed: u64,
    pub txn_inflight: u64,
    pub orphan_acks: u64,
    pub latency: Vec<SegmentLatency>,
    pub series: Vec<SeriesReport>,
    pub events: Vec<TraceEvent>,
}

impl ObsReport {
    pub fn segment(&self, name: &str) -> Option<&HistogramSummary> {
        self.latency
            .iter()
            .find(|s| s.segment == name)
            .map(|s| &s.latency)
    }

    pub fn find_series(&self, name: &str) -> Option<&SeriesReport> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Chrome trace-event JSON (open in Perfetto / `chrome://tracing`).
    pub fn chrome_trace_json(&self) -> String {
        chrome::chrome_trace_json(self)
    }

    /// Flat metrics document (hand-rolled JSON; no serializer required).
    pub fn metrics_json(&self) -> String {
        chrome::metrics_json(self)
    }

    /// Human-readable summary for terminal output.
    pub fn summary_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "offload transactions: {} issued, {} completed, {} in flight, {} orphan ACKs\n",
            self.txn_issued, self.txn_completed, self.txn_inflight, self.orphan_acks
        ));
        out.push_str(
            "latency (cycles)        count      mean       p50       p90       p99       max\n",
        );
        for s in &self.latency {
            let l = &s.latency;
            out.push_str(&format!(
                "  {:<20} {:>8} {:>9.1} {:>9} {:>9} {:>9} {:>9}\n",
                s.segment, l.count, l.mean, l.p50, l.p90, l.p99, l.max
            ));
        }
        out.push_str("occupancy series              samples  interval      last      peak\n");
        for s in &self.series {
            let last = s.samples.last().copied().unwrap_or(0.0);
            let peak = s.samples.iter().copied().fold(0.0f64, f64::max);
            out.push_str(&format!(
                "  {:<26} {:>9} {:>9} {:>9.1} {:>9.1}\n",
                s.name,
                s.samples.len(),
                s.interval_cycles,
                last,
                peak
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Node, OffloadId, OffloadToken};

    fn cmd(token: u64) -> Packet {
        Packet::new(
            Node::Sm(0),
            Node::Nsu(1),
            0,
            PacketKind::OffloadCmd {
                token: OffloadToken(token),
                id: OffloadId {
                    sm: 0,
                    warp: 0,
                    seq: 0,
                },
                nsu_pc: 0,
                regs_in: 0,
                active: 32,
                mask: u32::MAX,
                n_loads: 1,
                n_stores: 0,
            },
        )
    }

    fn ack(token: u64) -> Packet {
        Packet::new(
            Node::Nsu(1),
            Node::Sm(0),
            0,
            PacketKind::OffloadAck {
                token: OffloadToken(token),
                id: OffloadId {
                    sm: 0,
                    warp: 0,
                    seq: 0,
                },
                regs_out: 0,
                active: 32,
                values: vec![],
            },
        )
    }

    #[test]
    fn disabled_obs_records_nothing() {
        let mut o = Obs::disabled();
        assert!(!o.is_on());
        assert!(!o.sample_due(0));
        o.on_packet(1, TraceSite::SmEject, &cmd(1));
        o.offer_sample("q", 3.0);
        assert_eq!(o.txns.issued, 0);
        assert!(o.events.events().is_empty());
        assert!(o.series("q").is_none());
    }

    #[test]
    fn packet_hooks_drive_transactions() {
        let mut o = Obs::new(ObsConfig::on());
        o.on_packet(10, TraceSite::SmEject, &cmd(5));
        o.on_packet(30, TraceSite::ToNsu, &cmd(5));
        o.on_packet(90, TraceSite::FromNsu, &ack(5));
        o.on_packet(120, TraceSite::GpuLinkDown, &ack(5));
        assert_eq!(o.txns.issued, 1);
        assert_eq!(o.txns.completed, 1);
        assert_eq!(o.txns.end_to_end.max(), Some(110));
        assert_eq!(o.events.events().len(), 4);
    }

    #[test]
    fn report_round_trip() {
        let mut o = Obs::new(ObsConfig::on());
        o.on_packet(0, TraceSite::SmEject, &cmd(1));
        o.on_packet(64, TraceSite::GpuLinkDown, &ack(1));
        o.offer_sample("sm_ndp_pending", 2.0);
        o.offer_sample("sm_ndp_pending", 5.0);
        let r = o.report();
        assert_eq!(r.txn_issued, 1);
        assert_eq!(r.txn_completed, 1);
        assert_eq!(r.segment("end_to_end").unwrap().max, 64);
        let s = r.find_series("sm_ndp_pending").unwrap();
        assert_eq!(s.samples, vec![2.0, 5.0]);
        assert!(r.summary_text().contains("end_to_end"));
    }
}
