//! Trace and metrics exporters.
//!
//! [`chrome_trace_json`] renders an [`ObsReport`] as Chrome trace-event
//! JSON — the `{"traceEvents": [...]}` format that Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing` load directly.
//! Protocol events become instant events on one thread lane per routing
//! site; occupancy series become counter tracks. Timestamps are in
//! simulated SM cycles, mapped 1 cycle = 1 µs of trace time.
//!
//! [`metrics_json`] renders the same report as a flat JSON document. Both
//! are hand-rolled (the report holds only numbers and static names), so
//! exporting needs no serializer framework.

use super::perf::PerfReport;
use super::{ObsReport, TraceSite};

/// Version stamp of the flat metrics document. Bumped to 2 when the field
/// itself was introduced (v1 documents carry no version).
pub const METRICS_SCHEMA_VERSION: u32 = 2;

/// Minimal JSON string escape (quotes, backslashes, control characters).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON-safe float: finite values print as-is, anything else as null.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

const PID_PROTOCOL: u32 = 0;
const PID_OCCUPANCY: u32 = 1;
const PID_PERF: u32 = 2;

/// Render a report as Chrome trace-event JSON.
pub fn chrome_trace_json(report: &ObsReport) -> String {
    let mut ev: Vec<String> = Vec::new();

    // Process / thread naming metadata.
    ev.push(format!(
        r#"{{"name":"process_name","ph":"M","pid":{PID_PROTOCOL},"tid":0,"args":{{"name":"NDP protocol"}}}}"#
    ));
    ev.push(format!(
        r#"{{"name":"process_name","ph":"M","pid":{PID_OCCUPANCY},"tid":0,"args":{{"name":"queue occupancy"}}}}"#
    ));
    for site in TraceSite::ALL {
        ev.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":{PID_PROTOCOL},"tid":{},"args":{{"name":"{}"}}}}"#,
            site.index(),
            esc(site.key())
        ));
    }

    // Protocol events: one instant event per observed packet movement.
    for e in &report.events {
        let token = match e.token {
            Some(t) => format!("{}", t.0),
            None => "null".to_string(),
        };
        ev.push(format!(
            r#"{{"name":"{}","cat":"packet","ph":"i","s":"t","ts":{},"pid":{PID_PROTOCOL},"tid":{},"args":{{"site":"{}","src":"{}","dst":"{}","size":{},"token":{}}}}}"#,
            esc(e.kind),
            e.cycle,
            e.site.index(),
            esc(e.site.key()),
            esc(&format!("{:?}", e.src)),
            esc(&format!("{:?}", e.dst)),
            e.size,
            token
        ));
    }

    // Occupancy series: counter events.
    for s in &report.series {
        for (i, v) in s.samples.iter().enumerate() {
            ev.push(format!(
                r#"{{"name":"{}","ph":"C","ts":{},"pid":{PID_OCCUPANCY},"tid":0,"args":{{"value":{}}}}}"#,
                esc(&s.name),
                i as u64 * s.interval_cycles,
                num(*v)
            ));
        }
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        ev.join(",\n")
    )
}

/// Render the simulator's self-profile as Chrome trace-event JSON: a
/// third Perfetto lane next to the protocol and occupancy ones. Per-stage
/// estimated wall time renders as one span per stage laid end to end (a
/// one-frame flame view of where host time goes); heartbeats render as
/// counter tracks (cycles/sec and routing occupancy over sim cycles).
pub fn perf_chrome_trace_json(report: &PerfReport) -> String {
    let mut ev: Vec<String> = Vec::new();
    ev.push(format!(
        r#"{{"name":"process_name","ph":"M","pid":{PID_PERF},"tid":0,"args":{{"name":"simulator perf (host wall time)"}}}}"#
    ));
    ev.push(format!(
        r#"{{"name":"thread_name","ph":"M","pid":{PID_PERF},"tid":0,"args":{{"name":"stage wall time"}}}}"#
    ));
    let mut ts = 0u64;
    for s in &report.stages {
        let dur_us = s.est_wall_ns / 1_000;
        ev.push(format!(
            r#"{{"name":"{}","cat":"perf","ph":"X","ts":{ts},"dur":{dur_us},"pid":{PID_PERF},"tid":0,"args":{{"invocations":{},"gated":{},"idle":{},"moved":{},"idle_frac":{},"wall_frac":{}}}}}"#,
            esc(&s.name),
            s.invocations,
            s.gated,
            s.idle,
            s.moved,
            num(s.idle_frac),
            num(s.wall_frac)
        ));
        ts += dur_us;
    }
    for hb in &report.heartbeats {
        ev.push(format!(
            r#"{{"name":"cycles_per_sec","ph":"C","ts":{},"pid":{PID_PERF},"tid":1,"args":{{"value":{}}}}}"#,
            hb.cycle,
            num(hb.cycles_per_sec)
        ));
        ev.push(format!(
            r#"{{"name":"route_occupancy","ph":"C","ts":{},"pid":{PID_PERF},"tid":1,"args":{{"value":{}}}}}"#,
            hb.cycle,
            num(hb.route_occupancy)
        ));
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        ev.join(",\n")
    )
}

/// Render a report as a flat JSON metrics document.
pub fn metrics_json(report: &ObsReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"schema_version\": {METRICS_SCHEMA_VERSION},\n"
    ));
    out.push_str(&format!(
        "  \"sample_interval\": {},\n  \"txn\": {{\"issued\": {}, \"completed\": {}, \"inflight\": {}, \"orphan_acks\": {}}},\n",
        report.sample_interval,
        report.txn_issued,
        report.txn_completed,
        report.txn_inflight,
        report.orphan_acks
    ));
    out.push_str("  \"latency_cycles\": {\n");
    let lat: Vec<String> = report
        .latency
        .iter()
        .map(|s| {
            let l = &s.latency;
            format!(
                "    \"{}\": {{\"count\": {}, \"mean\": {}, \"min\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
                esc(&s.segment),
                l.count,
                num(l.mean),
                l.min,
                l.p50,
                l.p90,
                l.p99,
                l.max
            )
        })
        .collect();
    out.push_str(&lat.join(",\n"));
    out.push_str("\n  },\n  \"occupancy\": {\n");
    let ser: Vec<String> = report
        .series
        .iter()
        .map(|s| {
            let vals: Vec<String> = s.samples.iter().map(|v| num(*v)).collect();
            format!(
                "    \"{}\": {{\"interval_cycles\": {}, \"samples\": [{}]}}",
                esc(&s.name),
                s.interval_cycles,
                vals.join(", ")
            )
        })
        .collect();
    out.push_str(&ser.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::super::{Obs, ObsConfig, TraceSite};
    use super::*;
    use crate::ids::{Node, OffloadId, OffloadToken};
    use crate::packet::{Packet, PacketKind};

    fn report_with_data() -> ObsReport {
        let mut o = Obs::new(ObsConfig::on());
        let cmd = Packet::new(
            Node::Sm(3),
            Node::Nsu(1),
            0,
            PacketKind::OffloadCmd {
                token: OffloadToken(42),
                id: OffloadId {
                    sm: 3,
                    warp: 0,
                    seq: 0,
                },
                nsu_pc: 0,
                regs_in: 1,
                active: 32,
                mask: u32::MAX,
                n_loads: 2,
                n_stores: 1,
            },
        );
        o.on_packet(5, TraceSite::SmEject, &cmd);
        o.offer_sample("nsu_read_buf", 4.0);
        o.offer_sample("nsu_read_buf", 7.0);
        o.report()
    }

    /// A tiny structural JSON validator: verifies balanced braces/brackets
    /// outside strings and legal string escapes — enough to catch exporter
    /// formatting bugs without a parser dependency.
    fn check_json_structure(s: &str) {
        let mut depth: Vec<char> = Vec::new();
        let mut in_str = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth.push(c),
                '}' => assert_eq!(depth.pop(), Some('{'), "unbalanced brace"),
                ']' => assert_eq!(depth.pop(), Some('['), "unbalanced bracket"),
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string");
        assert!(depth.is_empty(), "unclosed scopes: {depth:?}");
    }

    #[test]
    fn chrome_trace_is_structured_and_complete() {
        let r = report_with_data();
        let json = chrome_trace_json(&r);
        check_json_structure(&json);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"OffloadCmd\""));
        assert!(json.contains("\"ph\":\"C\""), "counter events present");
        assert!(json.contains("\"nsu_read_buf\""));
        assert!(json.contains("\"token\":42"));
    }

    #[test]
    fn metrics_json_is_structured_and_complete() {
        let r = report_with_data();
        let json = metrics_json(&r);
        check_json_structure(&json);
        assert!(json.contains("\"end_to_end\""));
        assert!(json.contains("\"nsu_read_buf\""));
        assert!(json.contains("\"issued\": 1"));
        assert!(
            json.contains(&format!("\"schema_version\": {METRICS_SCHEMA_VERSION}")),
            "metrics document must be versioned"
        );
    }

    #[test]
    fn perf_trace_is_structured_and_complete() {
        use super::super::perf::{Perf, PerfConfig, StageOutcome};
        let mut cfg = PerfConfig::on();
        cfg.heartbeat_interval = 2;
        let mut p = Perf::new(cfg, vec!["tick:sms".into(), "edge:sm_out".into()]);
        for now in 0..6u64 {
            p.cycle_begin(now);
            p.stage(0, StageOutcome::Ticked);
            p.stage(1, StageOutcome::Routed(now % 2));
        }
        let json = perf_chrome_trace_json(&p.report(6));
        check_json_structure(&json);
        assert!(json.contains("\"edge:sm_out\""));
        assert!(json.contains("\"ph\":\"X\""), "stage spans present");
        assert!(json.contains("\"cycles_per_sec\""), "heartbeat counters");
        assert!(json.contains("\"route_occupancy\""));
    }

    #[test]
    fn escapes_are_safe() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("\n"), "\\u000a");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(2.5), "2.5");
    }
}
