//! Protocol-invariant engine.
//!
//! The partitioned-execution protocol (§4) is only correct if packets and
//! credits are conserved end-to-end: every CMD is matched by exactly one
//! delivered ACK, RDF data issued by the GPU is consumed by an NSU, WTA
//! packets all reach their NSU, NSU writes are acknowledged and invalidate
//! the GPU caches, and every buffer credit reserved is eventually returned.
//!
//! Two tiers of checking, both fed from the fabric's single observation
//! site ([`Invariants::on_packet`]):
//!
//! * **Always-on counters** — one increment per observed packet; checked
//!   for conservation when the system drains ([`Invariants::check_drained`]).
//! * **Deep per-token checks** — a lifecycle state machine per
//!   `OffloadToken` (Issued → AtNsu → AckSent → Done) catching duplicate
//!   CMDs, orphan or duplicate ACKs (promoting the obs layer's orphan-ACK
//!   heuristic to a first-class violation), and data arriving after
//!   completion. On by default under `debug_assertions`; force with
//!   `NDP_DEEP_INVARIANTS=1`/`0`.
//!
//! Violations are recorded, not panicked: the run loop surfaces them as
//! structured `SimError::InvariantViolation` results.

use std::collections::HashMap;

use crate::error::SimError;
use crate::ids::Cycle;
use crate::obs::TraceSite;
use crate::packet::{Packet, PacketKind};
use crate::watchdog::{CounterSnapshot, TokenInFlight};

/// Lifecycle of one offload transaction, advanced by observed packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TokenPhase {
    /// CMD left the SM.
    Issued,
    /// CMD arrived at the target NSU.
    AtNsu,
    /// ACK left the NSU.
    AckSent,
    /// ACK delivered back to the GPU.
    Done,
}

impl TokenPhase {
    fn name(self) -> &'static str {
        match self {
            TokenPhase::Issued => "Issued (CMD in flight to NSU)",
            TokenPhase::AtNsu => "AtNsu (executing / awaiting data)",
            TokenPhase::AckSent => "AckSent (ACK in flight to GPU)",
            TokenPhase::Done => "Done",
        }
    }
}

/// Cap on recorded violation messages (the first is what matters).
const MAX_VIOLATIONS: usize = 16;

/// Always-on protocol counters plus optional deep per-token checks.
#[derive(Debug, Clone)]
pub struct Invariants {
    deep: bool,
    cmd_issued: u64,
    cmd_at_nsu: u64,
    ack_emitted: u64,
    ack_delivered: u64,
    rdf_issued: u64,
    rdf_consumed: u64,
    wta_issued: u64,
    wta_consumed: u64,
    nsu_writes: u64,
    nsu_write_acks: u64,
    invals_delivered: u64,
    tokens: HashMap<u64, TokenPhase>,
    violations: Vec<String>,
}

impl Invariants {
    pub fn new(deep: bool) -> Self {
        Invariants {
            deep,
            cmd_issued: 0,
            cmd_at_nsu: 0,
            ack_emitted: 0,
            ack_delivered: 0,
            rdf_issued: 0,
            rdf_consumed: 0,
            wta_issued: 0,
            wta_consumed: 0,
            nsu_writes: 0,
            nsu_write_acks: 0,
            invals_delivered: 0,
            tokens: HashMap::new(),
            violations: Vec::new(),
        }
    }

    /// Deep checking default: on for debug builds, overridable either way
    /// with `NDP_DEEP_INVARIANTS=1`/`0`.
    pub fn deep_default() -> bool {
        crate::env::flag_or_die("NDP_DEEP_INVARIANTS").unwrap_or(cfg!(debug_assertions))
    }

    pub fn deep(&self) -> bool {
        self.deep
    }

    pub fn set_deep(&mut self, deep: bool) {
        self.deep = deep;
    }

    fn record(&mut self, msg: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(msg);
        }
    }

    /// Record an externally detected violation (e.g. an orphan CacheInval
    /// noticed by the offload controller).
    pub fn record_external(&mut self, now: Cycle, detail: &str) {
        self.record(format!("cycle {now}: {detail}"));
    }

    /// Feed one observed packet movement. Called from the fabric's single
    /// observation site; purely observational — never perturbs simulation.
    #[inline]
    pub fn on_packet(&mut self, now: Cycle, site: TraceSite, p: &Packet) {
        match (site, &p.kind) {
            (TraceSite::SmEject, PacketKind::OffloadCmd { token, .. }) => {
                self.cmd_issued += 1;
                if self.deep {
                    let t = token.0;
                    if let Some(phase) = self.tokens.insert(t, TokenPhase::Issued) {
                        self.record(format!(
                            "cycle {now}: token {t:#x} re-issued while {}",
                            phase.name()
                        ));
                    }
                }
            }
            (TraceSite::ToNsu, PacketKind::OffloadCmd { token, .. }) => {
                self.cmd_at_nsu += 1;
                if self.deep {
                    let t = token.0;
                    match self.tokens.get(&t).copied() {
                        Some(TokenPhase::Issued) => {
                            self.tokens.insert(t, TokenPhase::AtNsu);
                        }
                        Some(phase) => self.record(format!(
                            "cycle {now}: duplicate CMD at NSU for token {t:#x} ({})",
                            phase.name()
                        )),
                        None => self.record(format!(
                            "cycle {now}: CMD at NSU for never-issued token {t:#x}"
                        )),
                    }
                }
            }
            (TraceSite::SmEject, PacketKind::Rdf { .. } | PacketKind::RdfResp { .. }) => {
                self.rdf_issued += 1;
            }
            (TraceSite::ToNsu, PacketKind::Rdf { token, .. })
            | (TraceSite::ToNsu, PacketKind::RdfResp { token, .. }) => {
                self.rdf_consumed += 1;
                if self.deep {
                    let t = token.0;
                    match self.tokens.get(&t).copied() {
                        Some(TokenPhase::Done) => {
                            self.record(format!("cycle {now}: RDF data for completed token {t:#x}"))
                        }
                        Some(_) => {}
                        None => self.record(format!(
                            "cycle {now}: RDF data for never-issued token {t:#x}"
                        )),
                    }
                }
            }
            (TraceSite::SmEject, PacketKind::Wta { .. }) => self.wta_issued += 1,
            (TraceSite::ToNsu, PacketKind::Wta { token, .. }) => {
                self.wta_consumed += 1;
                if self.deep {
                    let t = token.0;
                    if self.tokens.get(&t).copied() == Some(TokenPhase::Done) {
                        self.record(format!("cycle {now}: WTA for completed token {t:#x}"));
                    }
                }
            }
            (TraceSite::FromNsu, PacketKind::NsuWrite { .. }) => self.nsu_writes += 1,
            (TraceSite::ToNsu, PacketKind::NsuWriteAck { .. }) => self.nsu_write_acks += 1,
            (TraceSite::GpuLinkDown, PacketKind::CacheInval { .. }) => {
                self.invals_delivered += 1;
            }
            (TraceSite::FromNsu, PacketKind::OffloadAck { token, .. }) => {
                self.ack_emitted += 1;
                if self.deep {
                    let t = token.0;
                    match self.tokens.get(&t).copied() {
                        Some(TokenPhase::AtNsu) => {
                            self.tokens.insert(t, TokenPhase::AckSent);
                        }
                        Some(phase) => self.record(format!(
                            "cycle {now}: duplicate ACK emitted for token {t:#x} ({})",
                            phase.name()
                        )),
                        None => self.record(format!(
                            "cycle {now}: ACK emitted for never-issued token {t:#x}"
                        )),
                    }
                }
            }
            (TraceSite::GpuLinkDown, PacketKind::OffloadAck { token, .. }) => {
                self.ack_delivered += 1;
                if self.deep {
                    let t = token.0;
                    match self.tokens.get(&t).copied() {
                        Some(TokenPhase::AckSent) => {
                            self.tokens.insert(t, TokenPhase::Done);
                        }
                        Some(phase) => self.record(format!(
                            "cycle {now}: orphan ACK delivered for token {t:#x} ({})",
                            phase.name()
                        )),
                        None => self.record(format!(
                            "cycle {now}: orphan ACK delivered for never-issued token {t:#x}"
                        )),
                    }
                }
            }
            _ => {}
        }
    }

    /// The first recorded violation, if any. Checked periodically by the
    /// run loop so deep violations abort the run promptly.
    pub fn first_violation(&self) -> Option<&str> {
        self.violations.first().map(String::as_str)
    }

    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// End-of-run conservation check: with the system drained, every
    /// counter pair must balance and no violation may be recorded.
    pub fn check_drained(&self, now: Cycle) -> Result<(), SimError> {
        if let Some(v) = self.first_violation() {
            return Err(SimError::InvariantViolation {
                cycle: now,
                detail: v.to_string(),
            });
        }
        let pairs: [(&str, u64, &str, u64); 6] = [
            ("cmd_issued", self.cmd_issued, "cmd_at_nsu", self.cmd_at_nsu),
            (
                "cmd_issued",
                self.cmd_issued,
                "ack_delivered",
                self.ack_delivered,
            ),
            (
                "ack_emitted",
                self.ack_emitted,
                "ack_delivered",
                self.ack_delivered,
            ),
            (
                "rdf_issued",
                self.rdf_issued,
                "rdf_consumed",
                self.rdf_consumed,
            ),
            (
                "wta_issued",
                self.wta_issued,
                "wta_consumed",
                self.wta_consumed,
            ),
            (
                "nsu_writes",
                self.nsu_writes,
                "nsu_write_acks",
                self.nsu_write_acks,
            ),
        ];
        for (an, a, bn, b) in pairs {
            if a != b {
                return Err(SimError::InvariantViolation {
                    cycle: now,
                    detail: format!("{an} ({a}) != {bn} ({b}) after drain"),
                });
            }
        }
        if self.nsu_writes != self.invals_delivered {
            return Err(SimError::InvariantViolation {
                cycle: now,
                detail: format!(
                    "nsu_writes ({}) != invals_delivered ({}) after drain",
                    self.nsu_writes, self.invals_delivered
                ),
            });
        }
        Ok(())
    }

    /// Counter snapshot for stall reports.
    pub fn counters(&self) -> Vec<CounterSnapshot> {
        [
            ("cmd_issued", self.cmd_issued),
            ("cmd_at_nsu", self.cmd_at_nsu),
            ("ack_emitted", self.ack_emitted),
            ("ack_delivered", self.ack_delivered),
            ("rdf_issued", self.rdf_issued),
            ("rdf_consumed", self.rdf_consumed),
            ("wta_issued", self.wta_issued),
            ("wta_consumed", self.wta_consumed),
            ("nsu_writes", self.nsu_writes),
            ("nsu_write_acks", self.nsu_write_acks),
            ("invals_delivered", self.invals_delivered),
        ]
        .into_iter()
        .map(|(name, value)| CounterSnapshot { name, value })
        .collect()
    }

    /// Checkpoint the full engine: mode, counters, per-token lifecycle map
    /// (sorted by token for byte-stable output), and recorded violations.
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.bool(self.deep);
        for c in [
            self.cmd_issued,
            self.cmd_at_nsu,
            self.ack_emitted,
            self.ack_delivered,
            self.rdf_issued,
            self.rdf_consumed,
            self.wta_issued,
            self.wta_consumed,
            self.nsu_writes,
            self.nsu_write_acks,
            self.invals_delivered,
        ] {
            w.u64(c);
        }
        let mut toks: Vec<(u64, TokenPhase)> =
            self.tokens.iter().map(|(&t, &ph)| (t, ph)).collect();
        toks.sort_unstable_by_key(|&(t, _)| t);
        w.len(toks.len());
        for (t, ph) in toks {
            w.u64(t);
            w.u8(match ph {
                TokenPhase::Issued => 0,
                TokenPhase::AtNsu => 1,
                TokenPhase::AckSent => 2,
                TokenPhase::Done => 3,
            });
        }
        w.len(self.violations.len());
        for v in &self.violations {
            w.str(v);
        }
    }

    /// Overwrite the engine state from a checkpoint stream.
    pub fn restore(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        self.deep = r.bool()?;
        self.cmd_issued = r.u64()?;
        self.cmd_at_nsu = r.u64()?;
        self.ack_emitted = r.u64()?;
        self.ack_delivered = r.u64()?;
        self.rdf_issued = r.u64()?;
        self.rdf_consumed = r.u64()?;
        self.wta_issued = r.u64()?;
        self.wta_consumed = r.u64()?;
        self.nsu_writes = r.u64()?;
        self.nsu_write_acks = r.u64()?;
        self.invals_delivered = r.u64()?;
        self.tokens.clear();
        for _ in 0..r.len()? {
            let t = r.u64()?;
            let ph = match r.u8()? {
                0 => TokenPhase::Issued,
                1 => TokenPhase::AtNsu,
                2 => TokenPhase::AckSent,
                3 => TokenPhase::Done,
                d => {
                    return Err(crate::snap::SnapError(format!(
                        "unknown TokenPhase discriminant {d}"
                    )))
                }
            };
            self.tokens.insert(t, ph);
        }
        self.violations.clear();
        for _ in 0..r.len()? {
            self.violations.push(r.str()?);
        }
        Ok(())
    }

    /// Tokens not yet `Done`, with lifecycle state (deep mode only —
    /// empty otherwise). For stall reports.
    pub fn inflight_tokens(&self) -> Vec<TokenInFlight> {
        let mut v: Vec<TokenInFlight> = self
            .tokens
            .iter()
            .filter(|(_, ph)| **ph != TokenPhase::Done)
            .map(|(&token, ph)| TokenInFlight {
                token,
                state: ph.name().to_string(),
            })
            .collect();
        v.sort_by_key(|t| t.token);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Node, OffloadId, OffloadToken};

    fn cmd(token: u64) -> Packet {
        Packet::new(
            Node::Sm(0),
            Node::Nsu(0),
            0,
            PacketKind::OffloadCmd {
                token: OffloadToken(token),
                id: OffloadId {
                    sm: 0,
                    warp: 0,
                    seq: 0,
                },
                nsu_pc: 0xd00,
                regs_in: 0,
                active: 32,
                mask: u32::MAX,
                n_loads: 1,
                n_stores: 1,
            },
        )
    }

    fn ack(token: u64) -> Packet {
        Packet::new(
            Node::Nsu(0),
            Node::Sm(0),
            0,
            PacketKind::OffloadAck {
                token: OffloadToken(token),
                id: OffloadId {
                    sm: 0,
                    warp: 0,
                    seq: 0,
                },
                regs_out: 0,
                active: 32,
                values: vec![],
            },
        )
    }

    fn full_lifecycle(inv: &mut Invariants, token: u64) {
        inv.on_packet(1, TraceSite::SmEject, &cmd(token));
        inv.on_packet(2, TraceSite::ToNsu, &cmd(token));
        inv.on_packet(3, TraceSite::FromNsu, &ack(token));
        inv.on_packet(4, TraceSite::GpuLinkDown, &ack(token));
    }

    #[test]
    fn clean_lifecycle_has_no_violations_and_drains() {
        let mut inv = Invariants::new(true);
        full_lifecycle(&mut inv, 0x10);
        full_lifecycle(&mut inv, 0x11);
        assert_eq!(inv.first_violation(), None);
        assert!(inv.check_drained(100).is_ok());
        assert!(inv.inflight_tokens().is_empty());
    }

    #[test]
    fn duplicate_cmd_at_nsu_is_a_violation() {
        let mut inv = Invariants::new(true);
        inv.on_packet(1, TraceSite::SmEject, &cmd(0x7));
        inv.on_packet(2, TraceSite::ToNsu, &cmd(0x7));
        inv.on_packet(3, TraceSite::ToNsu, &cmd(0x7));
        let v = inv.first_violation().expect("violation recorded");
        assert!(v.contains("duplicate CMD"), "{v}");
    }

    #[test]
    fn orphan_ack_is_a_violation() {
        let mut inv = Invariants::new(true);
        inv.on_packet(5, TraceSite::GpuLinkDown, &ack(0x9));
        let v = inv.first_violation().expect("violation recorded");
        assert!(v.contains("orphan ACK"), "{v}");
    }

    #[test]
    fn imbalanced_counters_fail_drain_check() {
        let mut inv = Invariants::new(false);
        inv.on_packet(1, TraceSite::SmEject, &cmd(0x1));
        // CMD never reaches the NSU, no ACK ever delivered.
        let err = inv.check_drained(50).unwrap_err();
        assert!(matches!(err, SimError::InvariantViolation { .. }), "{err}");
    }

    #[test]
    fn shallow_mode_skips_token_tracking_but_counts() {
        let mut inv = Invariants::new(false);
        inv.on_packet(5, TraceSite::GpuLinkDown, &ack(0x9));
        assert_eq!(inv.first_violation(), None, "no deep checks when shallow");
        // But the counter imbalance is still caught at drain.
        assert!(inv.check_drained(50).is_err());
    }

    #[test]
    fn inflight_tokens_report_lifecycle_state() {
        let mut inv = Invariants::new(true);
        inv.on_packet(1, TraceSite::SmEject, &cmd(0x20));
        inv.on_packet(2, TraceSite::ToNsu, &cmd(0x20));
        let t = inv.inflight_tokens();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].token, 0x20);
        assert!(t[0].state.contains("AtNsu"), "{}", t[0].state);
    }
}
