//! Packetized message formats.
//!
//! The partitioned-execution protocol of §4 communicates exclusively through
//! packets (Fig. 4): offload command (CMD), read-and-forward (RDF), write
//! address (WTA), RDF response, DRAM write + write-ack, cache invalidation,
//! and offload acknowledgment (ACK). Baseline execution uses conventional
//! read/write request/response packets. Wire sizes follow the field layouts
//! of Fig. 4 so that link bandwidth and energy accounting are faithful.

use crate::ids::{Cycle, Node, OffloadId, OffloadToken};
use crate::snap::{SnapError, SnapReader, SnapWriter};

/// Word size for register values and per-lane data words (bytes).
pub const WORD_BYTES: u32 = 4;

/// Sentinel `block` value for memory accesses outside any offload block.
pub const NO_BLOCK: u16 = u16::MAX;

/// Packet header bytes: offload packet ID / address / control information.
/// The HMC protocol uses 16-byte-granularity FLITs; we charge one FLIT of
/// header per packet.
pub const HEADER_BYTES: u32 = 16;

/// A single lane's participation in a memory access: `(lane index within the
/// warp, full byte address)`.
pub type LaneAddr = (u8, u64);

/// One coalesced access to a 128 B cache line, produced by the GPU's
/// coalescing unit for both baseline memory instructions and RDF/WTA
/// generation (§4.1.1 "Memory instruction").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineAccess {
    /// Cache-line base address.
    pub line: u64,
    /// The lanes touching this line and their byte addresses.
    pub lanes: Vec<LaneAddr>,
    /// §4.1.1 alignment rule: aligned iff lane *i* reads
    /// `line + i × WordSize`. Misaligned accesses append per-thread offsets
    /// to RDF/WTA packets.
    pub misaligned: bool,
}

impl LineAccess {
    /// Number of active words in this access.
    pub fn active_words(&self) -> u32 {
        self.lanes.len() as u32
    }

    /// Active-thread mask over the warp.
    pub fn lane_mask(&self) -> u32 {
        self.lanes.iter().fold(0u32, |m, &(l, _)| m | (1 << l))
    }

    /// Extra bytes appended to an RDF/WTA packet for a misaligned access:
    /// one offset byte per active thread (Fig. 4(b)).
    pub fn offset_overhead(&self) -> u32 {
        if self.misaligned {
            self.lanes.len() as u32
        } else {
            0
        }
    }

    /// Checkpoint encoding (see `ndp_common::snap` conventions).
    pub fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.line);
        w.len(self.lanes.len());
        for &(lane, addr) in &self.lanes {
            w.u8(lane);
            w.u64(addr);
        }
        w.bool(self.misaligned);
    }

    /// Checkpoint decoding counterpart of [`LineAccess::snap`].
    pub fn restore(r: &mut SnapReader<'_>) -> Result<LineAccess, SnapError> {
        let line = r.u64()?;
        let n = r.len()?;
        let mut lanes = Vec::with_capacity(n);
        for _ in 0..n {
            lanes.push((r.u8()?, r.u64()?));
        }
        Ok(LineAccess {
            line,
            lanes,
            misaligned: r.bool()?,
        })
    }
}

/// Payload variants. Wire size is computed by [`Packet::wire_size`].
#[derive(Debug, Clone)]
pub enum PacketKind {
    /// Baseline cache-miss read: fetch `bytes` at line `addr` from a vault.
    /// `tag` lets the requesting cache level match the response to its MSHR.
    /// `block` attributes the access to an offload block for the §7.3
    /// locality statistics (`NO_BLOCK` when outside any block).
    ReadReq {
        addr: u64,
        bytes: u32,
        tag: u64,
        block: u16,
    },
    /// Baseline read response carrying the data.
    ReadResp { addr: u64, bytes: u32, tag: u64 },
    /// Baseline write-through store: `words` 4-byte words within line `addr`.
    WriteReq { addr: u64, words: u32, tag: u64 },
    /// Baseline write acknowledgment.
    WriteAck { addr: u64, tag: u64 },

    /// Offload command (Fig. 4(a)): spawns a warp on the target NSU.
    OffloadCmd {
        token: OffloadToken,
        id: OffloadId,
        /// Start PC of the NSU code for this block (physical, §4.1.1).
        nsu_pc: u64,
        /// Live-in register values transferred to the NSU, one word per
        /// register per active thread.
        regs_in: u8,
        /// Active thread count (for register payload sizing).
        active: u8,
        /// Active thread mask (Fig. 4(a)) — the NSU uses it to detect when
        /// merged RDF responses cover the warp (§4.1.2).
        mask: u32,
        /// Loads / stores in the block (reserve read-data / write-address
        /// buffer entries).
        n_loads: u8,
        n_stores: u8,
    },
    /// Read-and-forward request (Fig. 4(b)): DRAM read whose response is
    /// forwarded to the target NSU instead of the GPU.
    Rdf {
        token: OffloadToken,
        seq: u16,
        access: LineAccess,
        /// The NSU that consumes the response.
        target: Node,
        /// Offload block this RDF belongs to (§7.3 locality statistics).
        block: u16,
        /// Set when the RDF hit in a GPU cache and this packet carries the
        /// cached data GPU→NSU (then its size includes the data words).
        cache_hit_data: bool,
    },
    /// RDF response (Fig. 4(c)): the accessed words, forwarded to the NSU.
    RdfResp {
        token: OffloadToken,
        seq: u16,
        access: LineAccess,
    },
    /// Write-address packet (Fig. 4(b)): physical store addresses for one
    /// line, sent GPU→NSU. `n_accesses` is how many WTA packets this store
    /// instruction coalesced into (the NSU must collect them all before
    /// issuing the write, mirroring the RDF merge rule of §4.1.2).
    Wta {
        token: OffloadToken,
        seq: u16,
        access: LineAccess,
        target: Node,
        n_accesses: u8,
    },
    /// NSU-generated DRAM write for an offloaded store (§4.1.2).
    NsuWrite {
        token: OffloadToken,
        addr: u64,
        words: u32,
    },
    /// Vault→NSU acknowledgment of an [`PacketKind::NsuWrite`].
    NsuWriteAck { token: OffloadToken },
    /// Vault→GPU cache invalidation after an NSU write (§4.2).
    CacheInval { addr: u64 },
    /// Offload acknowledgment (§4.1.2): NSU→GPU, carries live-out registers.
    OffloadAck {
        token: OffloadToken,
        id: OffloadId,
        regs_out: u8,
        active: u8,
        /// Functional values of the live-out registers (per register, per
        /// lane), so the GPU warp resumes with NSU-computed data.
        values: Vec<[u64; 32]>,
    },
}

impl PacketKind {
    /// Number of distinct packet kinds: the size of every per-kind
    /// accounting array. [`Packet::kind_index`] always returns `< COUNT`.
    pub const COUNT: usize = 12;
}

/// A packet in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    pub src: Node,
    pub dst: Node,
    /// Bytes on the wire (header + payload), used for serialization delay,
    /// traffic accounting and link energy.
    pub size: u32,
    /// Cycle the packet was created (for latency statistics).
    pub birth: Cycle,
    pub kind: PacketKind,
}

impl Packet {
    pub fn new(src: Node, dst: Node, birth: Cycle, kind: PacketKind) -> Self {
        let size = Self::wire_size(&kind);
        Packet {
            src,
            dst,
            size,
            birth,
            kind,
        }
    }

    /// Wire size in bytes for each packet kind, per the Fig. 4 layouts.
    pub fn wire_size(kind: &PacketKind) -> u32 {
        match kind {
            PacketKind::ReadReq { .. } => HEADER_BYTES,
            PacketKind::ReadResp { bytes, .. } => HEADER_BYTES + bytes,
            PacketKind::WriteReq { words, .. } => HEADER_BYTES + words * WORD_BYTES,
            PacketKind::WriteAck { .. } => HEADER_BYTES / 2,
            PacketKind::OffloadCmd {
                regs_in, active, ..
            } => {
                // Shaded fields of Fig. 4(a): (register size) × (#regs) ×
                // (#active threads), present only when registers transfer.
                HEADER_BYTES + (*regs_in as u32) * WORD_BYTES * (*active as u32)
            }
            PacketKind::Rdf {
                access,
                cache_hit_data,
                ..
            } => {
                let data = if *cache_hit_data {
                    access.active_words() * WORD_BYTES
                } else {
                    0
                };
                HEADER_BYTES + access.offset_overhead() + data
            }
            PacketKind::RdfResp { access, .. } => {
                // Only the words actually accessed are included (§4.4).
                HEADER_BYTES + access.active_words() * WORD_BYTES
            }
            PacketKind::Wta { access, .. } => HEADER_BYTES + access.offset_overhead(),
            PacketKind::NsuWrite { words, .. } => HEADER_BYTES + words * WORD_BYTES,
            PacketKind::NsuWriteAck { .. } => HEADER_BYTES / 2,
            PacketKind::CacheInval { .. } => HEADER_BYTES,
            PacketKind::OffloadAck {
                regs_out, active, ..
            } => HEADER_BYTES + (*regs_out as u32) * WORD_BYTES * (*active as u32),
        }
    }

    /// Small integer id of the packet kind (stable, for per-kind traffic
    /// accounting in link statistics).
    pub fn kind_index(&self) -> usize {
        match self.kind {
            PacketKind::ReadReq { .. } => 0,
            PacketKind::ReadResp { .. } => 1,
            PacketKind::WriteReq { .. } => 2,
            PacketKind::WriteAck { .. } => 3,
            PacketKind::OffloadCmd { .. } => 4,
            PacketKind::Rdf { .. } => 5,
            PacketKind::RdfResp { .. } => 6,
            PacketKind::Wta { .. } => 7,
            PacketKind::NsuWrite { .. } => 8,
            PacketKind::NsuWriteAck { .. } => 9,
            PacketKind::CacheInval { .. } => 10,
            PacketKind::OffloadAck { .. } => 11,
        }
    }

    /// Human-readable name for [`Packet::kind_index`] slots.
    pub const KIND_NAMES: [&'static str; PacketKind::COUNT] = [
        "ReadReq",
        "ReadResp",
        "WriteReq",
        "WriteAck",
        "OffloadCmd",
        "Rdf",
        "RdfResp",
        "Wta",
        "NsuWrite",
        "NsuWriteAck",
        "CacheInval",
        "OffloadAck",
    ];

    /// The offload token this packet belongs to, for the NDP-protocol
    /// packets that carry one (tracing and transaction tracking).
    pub fn token(&self) -> Option<OffloadToken> {
        match self.kind {
            PacketKind::OffloadCmd { token, .. }
            | PacketKind::Rdf { token, .. }
            | PacketKind::RdfResp { token, .. }
            | PacketKind::Wta { token, .. }
            | PacketKind::NsuWrite { token, .. }
            | PacketKind::NsuWriteAck { token }
            | PacketKind::OffloadAck { token, .. } => Some(token),
            _ => None,
        }
    }

    /// True for the NDP-protocol packets introduced by the paper (used to
    /// separate protocol overhead from baseline traffic in reports).
    pub fn is_ndp(&self) -> bool {
        !matches!(
            self.kind,
            PacketKind::ReadReq { .. }
                | PacketKind::ReadResp { .. }
                | PacketKind::WriteReq { .. }
                | PacketKind::WriteAck { .. }
        )
    }

    /// Checkpoint encoding: endpoints, wire metadata, and the full payload
    /// variant (discriminant = [`Packet::kind_index`]).
    pub fn snap(&self, w: &mut SnapWriter) {
        fn id(w: &mut SnapWriter, id: &OffloadId) {
            w.u16(id.sm);
            w.u16(id.warp);
            w.u16(id.seq);
        }
        self.src.snap(w);
        self.dst.snap(w);
        w.u32(self.size);
        w.u64(self.birth);
        w.u8(self.kind_index() as u8);
        match &self.kind {
            PacketKind::ReadReq {
                addr,
                bytes,
                tag,
                block,
            } => {
                w.u64(*addr);
                w.u32(*bytes);
                w.u64(*tag);
                w.u16(*block);
            }
            PacketKind::ReadResp { addr, bytes, tag } => {
                w.u64(*addr);
                w.u32(*bytes);
                w.u64(*tag);
            }
            PacketKind::WriteReq { addr, words, tag } => {
                w.u64(*addr);
                w.u32(*words);
                w.u64(*tag);
            }
            PacketKind::WriteAck { addr, tag } => {
                w.u64(*addr);
                w.u64(*tag);
            }
            PacketKind::OffloadCmd {
                token,
                id: oid,
                nsu_pc,
                regs_in,
                active,
                mask,
                n_loads,
                n_stores,
            } => {
                w.u64(token.0);
                id(w, oid);
                w.u64(*nsu_pc);
                w.u8(*regs_in);
                w.u8(*active);
                w.u32(*mask);
                w.u8(*n_loads);
                w.u8(*n_stores);
            }
            PacketKind::Rdf {
                token,
                seq,
                access,
                target,
                block,
                cache_hit_data,
            } => {
                w.u64(token.0);
                w.u16(*seq);
                access.snap(w);
                target.snap(w);
                w.u16(*block);
                w.bool(*cache_hit_data);
            }
            PacketKind::RdfResp { token, seq, access } => {
                w.u64(token.0);
                w.u16(*seq);
                access.snap(w);
            }
            PacketKind::Wta {
                token,
                seq,
                access,
                target,
                n_accesses,
            } => {
                w.u64(token.0);
                w.u16(*seq);
                access.snap(w);
                target.snap(w);
                w.u8(*n_accesses);
            }
            PacketKind::NsuWrite { token, addr, words } => {
                w.u64(token.0);
                w.u64(*addr);
                w.u32(*words);
            }
            PacketKind::NsuWriteAck { token } => w.u64(token.0),
            PacketKind::CacheInval { addr } => w.u64(*addr),
            PacketKind::OffloadAck {
                token,
                id: oid,
                regs_out,
                active,
                values,
            } => {
                w.u64(token.0);
                id(w, oid);
                w.u8(*regs_out);
                w.u8(*active);
                w.len(values.len());
                for reg in values {
                    for lane in reg {
                        w.u64(*lane);
                    }
                }
            }
        }
    }

    /// Checkpoint decoding counterpart of [`Packet::snap`].
    pub fn restore(r: &mut SnapReader<'_>) -> Result<Packet, SnapError> {
        fn id(r: &mut SnapReader<'_>) -> Result<OffloadId, SnapError> {
            Ok(OffloadId {
                sm: r.u16()?,
                warp: r.u16()?,
                seq: r.u16()?,
            })
        }
        let src = Node::restore(r)?;
        let dst = Node::restore(r)?;
        let size = r.u32()?;
        let birth = r.u64()?;
        let kind = match r.u8()? {
            0 => PacketKind::ReadReq {
                addr: r.u64()?,
                bytes: r.u32()?,
                tag: r.u64()?,
                block: r.u16()?,
            },
            1 => PacketKind::ReadResp {
                addr: r.u64()?,
                bytes: r.u32()?,
                tag: r.u64()?,
            },
            2 => PacketKind::WriteReq {
                addr: r.u64()?,
                words: r.u32()?,
                tag: r.u64()?,
            },
            3 => PacketKind::WriteAck {
                addr: r.u64()?,
                tag: r.u64()?,
            },
            4 => PacketKind::OffloadCmd {
                token: OffloadToken(r.u64()?),
                id: id(r)?,
                nsu_pc: r.u64()?,
                regs_in: r.u8()?,
                active: r.u8()?,
                mask: r.u32()?,
                n_loads: r.u8()?,
                n_stores: r.u8()?,
            },
            5 => PacketKind::Rdf {
                token: OffloadToken(r.u64()?),
                seq: r.u16()?,
                access: LineAccess::restore(r)?,
                target: Node::restore(r)?,
                block: r.u16()?,
                cache_hit_data: r.bool()?,
            },
            6 => PacketKind::RdfResp {
                token: OffloadToken(r.u64()?),
                seq: r.u16()?,
                access: LineAccess::restore(r)?,
            },
            7 => PacketKind::Wta {
                token: OffloadToken(r.u64()?),
                seq: r.u16()?,
                access: LineAccess::restore(r)?,
                target: Node::restore(r)?,
                n_accesses: r.u8()?,
            },
            8 => PacketKind::NsuWrite {
                token: OffloadToken(r.u64()?),
                addr: r.u64()?,
                words: r.u32()?,
            },
            9 => PacketKind::NsuWriteAck {
                token: OffloadToken(r.u64()?),
            },
            10 => PacketKind::CacheInval { addr: r.u64()? },
            11 => {
                let token = OffloadToken(r.u64()?);
                let oid = id(r)?;
                let regs_out = r.u8()?;
                let active = r.u8()?;
                let n = r.len()?;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    let mut reg = [0u64; 32];
                    for lane in &mut reg {
                        *lane = r.u64()?;
                    }
                    values.push(reg);
                }
                PacketKind::OffloadAck {
                    token,
                    id: oid,
                    regs_out,
                    active,
                    values,
                }
            }
            d => return Err(SnapError(format!("unknown PacketKind discriminant {d}"))),
        };
        Ok(Packet {
            src,
            dst,
            size,
            birth,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes(n: u8) -> Vec<LaneAddr> {
        (0..n).map(|l| (l, 0x1000 + 4 * l as u64)).collect()
    }

    #[test]
    fn line_access_mask_and_words() {
        let a = LineAccess {
            line: 0x1000,
            lanes: vec![(0, 0x1000), (3, 0x100c), (31, 0x107c)],
            misaligned: false,
        };
        assert_eq!(a.active_words(), 3);
        assert_eq!(a.lane_mask(), 1 | (1 << 3) | (1 << 31));
        assert_eq!(a.offset_overhead(), 0);
    }

    #[test]
    fn misaligned_access_pays_offset_bytes() {
        let a = LineAccess {
            line: 0x1000,
            lanes: lanes(7),
            misaligned: true,
        };
        assert_eq!(a.offset_overhead(), 7);
    }

    #[test]
    fn read_response_carries_line() {
        let k = PacketKind::ReadResp {
            addr: 0,
            bytes: 128,
            tag: 0,
        };
        assert_eq!(Packet::wire_size(&k), HEADER_BYTES + 128);
    }

    #[test]
    fn rdf_response_only_carries_active_words() {
        // A divergent gather touching 1 word of a line ships 4 B, not 128 B —
        // the §4.4 bandwidth-saving property.
        let k = PacketKind::RdfResp {
            token: OffloadToken(1),
            seq: 0,
            access: LineAccess {
                line: 0x80,
                lanes: vec![(5, 0x84)],
                misaligned: true,
            },
        };
        assert_eq!(Packet::wire_size(&k), HEADER_BYTES + 4);
    }

    #[test]
    fn cmd_and_ack_scale_with_registers_and_threads() {
        let cmd = PacketKind::OffloadCmd {
            token: OffloadToken(0),
            id: OffloadId {
                sm: 0,
                warp: 0,
                seq: 0,
            },
            nsu_pc: 0xd08,
            regs_in: 2,
            active: 32,
            mask: u32::MAX,
            n_loads: 1,
            n_stores: 1,
        };
        assert_eq!(Packet::wire_size(&cmd), HEADER_BYTES + 2 * 4 * 32);
        let ack = PacketKind::OffloadAck {
            token: OffloadToken(0),
            id: OffloadId {
                sm: 0,
                warp: 0,
                seq: 0,
            },
            regs_out: 0,
            active: 32,
            values: vec![],
        };
        assert_eq!(Packet::wire_size(&ack), HEADER_BYTES);
    }

    #[test]
    fn rdf_cache_hit_ships_data_over_gpu_link() {
        // The BPROP pathology (§7.1): an RDF that hits in the GPU cache must
        // carry the cached words to the NSU, consuming GPU off-chip BW.
        let access = LineAccess {
            line: 0,
            lanes: lanes(32),
            misaligned: false,
        };
        let hit = PacketKind::Rdf {
            token: OffloadToken(0),
            seq: 0,
            access: access.clone(),
            target: Node::Nsu(0),
            block: 0,
            cache_hit_data: true,
        };
        let miss = PacketKind::Rdf {
            token: OffloadToken(0),
            seq: 0,
            access,
            target: Node::Nsu(0),
            block: 0,
            cache_hit_data: false,
        };
        assert_eq!(
            Packet::wire_size(&hit),
            Packet::wire_size(&miss) + 32 * WORD_BYTES
        );
    }

    #[test]
    fn ndp_classification() {
        let p = Packet::new(
            Node::Sm(0),
            Node::Vault(0, 0),
            0,
            PacketKind::ReadReq {
                addr: 0,
                bytes: 128,
                tag: 0,
                block: NO_BLOCK,
            },
        );
        assert!(!p.is_ndp());
        let q = Packet::new(
            Node::Vault(0, 0),
            Node::L2(0),
            0,
            PacketKind::CacheInval { addr: 0 },
        );
        assert!(q.is_ndp());
    }
}
