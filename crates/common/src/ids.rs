//! Identifier newtypes shared across the simulator.

use serde::Serialize;

/// Simulation time, measured in GPU SM cycles (700 MHz in the default
/// configuration). Other clock domains (DRAM at 666 MHz, NSU at 350/175 MHz)
/// are derived from this timebase with per-component dividers.
pub type Cycle = u64;

/// Streaming-multiprocessor index on the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SmId(pub u16);

/// 3D-stacked memory device (HMC) index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HmcId(pub u8);

/// Vault index within an HMC (16 vaults per stack in the default config).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VaultId(pub u8);

/// The *offload packet ID* of Fig. 4: `(SM ID, warp ID, sequence number)`.
///
/// All partitioned-execution packets belonging to the same offload-block
/// instance share `sm`/`warp`; `seq` identifies the memory instruction
/// within the block (the command packet and the first load/store use 0, each
/// subsequent memory instruction increments it, §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OffloadId {
    pub sm: u16,
    pub warp: u16,
    pub seq: u16,
}

/// A unique token for one *instance* of an offload block.
///
/// The architectural identifier is [`OffloadId`]; the token is the
/// simulator-internal handle (strictly increasing, never reused) used to
/// index in-flight offload state without worrying about (sm, warp) reuse
/// across completed blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct OffloadToken(pub u64);

/// Addressable endpoints of the simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Node {
    /// A GPU streaming multiprocessor.
    Sm(u16),
    /// The L2 cache slice associated with GPU↔HMC link `n` (one per HMC).
    L2(u8),
    /// The logic-layer crossbar of HMC `n` (routing entity of a stack).
    Hmc(u8),
    /// A vault controller: (hmc, vault).
    Vault(u8, u8),
    /// The near-data-processing SIMD unit on the logic layer of HMC `n`.
    Nsu(u8),
    /// The GPU-side NDP buffer manager (credit bookkeeping, §4.3).
    BufMgr,
}

impl Node {
    /// The HMC a node physically lives in, if any.
    pub fn hmc(&self) -> Option<HmcId> {
        match *self {
            Node::Hmc(h) | Node::Vault(h, _) | Node::Nsu(h) => Some(HmcId(h)),
            _ => None,
        }
    }

    /// True for nodes located on the GPU die.
    pub fn on_gpu(&self) -> bool {
        matches!(self, Node::Sm(_) | Node::L2(_) | Node::BufMgr)
    }

    /// Checkpoint encoding: discriminant byte + payload.
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        match *self {
            Node::Sm(i) => {
                w.u8(0);
                w.u16(i);
            }
            Node::L2(i) => {
                w.u8(1);
                w.u8(i);
            }
            Node::Hmc(i) => {
                w.u8(2);
                w.u8(i);
            }
            Node::Vault(h, v) => {
                w.u8(3);
                w.u8(h);
                w.u8(v);
            }
            Node::Nsu(i) => {
                w.u8(4);
                w.u8(i);
            }
            Node::BufMgr => w.u8(5),
        }
    }

    /// Checkpoint decoding counterpart of [`Node::snap`].
    pub fn restore(r: &mut crate::snap::SnapReader<'_>) -> Result<Node, crate::snap::SnapError> {
        Ok(match r.u8()? {
            0 => Node::Sm(r.u16()?),
            1 => Node::L2(r.u8()?),
            2 => Node::Hmc(r.u8()?),
            3 => Node::Vault(r.u8()?, r.u8()?),
            4 => Node::Nsu(r.u8()?),
            5 => Node::BufMgr,
            d => {
                return Err(crate::snap::SnapError(format!(
                    "unknown Node discriminant {d}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_hmc_extraction() {
        assert_eq!(Node::Vault(3, 7).hmc(), Some(HmcId(3)));
        assert_eq!(Node::Nsu(5).hmc(), Some(HmcId(5)));
        assert_eq!(Node::Hmc(1).hmc(), Some(HmcId(1)));
        assert_eq!(Node::Sm(0).hmc(), None);
        assert_eq!(Node::L2(2).hmc(), None);
    }

    #[test]
    fn node_gpu_location() {
        assert!(Node::Sm(12).on_gpu());
        assert!(Node::L2(0).on_gpu());
        assert!(Node::BufMgr.on_gpu());
        assert!(!Node::Hmc(0).on_gpu());
        assert!(!Node::Vault(0, 0).on_gpu());
        assert!(!Node::Nsu(0).on_gpu());
    }
}
