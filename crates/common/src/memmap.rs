//! Physical address mapping: page→HMC, line→vault/bank/row.
//!
//! The evaluation maps pages to HMCs *randomly* at 4 KB granularity (§5) —
//! the whole point of the paper is that NDP must work with data spread
//! arbitrarily across stacks. We implement the random page map as a keyed
//! hash of the page number, which is O(1) in space, deterministic under the
//! run seed, and statistically uniform. Within a stack, consecutive cache
//! lines interleave across vaults, and banks/rows split the remaining bits —
//! the usual HMC-style vault addressing.

use crate::config::SystemConfig;
use crate::ids::{HmcId, VaultId};
use crate::rng::splitmix64;

/// Address decomposition for the memory system.
#[derive(Debug, Clone, Copy)]
pub struct MemMap {
    page_bytes: u64,
    line_bytes: u64,
    num_hmcs: u64,
    vaults: u64,
    banks: u64,
    row_bytes: u64,
    seed: u64,
}

/// A fully decoded DRAM coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramCoord {
    pub hmc: HmcId,
    pub vault: VaultId,
    pub bank: u8,
    pub row: u64,
}

impl MemMap {
    pub fn new(cfg: &SystemConfig) -> Self {
        MemMap {
            page_bytes: cfg.page_bytes,
            line_bytes: cfg.gpu.line_bytes as u64,
            num_hmcs: cfg.hmc.num_hmcs as u64,
            vaults: cfg.hmc.vaults_per_hmc as u64,
            banks: cfg.hmc.banks_per_vault as u64,
            row_bytes: cfg.hmc.row_bytes as u64,
            seed: cfg.seed,
        }
    }

    /// The stack holding `addr` (random 4 KB page interleaving).
    #[inline]
    pub fn hmc_of(&self, addr: u64) -> HmcId {
        let page = addr / self.page_bytes;
        HmcId((splitmix64(page ^ self.seed) % self.num_hmcs) as u8)
    }

    /// The vault within the stack (line-interleaved).
    #[inline]
    pub fn vault_of(&self, addr: u64) -> VaultId {
        VaultId(((addr / self.line_bytes) % self.vaults) as u8)
    }

    /// Full DRAM coordinate.
    #[inline]
    pub fn decode(&self, addr: u64) -> DramCoord {
        let line = addr / self.line_bytes;
        let vault_local = line / self.vaults; // line index within the vault
        let bank = (vault_local % self.banks) as u8;
        let row = vault_local / self.banks * self.line_bytes / self.row_bytes;
        // Rows hold row_bytes/line_bytes lines of the same bank.
        let lines_per_row = (self.row_bytes / self.line_bytes).max(1);
        let row = row.max(vault_local / self.banks / lines_per_row);
        DramCoord {
            hmc: self.hmc_of(addr),
            vault: self.vault_of(addr),
            bank,
            row,
        }
    }

    /// Cache-line base address of `addr`.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    pub fn num_hmcs(&self) -> usize {
        self.num_hmcs as usize
    }

    /// Search the first `pages` pages for an address that decodes to the
    /// given stack and vault. With the random page map there is no closed
    /// form, but a short scan finds every (hmc, vault) pair with
    /// overwhelming probability; an exhausted scan is a typed error, not a
    /// panic (test helpers used to panic here).
    pub fn find_addr(
        &self,
        hmc: HmcId,
        vault: VaultId,
        pages: u64,
    ) -> Result<u64, crate::error::SimError> {
        for page in 0..pages {
            let base = page * self.page_bytes;
            if self.hmc_of(base) != hmc {
                continue;
            }
            for line in 0..(self.page_bytes / self.line_bytes) {
                let addr = base + line * self.line_bytes;
                if self.vault_of(addr) == vault {
                    return Ok(addr);
                }
            }
        }
        Err(crate::error::SimError::NoAddrForVault {
            hmc: hmc.0,
            vault: vault.0,
            pages_searched: pages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> MemMap {
        MemMap::new(&SystemConfig::default())
    }

    #[test]
    fn same_page_same_hmc() {
        let m = map();
        let a = 0x1234_5000u64;
        for off in [0u64, 128, 4095] {
            assert_eq!(m.hmc_of(a + off), m.hmc_of(a));
        }
    }

    #[test]
    fn pages_spread_roughly_uniformly() {
        let m = map();
        let mut hist = [0u64; 8];
        let n = 80_000u64;
        for p in 0..n {
            hist[m.hmc_of(p * 4096).0 as usize] += 1;
        }
        for (h, &c) in hist.iter().enumerate() {
            let expect = n / 8;
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < expect / 5,
                "hmc {h}: {c}"
            );
        }
    }

    #[test]
    fn consecutive_lines_interleave_vaults() {
        let m = map();
        assert_eq!(m.vault_of(0), VaultId(0));
        assert_eq!(m.vault_of(128), VaultId(1));
        assert_eq!(m.vault_of(128 * 16), VaultId(0));
    }

    #[test]
    fn decode_is_stable_and_in_range() {
        let m = map();
        for i in 0..10_000u64 {
            let addr = i * 4 + (i % 7) * 131;
            let c = m.decode(addr);
            assert!(c.hmc.0 < 8);
            assert!(c.vault.0 < 16);
            assert!(c.bank < 16);
            assert_eq!(c, m.decode(addr));
        }
    }

    #[test]
    fn line_of_masks_low_bits() {
        let m = map();
        assert_eq!(m.line_of(0x1234), 0x1200 & !(127));
        assert_eq!(m.line_of(0x1280), 0x1280);
        assert_eq!(m.line_of(0x12ff), 0x1280);
    }

    #[test]
    fn find_addr_hits_every_hmc_vault_pair() {
        let m = map();
        for h in 0..8u8 {
            for v in 0..16u8 {
                let addr = m.find_addr(HmcId(h), VaultId(v), 4096).unwrap();
                assert_eq!(m.hmc_of(addr), HmcId(h));
                assert_eq!(m.vault_of(addr), VaultId(v));
            }
        }
    }

    #[test]
    fn find_addr_returns_typed_error_when_exhausted() {
        let m = map();
        // Zero pages searched can never match.
        let err = m.find_addr(HmcId(0), VaultId(0), 0).unwrap_err();
        assert!(matches!(
            err,
            crate::error::SimError::NoAddrForVault {
                hmc: 0,
                vault: 0,
                ..
            }
        ));
    }

    #[test]
    fn seed_changes_page_map() {
        let mut cfg = SystemConfig::default();
        let m1 = MemMap::new(&cfg);
        cfg.seed ^= 0xdead_beef;
        let m2 = MemMap::new(&cfg);
        let differing = (0..1000u64)
            .filter(|&p| m1.hmc_of(p * 4096) != m2.hmc_of(p * 4096))
            .count();
        assert!(differing > 500, "only {differing} pages moved");
    }
}
