//! Centralized `NDP_*` environment-variable parsing.
//!
//! Every knob the simulator reads from the environment is declared in
//! [`KNOWN`] and parsed through the typed helpers here. Malformed values
//! produce a loud [`EnvError`] naming the variable and the offending text
//! instead of the silent `.ok()` fallbacks that used to be scattered across
//! `invariant.rs`, `fault.rs`, `system.rs` and the bench binaries.
//! `ndp-lint` additionally scans the process environment for unknown
//! `NDP_`-prefixed names and reports them as likely typos.

use std::fmt;
use std::str::FromStr;

/// A malformed environment variable: the name, the raw value, and what the
/// parser expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    pub var: &'static str,
    pub value: String,
    pub expected: &'static str,
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {}={:?}: expected {}",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvError {}

/// Parse `var` as a `T`. `Ok(None)` when unset; `Err` when set but
/// unparseable (never a silent fallback).
pub fn parse<T: FromStr>(var: &'static str) -> Result<Option<T>, EnvError> {
    match std::env::var(var) {
        Err(_) => Ok(None),
        Ok(raw) => match raw.trim().parse::<T>() {
            Ok(v) => Ok(Some(v)),
            Err(_) => Err(EnvError {
                var,
                value: raw,
                expected: "a number",
            }),
        },
    }
}

/// Parse `var` as a boolean flag. Accepts `0`/`1`/`true`/`false`
/// (case-insensitive). `Ok(None)` when unset.
pub fn flag(var: &'static str) -> Result<Option<bool>, EnvError> {
    match std::env::var(var) {
        Err(_) => Ok(None),
        Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "1" | "true" => Ok(Some(true)),
            "0" | "false" => Ok(Some(false)),
            _ => Err(EnvError {
                var,
                value: raw,
                expected: "0, 1, true or false",
            }),
        },
    }
}

/// [`parse`] for construction paths that have no `Result` channel: a
/// malformed value panics with the typed message (a misconfigured run must
/// not silently proceed with defaults).
pub fn parse_or_die<T: FromStr>(var: &'static str) -> Option<T> {
    match parse(var) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// [`flag`] with the same panic-on-malformed policy as [`parse_or_die`].
pub fn flag_or_die(var: &'static str) -> Option<bool> {
    match flag(var) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// Read `var` as a free-form string (file-system paths and the like —
/// anything non-empty is valid, so there is no error channel). `None`
/// when unset or blank.
pub fn string(var: &'static str) -> Option<String> {
    std::env::var(var)
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
}

/// Every environment variable the simulator understands, with a one-line
/// description. `ndp-lint` treats any other `NDP_`-prefixed name as a
/// likely typo.
pub const KNOWN: &[(&str, &str)] = &[
    (
        "NDP_WATCHDOG",
        "forward-progress watchdog threshold in cycles (0 disables)",
    ),
    (
        "NDP_DEEP_INVARIANTS",
        "force deep per-token invariant checking on (1) or off (0)",
    ),
    ("NDP_FAULT_SEED", "fault-injector RNG seed (u64)"),
    ("NDP_FAULT_DROP", "per-packet drop probability (f64)"),
    ("NDP_FAULT_DUP", "per-packet duplication probability (f64)"),
    ("NDP_FAULT_DELAY_P", "per-packet delay probability (f64)"),
    (
        "NDP_FAULT_DELAY_CYCLES",
        "cycles a delayed packet is held (u64)",
    ),
    (
        "NDP_FAULT_WITHHOLD_CREDITS",
        "swallow NSU credit returns (wedge test)",
    ),
    ("NDP_WARPS", "bench harness warp-count override (u32)"),
    ("NDP_ITERS", "bench harness iteration-count override (u32)"),
    (
        "NDP_EPOCH",
        "offload-controller epoch override in cycles (u64)",
    ),
    (
        "NDP_STRICT_TIMEOUT",
        "bench harness: treat timeouts as fatal (flag)",
    ),
    (
        "NDP_BLESS",
        "golden-determinism test: rewrite the golden files (flag)",
    ),
    (
        "NDP_PERF",
        "enable the simulator's perf self-profiling layer (flag)",
    ),
    (
        "NDP_PERF_STRIDE",
        "pipeline passes between wall-clock-sampled passes (u64, default 64)",
    ),
    (
        "NDP_PERF_HEARTBEAT",
        "cycles between perf heartbeat snapshots (u64; 0 disables)",
    ),
    (
        "NDP_PERF_STDERR",
        "print each perf heartbeat to stderr as it is taken (flag)",
    ),
    (
        "NDP_PERF_TOL",
        "bench_baseline --check: allowed throughput regression fraction (f64, default 0.15)",
    ),
    (
        "NDP_NO_SKIP",
        "disable quiescence-aware stage skipping and next-event jumps (flag)",
    ),
    (
        "NDP_PARALLEL",
        "tick stack/NSU interiors on scoped threads within each cycle (flag)",
    ),
    (
        "NDP_CHECKPOINT_EVERY",
        "cycles between periodic checkpoints (u64; 0 disables; requires NDP_CHECKPOINT_PATH)",
    ),
    (
        "NDP_CHECKPOINT_PATH",
        "checkpoint target: a file, or a directory for per-workload files",
    ),
    (
        "NDP_RESUME",
        "resume from a checkpoint file (or per-workload directory) instead of starting fresh",
    ),
    (
        "NDP_STALL_DUMP",
        "directory to dump a post-mortem checkpoint into when the watchdog fires",
    ),
    (
        "NDP_RACE",
        "arm the deterministic shared-state race detector (flag)",
    ),
    (
        "NDP_RACE_LOG",
        "retain a bounded per-access trace while the race detector is armed (flag)",
    ),
];

/// `NDP_`-prefixed variables set in the process environment that are not in
/// [`KNOWN`], each paired with the closest known name (edit distance ≤ 3)
/// as a "did you mean" suggestion.
pub fn unknown_ndp_vars() -> Vec<(String, Option<&'static str>)> {
    let mut out: Vec<(String, Option<&'static str>)> = std::env::vars()
        .filter(|(name, _)| name.starts_with("NDP_"))
        .filter(|(name, _)| KNOWN.iter().all(|(k, _)| k != name))
        .map(|(name, _)| {
            let suggestion = KNOWN
                .iter()
                .map(|(k, _)| (*k, edit_distance(&name, k)))
                .filter(|(_, d)| *d <= 3)
                .min_by_key(|(_, d)| *d)
                .map(|(k, _)| k);
            (name, suggestion)
        })
        .collect();
    out.sort();
    out
}

/// Levenshtein distance, used only for typo suggestions on the handful of
/// `NDP_*` names — O(|a|·|b|) is fine at that scale.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var mutation is process-global; use names no other test reads and
    // restore afterwards.

    #[test]
    fn parse_typed_and_absent() {
        assert_eq!(parse::<u64>("NDP_TEST_UNSET_XYZ"), Ok(None));
        std::env::set_var("NDP_TEST_PARSE_A", "42");
        assert_eq!(parse::<u64>("NDP_TEST_PARSE_A"), Ok(Some(42)));
        std::env::set_var("NDP_TEST_PARSE_A", "4x2");
        let err = parse::<u64>("NDP_TEST_PARSE_A").unwrap_err();
        assert_eq!(err.var, "NDP_TEST_PARSE_A");
        assert!(err.to_string().contains("4x2"), "{err}");
        std::env::remove_var("NDP_TEST_PARSE_A");
    }

    #[test]
    fn flag_accepts_bool_spellings() {
        std::env::set_var("NDP_TEST_FLAG_B", "TRUE");
        assert_eq!(flag("NDP_TEST_FLAG_B"), Ok(Some(true)));
        std::env::set_var("NDP_TEST_FLAG_B", "0");
        assert_eq!(flag("NDP_TEST_FLAG_B"), Ok(Some(false)));
        std::env::set_var("NDP_TEST_FLAG_B", "yes");
        assert!(flag("NDP_TEST_FLAG_B").is_err());
        std::env::remove_var("NDP_TEST_FLAG_B");
    }

    #[test]
    fn typo_detection_suggests_nearest_known() {
        std::env::set_var("NDP_WATCHDOk", "100");
        let unknown = unknown_ndp_vars();
        let hit = unknown
            .iter()
            .find(|(name, _)| name == "NDP_WATCHDOk")
            .expect("typo var reported");
        assert_eq!(hit.1, Some("NDP_WATCHDOG"));
        std::env::remove_var("NDP_WATCHDOk");
    }

    #[test]
    fn typo_detection_covers_perf_knobs() {
        // The perf surface is registered: NDP_PERF itself is known (not a
        // typo), and a misspelled perf knob suggests the real one.
        assert!(KNOWN.iter().any(|(k, _)| *k == "NDP_PERF"));
        std::env::set_var("NDP_PERF_STRIDES", "32");
        let unknown = unknown_ndp_vars();
        let hit = unknown
            .iter()
            .find(|(name, _)| name == "NDP_PERF_STRIDES")
            .expect("typoed perf knob reported");
        assert_eq!(hit.1, Some("NDP_PERF_STRIDE"));
        std::env::remove_var("NDP_PERF_STRIDES");
    }

    #[test]
    fn typo_detection_covers_event_core_knobs() {
        // The event-driven-core surface is registered: the real names are
        // known (not typos), and a misspelled knob suggests the real one.
        for k in ["NDP_NO_SKIP", "NDP_PARALLEL"] {
            assert!(KNOWN.iter().any(|(n, _)| *n == k), "{k} unregistered");
        }
        std::env::set_var("NDP_PARALEL", "1");
        let unknown = unknown_ndp_vars();
        let hit = unknown
            .iter()
            .find(|(name, _)| name == "NDP_PARALEL")
            .expect("typoed event-core knob reported");
        assert_eq!(hit.1, Some("NDP_PARALLEL"));
        std::env::remove_var("NDP_PARALEL");
    }

    #[test]
    fn typo_detection_covers_checkpoint_knobs() {
        // The checkpoint/resume surface is registered: the real names are
        // known (not typos), and a misspelled knob suggests the real one.
        for k in [
            "NDP_CHECKPOINT_EVERY",
            "NDP_CHECKPOINT_PATH",
            "NDP_RESUME",
            "NDP_STALL_DUMP",
        ] {
            assert!(KNOWN.iter().any(|(n, _)| *n == k), "{k} unregistered");
        }
        std::env::set_var("NDP_RESUM", "ckpt.bin");
        let unknown = unknown_ndp_vars();
        let hit = unknown
            .iter()
            .find(|(name, _)| name == "NDP_RESUM")
            .expect("typoed checkpoint knob reported");
        assert_eq!(hit.1, Some("NDP_RESUME"));
        std::env::remove_var("NDP_RESUM");
    }

    #[test]
    fn typo_detection_covers_race_knobs() {
        // The race-detector surface is registered: the real names are
        // known (not typos), and a misspelled knob suggests the real one.
        for k in ["NDP_RACE", "NDP_RACE_LOG"] {
            assert!(KNOWN.iter().any(|(n, _)| *n == k), "{k} unregistered");
        }
        std::env::set_var("NDP_RACE_LOGG", "1");
        let unknown = unknown_ndp_vars();
        let hit = unknown
            .iter()
            .find(|(name, _)| name == "NDP_RACE_LOGG")
            .expect("typoed race knob reported");
        assert_eq!(hit.1, Some("NDP_RACE_LOG"));
        std::env::remove_var("NDP_RACE_LOGG");
    }

    #[test]
    fn string_vars_pass_through_trimmed() {
        assert_eq!(string("NDP_TEST_STR_UNSET"), None);
        std::env::set_var("NDP_TEST_STR_C", "  /tmp/x.ckpt ");
        assert_eq!(string("NDP_TEST_STR_C").as_deref(), Some("/tmp/x.ckpt"));
        std::env::set_var("NDP_TEST_STR_C", "   ");
        assert_eq!(string("NDP_TEST_STR_C"), None, "blank counts as unset");
        std::env::remove_var("NDP_TEST_STR_C");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("NDP_WARP", "NDP_WARPS"), 1);
    }
}
