//! Structured simulation errors.
//!
//! Protocol bugs used to surface as bare `panic!`s scattered across the
//! crates, or as a silent `timed_out=true` after burning all the way to the
//! cycle cap. Every failure the fabric can detect is now a [`SimError`]
//! variant carrying the component, cycle, and packet context needed to
//! debug it — `System::run` returns `Result<RunResult, SimError>` and the
//! fabric propagates these from the routing table, the delivery paths, and
//! the invariant engine.

use std::fmt;

use crate::ids::{Cycle, Node};
use crate::packet::Packet;

/// A compact, owned description of a packet for error and stall reports.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketSummary {
    pub src: Node,
    pub dst: Node,
    pub kind: &'static str,
    pub size: u32,
    pub birth: Cycle,
    pub token: Option<u64>,
}

impl PacketSummary {
    pub fn of(p: &Packet) -> Self {
        PacketSummary {
            src: p.src,
            dst: p.dst,
            kind: Packet::KIND_NAMES[p.kind_index()],
            size: p.size,
            birth: p.birth,
            token: p.token().map(|t| t.0),
        }
    }
}

impl fmt::Display for PacketSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:?}->{:?} ({} B, born {}",
            self.kind, self.src, self.dst, self.size, self.birth
        )?;
        if let Some(t) = self.token {
            write!(f, ", token {t:#x}")?;
        }
        write!(f, ")")
    }
}

/// Everything that can go structurally wrong in a simulation run.
///
/// Timeouts and watchdog stalls are *not* errors — they come back as
/// `Ok(RunResult)` with `timed_out=true` (and a `StallReport` when the
/// watchdog fired). `SimError` is reserved for protocol violations the
/// machine model itself forbids.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The routing table has no receiver for a packet at a transmit edge.
    Unroutable {
        edge: &'static str,
        cycle: Cycle,
        packet: PacketSummary,
    },
    /// A component was handed a packet it cannot consume, or consuming it
    /// violated the component's protocol (buffer overflow past the credit
    /// bound, an ACK for an unknown warp, ...).
    BadDelivery {
        component: String,
        cycle: Cycle,
        packet: PacketSummary,
        detail: String,
    },
    /// A protocol invariant failed (CMD/ACK pairing, RDF conservation,
    /// per-token lifecycle legality, credit conservation at drain).
    InvariantViolation { cycle: Cycle, detail: String },
    /// The system drained but NSU buffer credits were never returned.
    CreditLeak {
        cycle: Cycle,
        cmd: usize,
        read: usize,
        write: usize,
    },
    /// No address in the searched range decodes to the requested stack and
    /// vault under the page map.
    NoAddrForVault {
        hmc: u8,
        vault: u8,
        pages_searched: u64,
    },
    /// A workload kernel failed ISA validation.
    InvalidKernel { name: String, detail: String },
    /// The static partition verifier (Pass 1) rejected an offload-block
    /// annotation at construction time. `location` names the block and item
    /// range, `detail` the failed check.
    BadPartition {
        kernel: String,
        location: String,
        detail: String,
    },
    /// The static fabric-graph checker (Pass 2) found the lifted pipeline
    /// ill-formed (unroutable kind, dead-end delivery, unpaired credit
    /// pool, or a bounded wait-for cycle).
    BadFabric { check: &'static str, detail: String },
    /// A checkpoint could not be restored: corrupt bytes (bad magic,
    /// checksum mismatch, truncation), an incompatible schema version, or
    /// a config/kernel fingerprint that does not match the machine the
    /// restore was attempted on. `check` names the failed gate, `detail`
    /// carries the byte-level context. Restores never panic and never
    /// resume silently wrong.
    BadCheckpoint { check: &'static str, detail: String },
    /// The `NDP_RACE=1` detector saw two members of a parallel region
    /// touch the same shared resource with at least one write. `first`
    /// and `second` name the accessors (`class[lane]`, the earlier one
    /// with the cycle of its access); the stage names the member loop.
    DataRace {
        stage: &'static str,
        resource: String,
        first: String,
        second: String,
        cycle: Cycle,
    },
    /// The `NDP_RACE=1` detector saw a member access a shared resource
    /// outside its declared `Footprint` — the static declarations the
    /// parallel-safety lint reasons from are incomplete, so the lint's
    /// verdicts cannot be trusted until the declaration is fixed.
    UndeclaredAccess {
        resource: String,
        accessor: String,
        cycle: Cycle,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Unroutable {
                edge,
                cycle,
                packet,
            } => write!(
                f,
                "cycle {cycle}: unroutable packet at edge {edge}: {packet}"
            ),
            SimError::BadDelivery {
                component,
                cycle,
                packet,
                detail,
            } => write!(f, "cycle {cycle}: {component}: {detail} ({packet})"),
            SimError::InvariantViolation { cycle, detail } => {
                write!(f, "cycle {cycle}: protocol invariant violated: {detail}")
            }
            SimError::CreditLeak {
                cycle,
                cmd,
                read,
                write,
            } => write!(
                f,
                "cycle {cycle}: credit leak at drain: {cmd} cmd / {read} read / {write} write \
                 entries never returned"
            ),
            SimError::NoAddrForVault {
                hmc,
                vault,
                pages_searched,
            } => write!(
                f,
                "no address decodes to hmc {hmc} vault {vault} in the first {pages_searched} pages"
            ),
            SimError::InvalidKernel { name, detail } => {
                write!(f, "kernel {name} invalid: {detail}")
            }
            SimError::BadPartition {
                kernel,
                location,
                detail,
            } => write!(
                f,
                "kernel {kernel}: offload partition invalid at {location}: {detail}"
            ),
            SimError::BadFabric { check, detail } => {
                write!(f, "fabric graph invalid [{check}]: {detail}")
            }
            SimError::BadCheckpoint { check, detail } => {
                write!(f, "checkpoint rejected [{check}]: {detail}")
            }
            SimError::DataRace {
                stage,
                resource,
                first,
                second,
                cycle,
            } => write!(
                f,
                "cycle {cycle}: data race on {resource} in parallel stage {stage}: \
                 {first} conflicts with {second}"
            ),
            SimError::UndeclaredAccess {
                resource,
                accessor,
                cycle,
            } => write!(
                f,
                "cycle {cycle}: {accessor} accessed {resource} outside its declared \
                 shared-state footprint"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    #[test]
    fn summary_carries_token_and_kind() {
        let p = Packet::new(
            Node::Sm(3),
            Node::Nsu(1),
            42,
            PacketKind::NsuWriteAck {
                token: crate::ids::OffloadToken(0xbeef),
            },
        );
        let s = PacketSummary::of(&p);
        assert_eq!(s.kind, "NsuWriteAck");
        assert_eq!(s.token, Some(0xbeef));
        assert_eq!(s.birth, 42);
        let text = format!("{s}");
        assert!(text.contains("NsuWriteAck"), "{text}");
        assert!(text.contains("0xbeef"), "{text}");
    }

    #[test]
    fn errors_render_with_context() {
        let p = Packet::new(
            Node::Sm(0),
            Node::BufMgr,
            7,
            PacketKind::WriteAck { addr: 0, tag: 0 },
        );
        let e = SimError::Unroutable {
            edge: "sm_out",
            cycle: 9,
            packet: PacketSummary::of(&p),
        };
        let text = format!("{e}");
        assert!(
            text.contains("sm_out") && text.contains("cycle 9"),
            "{text}"
        );
        let e = SimError::CreditLeak {
            cycle: 1,
            cmd: 2,
            read: 0,
            write: 5,
        };
        assert!(format!("{e}").contains("2 cmd"));
    }

    #[test]
    fn race_errors_name_resource_accessors_and_cycle() {
        let e = SimError::DataRace {
            stage: "tick:sms",
            resource: "ctrl.credits".into(),
            first: "sm[0] at cycle 40".into(),
            second: "sm[7]".into(),
            cycle: 41,
        };
        let text = format!("{e}");
        for needle in ["cycle 41", "ctrl.credits", "tick:sms", "sm[0]", "sm[7]"] {
            assert!(text.contains(needle), "{text}");
        }
        let e = SimError::UndeclaredAccess {
            resource: "ctrl.shadow".into(),
            accessor: "sm[2]".into(),
            cycle: 9,
        };
        let text = format!("{e}");
        assert!(
            text.contains("ctrl.shadow") && text.contains("sm[2]") && text.contains("cycle 9"),
            "{text}"
        );
    }
}
