//! Bandwidth- and latency-modelled point-to-point link.
//!
//! Used for the 8 GPU↔HMC links (20 GB/s per direction), the 3 memory-network
//! links per HMC, and (with higher bandwidth) on-die connections. A link
//! serializes one packet at a time at its configured byte rate, then the
//! packet propagates for a fixed latency. A finite input queue provides
//! backpressure to the sender.

use std::collections::VecDeque;

use crate::ids::Cycle;
use crate::packet::{Packet, PacketKind};
use crate::port::Component;

/// Traffic statistics of one link direction.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Total bytes serialized.
    pub bytes: u64,
    /// Bytes belonging to NDP-protocol packets (CMD/RDF/WTA/ACK/inval/...).
    pub ndp_bytes: u64,
    /// Bytes belonging to cache-invalidation packets alone (§4.2 overhead).
    pub inval_bytes: u64,
    /// Packets delivered.
    pub packets: u64,
    /// Cycles during which the serializer was busy.
    pub busy_cycles: u64,
    /// Bytes per packet kind (indexed by `Packet::kind_index`).
    pub kind_bytes: [u64; PacketKind::COUNT],
}

/// One direction of a link.
#[derive(Debug)]
pub struct Link {
    bytes_per_cycle: f64,
    latency: u32,
    capacity: usize,
    /// Packets waiting for the serializer (head may be partially sent).
    queue: VecDeque<(Packet, f64)>,
    /// Serialized packets in propagation: (delivery cycle, packet).
    flight: VecDeque<(Cycle, Packet)>,
    pub stats: LinkStats,
}

impl Link {
    /// Per-tick shared-state footprint: a link touches only its own
    /// queues, so the `tick:up_links`/`tick:down_links` member loops are
    /// parallel-eligible by construction (DESIGN.md §16).
    pub const FOOTPRINT: crate::footprint::Footprint = crate::footprint::Footprint::EMPTY;

    /// `capacity` is the maximum number of packets that may wait for the
    /// serializer; senders must check [`Link::can_accept`] and stall
    /// otherwise.
    pub fn new(bytes_per_cycle: f64, latency: u32, capacity: usize) -> Self {
        assert!(bytes_per_cycle > 0.0, "link needs positive bandwidth");
        Link {
            bytes_per_cycle,
            latency,
            capacity,
            queue: VecDeque::new(),
            flight: VecDeque::new(),
            stats: LinkStats::default(),
        }
    }

    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.capacity
    }

    /// Number of packets waiting or in flight.
    pub fn in_transit(&self) -> usize {
        self.queue.len() + self.flight.len()
    }

    /// Enqueue a packet for transmission. Returns the packet back if the
    /// input queue is full (the caller must retry later).
    pub fn push(&mut self, p: Packet) -> Result<(), Packet> {
        if !self.can_accept() {
            return Err(p);
        }
        let rem = p.size as f64;
        self.queue.push_back((p, rem));
        Ok(())
    }

    /// Advance the serializer by one cycle.
    pub fn tick(&mut self, now: Cycle) {
        if self.queue.is_empty() {
            return;
        }
        self.stats.busy_cycles += 1;
        let mut budget = self.bytes_per_cycle;
        while budget > 0.0 {
            let Some(front) = self.queue.front_mut() else {
                break;
            };
            let take = budget.min(front.1);
            front.1 -= take;
            budget -= take;
            if front.1 <= 1e-9 {
                let (p, _) = self.queue.pop_front().expect("front exists");
                self.account(&p);
                self.flight.push_back((now + self.latency as Cycle + 1, p));
            }
        }
    }

    fn account(&mut self, p: &Packet) {
        self.stats.bytes += p.size as u64;
        self.stats.packets += 1;
        self.stats.kind_bytes[p.kind_index()] += p.size as u64;
        if p.is_ndp() {
            self.stats.ndp_bytes += p.size as u64;
        }
        if matches!(p.kind, PacketKind::CacheInval { .. }) {
            self.stats.inval_bytes += p.size as u64;
        }
    }

    /// Inspect the next delivered packet without removing it.
    pub fn peek_ready(&self, now: Cycle) -> Option<&Packet> {
        match self.flight.front() {
            Some(&(ready, ref p)) if ready <= now => Some(p),
            _ => None,
        }
    }

    /// Take the next delivered packet, if its propagation finished.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<Packet> {
        if let Some(&(ready, _)) = self.flight.front() {
            if ready <= now {
                return self.flight.pop_front().map(|(_, p)| p);
            }
        }
        None
    }

    /// True when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.flight.is_empty()
    }

    /// Delivery cycle of the oldest in-flight packet, `None` when nothing
    /// has finished serializing. Flights deliver in FIFO order, so this is
    /// the earliest cycle at which [`Link::pop_ready`] can succeed — the
    /// receive-side quiescence horizon (the serializer queue is the
    /// tick-side horizon, [`Component::next_work_at`]).
    pub fn next_delivery_at(&self) -> Option<Cycle> {
        self.flight.front().map(|&(ready, _)| ready)
    }

    /// Checkpoint the serializer queue (with bit-exact partial-send
    /// remainders), the in-flight packets, and the traffic statistics.
    /// Bandwidth/latency/capacity are config-derived and come from fresh
    /// construction on restore.
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.len(self.queue.len());
        for (p, rem) in &self.queue {
            p.snap(w);
            w.f64(*rem);
        }
        w.len(self.flight.len());
        for (ready, p) in &self.flight {
            w.u64(*ready);
            p.snap(w);
        }
        w.u64(self.stats.bytes);
        w.u64(self.stats.ndp_bytes);
        w.u64(self.stats.inval_bytes);
        w.u64(self.stats.packets);
        w.u64(self.stats.busy_cycles);
        for b in &self.stats.kind_bytes {
            w.u64(*b);
        }
    }

    /// Overwrite the mutable link state from a checkpoint stream.
    pub fn restore(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        self.queue.clear();
        for _ in 0..r.len()? {
            let p = Packet::restore(r)?;
            let rem = r.f64()?;
            self.queue.push_back((p, rem));
        }
        self.flight.clear();
        for _ in 0..r.len()? {
            let ready = r.u64()?;
            self.flight.push_back((ready, Packet::restore(r)?));
        }
        self.stats.bytes = r.u64()?;
        self.stats.ndp_bytes = r.u64()?;
        self.stats.inval_bytes = r.u64()?;
        self.stats.packets = r.u64()?;
        self.stats.busy_cycles = r.u64()?;
        for b in &mut self.stats.kind_bytes {
            *b = r.u64()?;
        }
        Ok(())
    }
}

impl Component for Link {
    fn tick(&mut self, now: Cycle) {
        Link::tick(self, now);
    }

    // `tick` with an empty serializer queue is a pure no-op (early return
    // before any accounting), so skipped cycles need no `note_skipped`
    // replay and the horizon is simply queue occupancy.
    fn next_work_at(&self, now: Cycle) -> Option<Cycle> {
        if self.queue.is_empty() {
            None
        } else {
            Some(now)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Node;
    use crate::packet::PacketKind;

    fn pkt(bytes: u32) -> Packet {
        // ReadResp size = header + bytes; craft to the exact requested size.
        let body = bytes.saturating_sub(crate::packet::HEADER_BYTES);
        Packet::new(
            Node::Sm(0),
            Node::Hmc(0),
            0,
            PacketKind::ReadResp {
                addr: 0,
                bytes: body,
                tag: 0,
            },
        )
    }

    fn drain(link: &mut Link, until: Cycle) -> Vec<(Cycle, Packet)> {
        let mut out = vec![];
        for now in 0..until {
            link.tick(now);
            while let Some(p) = link.pop_ready(now) {
                out.push((now, p));
            }
        }
        out
    }

    #[test]
    fn serialization_delay_matches_bandwidth() {
        // 16 B/cycle, zero latency: a 32 B packet takes 2 cycles to serialize.
        let mut link = Link::new(16.0, 0, 8);
        link.push(pkt(32)).unwrap();
        let got = drain(&mut link, 10);
        assert_eq!(got.len(), 1);
        // Serialized during cycles 0..=1, delivered at 1 + 0 + 1 = 2.
        assert_eq!(got[0].0, 2);
    }

    #[test]
    fn latency_adds_to_serialization() {
        let mut link = Link::new(16.0, 5, 8);
        link.push(pkt(16)).unwrap();
        let got = drain(&mut link, 20);
        assert_eq!(got[0].0, 6); // done serializing at 0, +5 latency, +1
    }

    #[test]
    fn back_to_back_packets_pipeline() {
        // Two 16 B packets on a 16 B/cycle link leave one cycle apart.
        let mut link = Link::new(16.0, 0, 8);
        link.push(pkt(16)).unwrap();
        link.push(pkt(16)).unwrap();
        let got = drain(&mut link, 10);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0 + 1, got[1].0);
    }

    #[test]
    fn throughput_is_bandwidth_limited() {
        // 10 packets × 160 B on a 16 B/cycle link: 1600 B / 16 = 100 cycles.
        let mut link = Link::new(16.0, 0, 16);
        for _ in 0..10 {
            link.push(pkt(160)).unwrap();
        }
        let got = drain(&mut link, 200);
        assert_eq!(got.len(), 10);
        let last = got.last().unwrap().0;
        assert!((100..=102).contains(&last), "last delivery at {last}");
    }

    #[test]
    fn finite_queue_applies_backpressure() {
        let mut link = Link::new(1.0, 0, 2);
        assert!(link.push(pkt(16)).is_ok());
        assert!(link.push(pkt(16)).is_ok());
        assert!(!link.can_accept());
        assert!(link.push(pkt(16)).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut link = Link::new(64.0, 0, 8);
        link.push(pkt(32)).unwrap();
        link.push(pkt(64)).unwrap();
        drain(&mut link, 10);
        assert_eq!(link.stats.packets, 2);
        assert_eq!(link.stats.bytes, 96);
        assert!(link.is_idle());
    }
}
