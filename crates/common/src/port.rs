//! Simulation fabric: typed ports, a component tick trait, and a
//! declarative routing pipeline.
//!
//! Every structural queue in the simulator is one of two port types:
//!
//! * [`OutPort`] — a bounded egress FIFO. The owning component pushes
//!   packets in; the fabric pops them toward a receiver. Capacity is the
//!   backpressure bound: senders must check [`OutPort::can_accept`].
//! * [`InPort`] — a latency-stamped ingress FIFO. Each packet carries the
//!   cycle at which it becomes visible; the head is popped only once ready
//!   (head-of-line ordering is preserved even if a later entry stamps an
//!   earlier ready cycle).
//!
//! Inter-component traffic is executed by a [`Fabric`]: a declarative list
//! of [`Stage`]s, each either ticking a component ([`Op::Tick`]), moving
//! packets across one edge of the routing table ([`Op::Route`]), or running
//! a non-packet side channel ([`Op::Side`]). All edges share one movement
//! loop, [`run_edge`], which applies uniform head-of-line backpressure and
//! is the single site where packets are observed ([`FabricCtx::observe`]).
//! Components plug in by exposing their ports through a [`FabricCtx`]
//! implementation and appearing in the pipeline's stage list.

use std::collections::VecDeque;
use std::ops::Index;

use crate::error::SimError;
use crate::fault::{FaultAction, InjectedFault};
use crate::ids::Cycle;
use crate::obs::perf::StageOutcome;
use crate::obs::TraceSite;
use crate::packet::Packet;

/// Buffer-entry releases to piggyback back to the GPU's buffer manager
/// (§4.3). Drained each NSU cycle by a fabric side-channel stage; carries
/// no wire traffic.
#[derive(Debug, Default, Clone, Copy)]
pub struct CreditEvents {
    pub cmd: u32,
    pub read: u32,
    pub write: u32,
}

/// A bounded egress FIFO: the component pushes, the fabric pops.
///
/// Capacity is the uniform backpressure bound. Pushing past capacity is a
/// protocol violation (senders must gate on [`OutPort::can_accept`]) and
/// trips a debug assertion.
#[derive(Debug, Clone)]
pub struct OutPort {
    q: VecDeque<Packet>,
    capacity: usize,
}

impl OutPort {
    pub fn new(capacity: usize) -> Self {
        OutPort {
            q: VecDeque::new(),
            capacity,
        }
    }

    /// A port with no backpressure bound (drained unconditionally every
    /// cycle by the fabric, so depth stays transient).
    pub fn unbounded() -> Self {
        OutPort::new(usize::MAX)
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Room for one more packet?
    pub fn can_accept(&self) -> bool {
        self.q.len() < self.capacity
    }

    pub fn push_back(&mut self, p: Packet) {
        debug_assert!(
            self.q.len() < self.capacity,
            "OutPort overflow: capacity {} exceeded",
            self.capacity
        );
        self.q.push_back(p);
    }

    pub fn pop_front(&mut self) -> Option<Packet> {
        self.q.pop_front()
    }

    pub fn front(&self) -> Option<&Packet> {
        self.q.front()
    }

    pub fn len(&self) -> usize {
        self.q.len()
    }

    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Packet> {
        self.q.iter()
    }

    pub fn clear(&mut self) {
        self.q.clear()
    }

    pub fn retain(&mut self, f: impl FnMut(&Packet) -> bool) {
        self.q.retain(f)
    }

    /// Checkpoint the queued packets (capacity is config-derived and comes
    /// from fresh construction on restore).
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.len(self.q.len());
        for p in &self.q {
            p.snap(w);
        }
    }

    /// Overwrite the queue contents from a checkpoint stream.
    pub fn restore(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        self.q.clear();
        for _ in 0..r.len()? {
            self.q.push_back(Packet::restore(r)?);
        }
        Ok(())
    }
}

impl Index<usize> for OutPort {
    type Output = Packet;
    fn index(&self, i: usize) -> &Packet {
        &self.q[i]
    }
}

/// A latency-stamped ingress FIFO: each entry becomes visible at its ready
/// cycle, and the head gates everything behind it (head-of-line order).
#[derive(Debug, Clone)]
pub struct InPort {
    q: VecDeque<(Cycle, Packet)>,
    latency: Cycle,
    capacity: usize,
}

impl InPort {
    pub fn new(latency: Cycle, capacity: usize) -> Self {
        InPort {
            q: VecDeque::new(),
            latency,
            capacity,
        }
    }

    pub fn unbounded(latency: Cycle) -> Self {
        InPort::new(latency, usize::MAX)
    }

    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Room for one more packet?
    pub fn can_accept(&self) -> bool {
        self.q.len() < self.capacity
    }

    /// Enqueue with the port's configured latency.
    pub fn push(&mut self, now: Cycle, p: Packet) {
        self.push_at(now + self.latency, p);
    }

    /// Enqueue with an explicit ready cycle (ports whose delay varies per
    /// packet, e.g. an L2 hit vs. an on-die forward).
    pub fn push_at(&mut self, ready: Cycle, p: Packet) {
        debug_assert!(
            self.q.len() < self.capacity,
            "InPort overflow: capacity {} exceeded",
            self.capacity
        );
        self.q.push_back((ready, p));
    }

    /// Requeue at the head (retry-next-cycle, e.g. an MSHR-full probe).
    pub fn push_front_at(&mut self, ready: Cycle, p: Packet) {
        self.q.push_front((ready, p));
    }

    /// The head packet, if its ready cycle has arrived.
    pub fn peek_ready(&self, now: Cycle) -> Option<&Packet> {
        match self.q.front() {
            Some(&(ready, ref p)) if ready <= now => Some(p),
            _ => None,
        }
    }

    /// Take the head packet, if its ready cycle has arrived.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<Packet> {
        match self.q.front() {
            Some(&(ready, _)) if ready <= now => self.q.pop_front().map(|(_, p)| p),
            _ => None,
        }
    }

    pub fn len(&self) -> usize {
        self.q.len()
    }

    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &(Cycle, Packet)> {
        self.q.iter()
    }

    /// Ready cycle of the head entry, or `None` when empty. Because the
    /// head gates everything behind it, this is exactly the earliest cycle
    /// at which `pop_ready` can succeed — the port's quiescence horizon.
    pub fn next_ready(&self) -> Option<Cycle> {
        self.q.front().map(|&(ready, _)| ready)
    }

    /// Checkpoint the latency-stamped queue (latency/capacity are
    /// config-derived and come from fresh construction on restore).
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.len(self.q.len());
        for (ready, p) in &self.q {
            w.u64(*ready);
            p.snap(w);
        }
    }

    /// Overwrite the queue contents from a checkpoint stream.
    pub fn restore(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        self.q.clear();
        for _ in 0..r.len()? {
            let ready = r.u64()?;
            self.q.push_back((ready, Packet::restore(r)?));
        }
        Ok(())
    }
}

/// A structural component advanced once per fabric cycle.
pub trait Component {
    fn tick(&mut self, now: Cycle);

    /// Quiescence horizon: the earliest cycle at or after `now` at which
    /// ticking this component could do observable work. `None` means the
    /// component is drained (no queued, in-flight, or scheduled work);
    /// `Some(c)` with `c > now` means it is provably idle until `c`.
    ///
    /// The contract is *conservative*: a horizon may be earlier than the
    /// true next-work cycle (a spurious wake costs one exact, idle tick)
    /// but must never be later — the event-driven core skips ticks on its
    /// strength. The default `Some(now)` ("work every cycle") opts a
    /// component out of skipping entirely.
    fn next_work_at(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }

    /// The fabric proved this component quiescent and elided `k`
    /// consecutive ticks. Components whose `tick` unconditionally advances
    /// internal clocks or accumulates statistics must replay that
    /// bookkeeping here so a skipped run is bit-identical to a ticked one.
    fn note_skipped(&mut self, _k: u64) {}
}

/// The machine a [`Fabric`] executes over: port lookup, the routing table,
/// acceptance (backpressure), component ticking, side channels, and the one
/// packet-observation hook.
///
/// `Tx` names a *kind* of transmit port replicated across `lanes(tx)`
/// parallel instances; `Rx` names one concrete receiver. `Comp` names a
/// component group to tick, `Gate` a clock-enable predicate, and `Side` a
/// non-packet side channel (credit returns, controller epochs, sampling).
pub trait FabricCtx {
    type Tx: Copy;
    type Rx: Copy;
    type Comp: Copy;
    type Gate: Copy;
    type Side: Copy;

    /// Number of parallel lanes of a transmit port kind.
    fn lanes(&self, tx: Self::Tx) -> usize;
    /// Is a gated stage active this cycle?
    fn gate_open(&self, gate: Self::Gate, now: Cycle) -> bool;
    /// Head-of-line packet of one transmit lane, if ready this cycle.
    fn peek(&self, now: Cycle, tx: Self::Tx, lane: usize) -> Option<&Packet>;
    /// Routing table: the receiver of a packet at a transmit-lane head.
    /// Must return a structured error on unroutable packets — never
    /// misroute silently.
    fn route(
        &self,
        now: Cycle,
        tx: Self::Tx,
        lane: usize,
        p: &Packet,
    ) -> Result<Self::Rx, SimError>;
    /// May the receiver take this packet now? (Uniform backpressure.)
    fn can_accept(&self, rx: Self::Rx, p: &Packet) -> bool;
    /// Remove the head packet of a transmit lane (only after a successful
    /// `peek` + `can_accept` in the same cycle).
    fn pop(&mut self, now: Cycle, tx: Self::Tx, lane: usize) -> Packet;
    /// Hand a packet to its receiver. Errors are protocol violations
    /// detected at delivery (overflow past a credit bound, an ACK for an
    /// unknown warp, an unconsumable packet kind).
    fn accept(&mut self, now: Cycle, rx: Self::Rx, p: Packet) -> Result<(), SimError>;
    /// Advance one component group by one cycle.
    fn tick_comp(&mut self, now: Cycle, comp: Self::Comp);
    /// Run one non-packet side channel.
    fn side(&mut self, now: Cycle, side: Self::Side);
    /// Observation hook: called exactly once per packet movement on edges
    /// with a [`TraceSite`], from [`run_edge`] only.
    fn observe(&mut self, now: Cycle, site: TraceSite, p: &Packet);

    /// Fault-injection hook: the injector's decision for the packet at the
    /// head of a lane. The default never faults; a machine carrying a
    /// [`FaultInjector`](crate::fault::FaultInjector) forwards to it.
    fn fault(&self, _now: Cycle, _tx: Self::Tx, _p: &Packet) -> FaultAction {
        FaultAction::None
    }
    /// An injected fault actually occurred (accounting).
    fn note_fault(&mut self, _now: Cycle, _fault: InjectedFault) {}
    /// A packet crossed this edge (forward-progress hook for watchdogs).
    fn moved(&mut self, _now: Cycle, _tx: Self::Tx) {}
    /// Per-stage attribution hook: called exactly once per pipeline stage
    /// per [`Fabric::tick`], with the stage's index and what it did (ran,
    /// was clock-gated, was skipped as quiescent, or routed N packets).
    /// The perf self-profiling layer hangs off this; the default is a
    /// no-op.
    fn stage_done(&mut self, _now: Cycle, _idx: usize, _outcome: StageOutcome) {}

    /// Is quiescence-aware stage skipping on? When `false` (the default)
    /// [`Fabric::tick`] runs every gate-open stage unconditionally and
    /// never consults [`FabricCtx::stage_horizon`].
    fn skip_enabled(&self) -> bool {
        false
    }

    /// Quiescence horizon of pipeline stage `idx`: the earliest cycle at
    /// or after `now` at which running the stage could do observable work
    /// (`None` = the stage is drained). Same conservative contract as
    /// [`Component::next_work_at`] — early is a harmless spurious wake,
    /// late is a correctness bug. The default `Some(now)` makes every
    /// stage "busy now", i.e. never skipped.
    fn stage_horizon(&self, now: Cycle, _idx: usize) -> Option<Cycle> {
        Some(now)
    }
}

/// One edge of the routing table: a transmit port kind, plus the trace
/// site at which its traffic is observed (if any).
pub struct Edge<C: FabricCtx> {
    pub tx: C::Tx,
    pub site: Option<TraceSite>,
}

/// What one pipeline stage does.
pub enum Op<C: FabricCtx> {
    /// Advance a component group.
    Tick(C::Comp),
    /// Move packets across one routing-table edge.
    Route(Edge<C>),
    /// Run a non-packet side channel.
    Side(C::Side),
}

/// One stage of the fabric pipeline, with its clock gate.
pub struct Stage<C: FabricCtx> {
    pub gate: C::Gate,
    pub op: Op<C>,
}

/// What `run_edge` resolved to do with one lane-head packet.
enum Step<R> {
    /// Lane empty, or head not ready, or receiver backpressure, or an
    /// injected delay holding the head: stop draining this lane.
    Stall,
    /// Injected delay is holding the head (counts as a fault occurrence).
    Hold,
    /// Injected drop: the packet vanishes in transit.
    Drop,
    /// Normal delivery; `dup` requests a second injected copy.
    Deliver { rx: R, dup: bool },
}

/// Move packets across one edge: for every lane, drain the head packet
/// into its routed receiver until the lane empties or the receiver exerts
/// backpressure. This is the *only* packet-movement loop in the simulator,
/// the single site at which [`FabricCtx::observe`] fires, and the single
/// site at which faults are injected ([`FabricCtx::fault`]): a dropped
/// packet is popped but never delivered or observed (it vanishes on the
/// wire, so downstream conservation counters see the loss); a delayed
/// packet holds its queue head; a duplicated packet is delivered and
/// observed twice.
///
/// Returns the number of packets delivered (accepted duplicates included;
/// dropped packets excluded) — the fabric's per-stage work count.
pub fn run_edge<C: FabricCtx>(ctx: &mut C, now: Cycle, edge: &Edge<C>) -> Result<u64, SimError> {
    let mut delivered = 0u64;
    for lane in 0..ctx.lanes(edge.tx) {
        loop {
            let step = match ctx.peek(now, edge.tx, lane) {
                None => Step::Stall,
                Some(p) => match ctx.fault(now, edge.tx, p) {
                    FaultAction::Delay { until } if now < until => Step::Hold,
                    FaultAction::Drop => Step::Drop,
                    action => {
                        let rx = ctx.route(now, edge.tx, lane, p)?;
                        if ctx.can_accept(rx, p) {
                            Step::Deliver {
                                rx,
                                dup: action == FaultAction::Duplicate,
                            }
                        } else {
                            Step::Stall // head-of-line backpressure
                        }
                    }
                },
            };
            match step {
                Step::Stall => break,
                Step::Hold => {
                    ctx.note_fault(now, InjectedFault::Held);
                    break; // held head gates the lane, like backpressure
                }
                Step::Drop => {
                    let _lost = ctx.pop(now, edge.tx, lane);
                    ctx.note_fault(now, InjectedFault::Dropped);
                    // Deliberately neither observed nor counted as progress.
                }
                Step::Deliver { rx, dup } => {
                    let p = ctx.pop(now, edge.tx, lane);
                    ctx.moved(now, edge.tx);
                    if let Some(site) = edge.site {
                        ctx.observe(now, site, &p);
                    }
                    let copy = dup.then(|| p.clone());
                    ctx.accept(now, rx, p)?;
                    delivered += 1;
                    if let Some(copy) = copy {
                        // The duplicate needs its own slot; skip it if the
                        // receiver filled up on the original.
                        if ctx.can_accept(rx, &copy) {
                            ctx.note_fault(now, InjectedFault::Duplicated);
                            if let Some(site) = edge.site {
                                ctx.observe(now, site, &copy);
                            }
                            ctx.accept(now, rx, copy)?;
                            delivered += 1;
                        }
                    }
                }
            }
        }
    }
    Ok(delivered)
}

/// A declarative pipeline over a [`FabricCtx`]: executes its stages in
/// order, once per call, skipping stages whose gate is closed.
pub struct Fabric<'a, C: FabricCtx> {
    pub stages: &'a [Stage<C>],
}

impl<C: FabricCtx> Fabric<'_, C> {
    pub fn tick(&self, ctx: &mut C, now: Cycle) -> Result<(), SimError> {
        let skip = ctx.skip_enabled();
        for (idx, stage) in self.stages.iter().enumerate() {
            if !ctx.gate_open(stage.gate, now) {
                ctx.stage_done(now, idx, StageOutcome::Gated);
                continue;
            }
            // Quiescence skip: a stage provably without work this cycle is
            // elided. `stage_done(Skipped)` still fires so (a) the perf
            // identity `invocations + gated + skipped == cycles` holds and
            // (b) the ctx can replay any unconditional per-tick bookkeeping
            // (see `Component::note_skipped`).
            if skip && !matches!(ctx.stage_horizon(now, idx), Some(c) if c <= now) {
                ctx.stage_done(now, idx, StageOutcome::Skipped);
                continue;
            }
            match &stage.op {
                Op::Tick(c) => {
                    ctx.tick_comp(now, *c);
                    ctx.stage_done(now, idx, StageOutcome::Ticked);
                }
                Op::Route(e) => {
                    let moved = run_edge(ctx, now, e)?;
                    ctx.stage_done(now, idx, StageOutcome::Routed(moved));
                }
                Op::Side(s) => {
                    ctx.side(now, *s);
                    ctx.stage_done(now, idx, StageOutcome::Ticked);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Node;
    use crate::packet::PacketKind;

    fn pkt(tag: u64) -> Packet {
        Packet::new(
            Node::Sm(0),
            Node::L2(0),
            0,
            PacketKind::ReadReq {
                addr: 0x1000,
                bytes: 128,
                tag,
                block: crate::packet::NO_BLOCK,
            },
        )
    }

    fn tag_of(p: &Packet) -> u64 {
        match p.kind {
            PacketKind::ReadReq { tag, .. } => tag,
            _ => unreachable!(),
        }
    }

    #[test]
    fn outport_is_fifo_with_capacity() {
        let mut p = OutPort::new(2);
        assert!(p.can_accept());
        p.push_back(pkt(1));
        p.push_back(pkt(2));
        assert!(!p.can_accept());
        assert_eq!(p.len(), 2);
        assert_eq!(tag_of(&p[0]), 1);
        assert_eq!(tag_of(p.front().unwrap()), 1);
        assert_eq!(tag_of(&p.pop_front().unwrap()), 1);
        assert_eq!(tag_of(&p.pop_front().unwrap()), 2);
        assert!(p.is_empty());
    }

    #[test]
    fn inport_gates_on_ready_cycle() {
        let mut p = InPort::new(5, usize::MAX);
        p.push(10, pkt(1)); // ready at 15
        assert!(p.peek_ready(14).is_none());
        assert!(p.pop_ready(14).is_none());
        assert_eq!(tag_of(p.peek_ready(15).unwrap()), 1);
        assert_eq!(tag_of(&p.pop_ready(15).unwrap()), 1);
    }

    #[test]
    fn inport_head_of_line_blocks_ready_followers() {
        let mut p = InPort::new(0, usize::MAX);
        p.push_at(20, pkt(1));
        p.push_at(5, pkt(2)); // ready earlier, but behind the head
        assert!(p.pop_ready(10).is_none(), "head not ready gates the queue");
        assert_eq!(tag_of(&p.pop_ready(20).unwrap()), 1);
        assert_eq!(tag_of(&p.pop_ready(20).unwrap()), 2);
    }

    #[test]
    fn inport_push_front_retries_first() {
        let mut p = InPort::new(0, usize::MAX);
        p.push_at(0, pkt(1));
        p.push_at(0, pkt(2));
        let head = p.pop_ready(0).unwrap();
        p.push_front_at(0, head);
        assert_eq!(tag_of(&p.pop_ready(0).unwrap()), 1, "requeued head first");
    }

    /// A two-lane, one-receiver toy machine for exercising `run_edge`,
    /// with an optional scripted fault schedule keyed by packet tag.
    struct Toy {
        tx: Vec<OutPort>,
        rx: OutPort,
        observed: usize,
        faults: std::collections::HashMap<u64, FaultAction>,
        dropped: usize,
        duplicated: usize,
        held: usize,
        moves: usize,
        fail_route: bool,
        gate_closed: bool,
        skip: bool,
        horizon: Option<Cycle>,
        outcomes: Vec<(usize, StageOutcome)>,
    }

    impl Toy {
        fn new(lanes: usize, rx_capacity: usize) -> Self {
            Toy {
                tx: (0..lanes).map(|_| OutPort::unbounded()).collect(),
                rx: OutPort::new(rx_capacity),
                observed: 0,
                faults: Default::default(),
                dropped: 0,
                duplicated: 0,
                held: 0,
                moves: 0,
                fail_route: false,
                gate_closed: false,
                skip: false,
                horizon: Some(0),
                outcomes: Vec::new(),
            }
        }
    }

    impl FabricCtx for Toy {
        type Tx = ();
        type Rx = ();
        type Comp = ();
        type Gate = ();
        type Side = ();

        fn lanes(&self, _: ()) -> usize {
            self.tx.len()
        }
        fn gate_open(&self, _: (), _: Cycle) -> bool {
            !self.gate_closed
        }
        fn peek(&self, _: Cycle, _: (), lane: usize) -> Option<&Packet> {
            self.tx[lane].front()
        }
        fn route(&self, now: Cycle, _: (), _: usize, p: &Packet) -> Result<(), SimError> {
            if self.fail_route {
                return Err(SimError::Unroutable {
                    edge: "toy",
                    cycle: now,
                    packet: crate::error::PacketSummary::of(p),
                });
            }
            Ok(())
        }
        fn can_accept(&self, _: (), _: &Packet) -> bool {
            self.rx.can_accept()
        }
        fn pop(&mut self, _: Cycle, _: (), lane: usize) -> Packet {
            self.tx[lane].pop_front().expect("peeked")
        }
        fn accept(&mut self, _: Cycle, _: (), p: Packet) -> Result<(), SimError> {
            self.rx.push_back(p);
            Ok(())
        }
        fn tick_comp(&mut self, _: Cycle, _: ()) {}
        fn side(&mut self, _: Cycle, _: ()) {}
        fn observe(&mut self, _: Cycle, _: TraceSite, _: &Packet) {
            self.observed += 1;
        }
        fn fault(&self, _: Cycle, _: (), p: &Packet) -> FaultAction {
            self.faults
                .get(&tag_of(p))
                .copied()
                .unwrap_or(FaultAction::None)
        }
        fn note_fault(&mut self, _: Cycle, f: InjectedFault) {
            match f {
                InjectedFault::Dropped => self.dropped += 1,
                InjectedFault::Duplicated => self.duplicated += 1,
                InjectedFault::Held => self.held += 1,
            }
        }
        fn moved(&mut self, _: Cycle, _: ()) {
            self.moves += 1;
        }
        fn stage_done(&mut self, _: Cycle, idx: usize, outcome: StageOutcome) {
            self.outcomes.push((idx, outcome));
        }
        fn skip_enabled(&self) -> bool {
            self.skip
        }
        fn stage_horizon(&self, _: Cycle, _: usize) -> Option<Cycle> {
            self.horizon
        }
    }

    const SITE: Option<TraceSite> = Some(TraceSite::SmEject);

    #[test]
    fn run_edge_respects_backpressure_and_observes_each_move() {
        let mut toy = Toy::new(2, 3);
        for i in 0..4 {
            toy.tx[0].push_back(pkt(i));
            toy.tx[1].push_back(pkt(10 + i));
        }
        let edge = Edge { tx: (), site: SITE };
        let n = run_edge(&mut toy, 0, &edge).unwrap();
        assert_eq!(n, 3, "run_edge reports the packets it delivered");
        assert_eq!(toy.rx.len(), 3, "receiver capacity caps the cycle");
        assert_eq!(toy.observed, 3, "one observation per movement");
        assert_eq!(toy.moves, 3, "one progress note per movement");
        // Lane 0 drains before lane 1 gets a turn; order within the
        // receiver reflects the lane sweep.
        let tags: Vec<u64> = toy.rx.iter().map(tag_of).collect();
        assert_eq!(tags, vec![0, 1, 2]);
        // Draining the receiver lets the rest through, in lane order.
        toy.rx.clear();
        run_edge(&mut toy, 1, &edge).unwrap();
        let tags: Vec<u64> = toy.rx.iter().map(tag_of).collect();
        assert_eq!(tags, vec![3, 10, 11]);
    }

    #[test]
    fn dropped_packet_vanishes_unobserved() {
        let mut toy = Toy::new(1, 8);
        for i in 0..3 {
            toy.tx[0].push_back(pkt(i));
        }
        toy.faults.insert(1, FaultAction::Drop);
        let edge = Edge { tx: (), site: SITE };
        let n = run_edge(&mut toy, 0, &edge).unwrap();
        assert_eq!(n, 2, "a dropped packet is not counted as delivered");
        let tags: Vec<u64> = toy.rx.iter().map(tag_of).collect();
        assert_eq!(tags, vec![0, 2], "dropped packet never delivered");
        assert_eq!(toy.dropped, 1);
        assert_eq!(toy.observed, 2, "a drop is not observed");
        assert_eq!(toy.moves, 2, "a drop is not progress");
    }

    #[test]
    fn delayed_packet_holds_the_lane_then_flows() {
        let mut toy = Toy::new(1, 8);
        toy.tx[0].push_back(pkt(0)); // birth 0
        toy.tx[0].push_back(pkt(1));
        toy.faults.insert(0, FaultAction::Delay { until: 5 });
        let edge = Edge { tx: (), site: SITE };
        run_edge(&mut toy, 0, &edge).unwrap();
        assert!(toy.rx.is_empty(), "held head gates the whole lane");
        assert_eq!(toy.held, 1);
        run_edge(&mut toy, 5, &edge).unwrap();
        let tags: Vec<u64> = toy.rx.iter().map(tag_of).collect();
        assert_eq!(tags, vec![0, 1], "order preserved after the hold");
    }

    #[test]
    fn duplicated_packet_is_delivered_and_observed_twice() {
        let mut toy = Toy::new(1, 8);
        toy.tx[0].push_back(pkt(7));
        toy.faults.insert(7, FaultAction::Duplicate);
        let edge = Edge { tx: (), site: SITE };
        let n = run_edge(&mut toy, 0, &edge).unwrap();
        assert_eq!(n, 2, "an accepted duplicate counts as a delivery");
        let tags: Vec<u64> = toy.rx.iter().map(tag_of).collect();
        assert_eq!(tags, vec![7, 7]);
        assert_eq!(toy.duplicated, 1);
        assert_eq!(toy.observed, 2);
    }

    #[test]
    fn fabric_reports_stage_outcomes_in_stage_order() {
        let mut toy = Toy::new(1, 8);
        toy.tx[0].push_back(pkt(1));
        toy.tx[0].push_back(pkt(2));
        let fabric = Fabric {
            stages: &[
                Stage {
                    gate: (),
                    op: Op::Tick(()),
                },
                Stage {
                    gate: (),
                    op: Op::Route(Edge { tx: (), site: SITE }),
                },
                Stage {
                    gate: (),
                    op: Op::Side(()),
                },
            ],
        };
        fabric.tick(&mut toy, 0).unwrap();
        assert_eq!(
            toy.outcomes,
            vec![
                (0, StageOutcome::Ticked),
                (1, StageOutcome::Routed(2)),
                (2, StageOutcome::Ticked),
            ]
        );
        // Empty lane: the routing stage is an idle tick, not a move.
        toy.outcomes.clear();
        fabric.tick(&mut toy, 1).unwrap();
        assert_eq!(toy.outcomes[1], (1, StageOutcome::Routed(0)));
        // Closed gate: every stage reports Gated and does nothing.
        toy.outcomes.clear();
        toy.gate_closed = true;
        toy.tx[0].push_back(pkt(3));
        fabric.tick(&mut toy, 2).unwrap();
        assert_eq!(
            toy.outcomes,
            vec![
                (0, StageOutcome::Gated),
                (1, StageOutcome::Gated),
                (2, StageOutcome::Gated),
            ]
        );
        assert_eq!(toy.tx[0].len(), 1, "gated routing stage moved nothing");
    }

    #[test]
    fn quiescent_stages_are_skipped_only_when_enabled() {
        let stages = [
            Stage {
                gate: (),
                op: Op::Tick(()),
            },
            Stage {
                gate: (),
                op: Op::Route(Edge { tx: (), site: SITE }),
            },
        ];
        let fabric = Fabric { stages: &stages };

        // Horizon in the future but skipping off: stages run normally.
        let mut toy = Toy::new(1, 8);
        toy.tx[0].push_back(pkt(1));
        toy.horizon = Some(100);
        fabric.tick(&mut toy, 0).unwrap();
        assert_eq!(
            toy.outcomes,
            vec![(0, StageOutcome::Ticked), (1, StageOutcome::Routed(1))]
        );

        // Skipping on + future horizon: both stages report Skipped and the
        // routing stage moves nothing.
        let mut toy = Toy::new(1, 8);
        toy.tx[0].push_back(pkt(1));
        toy.skip = true;
        toy.horizon = Some(100);
        fabric.tick(&mut toy, 0).unwrap();
        assert_eq!(
            toy.outcomes,
            vec![(0, StageOutcome::Skipped), (1, StageOutcome::Skipped)]
        );
        assert_eq!(toy.tx[0].len(), 1, "skipped routing stage moved nothing");

        // Drained (`None`) also skips; a horizon that has arrived runs.
        toy.outcomes.clear();
        toy.horizon = None;
        fabric.tick(&mut toy, 1).unwrap();
        assert_eq!(toy.outcomes[0], (0, StageOutcome::Skipped));
        toy.outcomes.clear();
        toy.horizon = Some(2);
        fabric.tick(&mut toy, 2).unwrap();
        assert_eq!(
            toy.outcomes,
            vec![(0, StageOutcome::Ticked), (1, StageOutcome::Routed(1))]
        );

        // A closed gate wins over skipping: Gated, not Skipped.
        toy.outcomes.clear();
        toy.gate_closed = true;
        fabric.tick(&mut toy, 3).unwrap();
        assert_eq!(toy.outcomes[0], (0, StageOutcome::Gated));
    }

    #[test]
    fn inport_next_ready_is_the_head_ready_cycle() {
        let mut p = InPort::new(0, usize::MAX);
        assert_eq!(p.next_ready(), None);
        p.push_at(20, pkt(1));
        p.push_at(5, pkt(2)); // behind the head: cannot pop before 20
        assert_eq!(p.next_ready(), Some(20));
    }

    #[test]
    fn duplicate_respects_receiver_capacity() {
        let mut toy = Toy::new(1, 1);
        toy.tx[0].push_back(pkt(7));
        toy.faults.insert(7, FaultAction::Duplicate);
        let edge = Edge { tx: (), site: SITE };
        run_edge(&mut toy, 0, &edge).unwrap();
        assert_eq!(toy.rx.len(), 1, "no overflow: duplicate skipped");
        assert_eq!(toy.duplicated, 0, "skipped duplicate is not counted");
    }

    #[test]
    fn route_errors_propagate_out_of_run_edge() {
        let mut toy = Toy::new(1, 8);
        toy.tx[0].push_back(pkt(0));
        toy.fail_route = true;
        let edge = Edge { tx: (), site: SITE };
        let err = run_edge(&mut toy, 3, &edge).unwrap_err();
        assert!(
            matches!(err, SimError::Unroutable { cycle: 3, .. }),
            "{err}"
        );
        assert_eq!(toy.tx[0].len(), 1, "packet stays queued on error");
    }
}
