//! Fixed-universe membership sets over small dense index ranges (warp
//! slots, vaults). The event-driven scheduler keeps these sets updated at
//! state-transition sites so hot loops and quiescence horizons cost
//! O(members) / O(1) instead of rescanning every slot (DESIGN.md §15).

/// A bitset over indices `0..universe`, with a cached member count.
///
/// All operations are deterministic; iteration order is ascending index,
/// which matches the full-scan order the incremental call sites replaced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    universe: usize,
    count: usize,
}

impl BitSet {
    pub fn new(universe: usize) -> Self {
        BitSet {
            words: vec![0; universe.div_ceil(64)],
            universe,
            count: 0,
        }
    }

    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of members — O(1) via the cached count.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.universe);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Insert `i`; returns true when it was not already a member.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.universe);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if *w & bit != 0 {
            return false;
        }
        *w |= bit;
        self.count += 1;
        true
    }

    /// Remove `i`; returns true when it was a member.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.universe);
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if *w & bit == 0 {
            return false;
        }
        *w &= !bit;
        self.count -= 1;
        true
    }

    pub fn clear(&mut self) {
        self.words.fill(0);
        self.count = 0;
    }

    /// Smallest member `>= from`, or None. The building block for both
    /// ascending iteration and the round-robin issue scan.
    pub fn next_at_or_after(&self, from: usize) -> Option<usize> {
        if from >= self.universe {
            return None;
        }
        let mut wi = from / 64;
        let mut word = self.words[wi] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                let i = wi * 64 + word.trailing_zeros() as usize;
                return (i < self.universe).then_some(i);
            }
            wi += 1;
            if wi >= self.words.len() {
                return None;
            }
            word = self.words[wi];
        }
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let mut next = 0usize;
        std::iter::from_fn(move || {
            let i = self.next_at_or_after(next)?;
            next = i + 1;
            Some(i)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_count() {
        let mut s = BitSet::new(100);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(99));
        assert!(!s.insert(63), "double insert is a no-op");
        assert_eq!(s.count(), 4);
        assert!(s.contains(64));
        assert!(!s.contains(65));
        assert!(s.remove(63));
        assert!(!s.remove(63), "double remove is a no-op");
        assert_eq!(s.count(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 99]);
    }

    #[test]
    fn next_at_or_after_scans_words() {
        let mut s = BitSet::new(130);
        for i in [3, 64, 127, 129] {
            s.insert(i);
        }
        assert_eq!(s.next_at_or_after(0), Some(3));
        assert_eq!(s.next_at_or_after(3), Some(3));
        assert_eq!(s.next_at_or_after(4), Some(64));
        assert_eq!(s.next_at_or_after(65), Some(127));
        assert_eq!(s.next_at_or_after(128), Some(129));
        assert_eq!(s.next_at_or_after(130), None);
        s.remove(129);
        assert_eq!(s.next_at_or_after(128), None);
    }

    #[test]
    fn matches_naive_set_under_random_ops() {
        // Deterministic xorshift-driven differential test vs a Vec<bool>.
        let mut s = BitSet::new(77);
        let mut naive = [false; 77];
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let i = (x % 77) as usize;
            if x & 1 == 0 {
                assert_eq!(s.insert(i), !naive[i]);
                naive[i] = true;
            } else {
                assert_eq!(s.remove(i), naive[i]);
                naive[i] = false;
            }
            assert_eq!(s.count(), naive.iter().filter(|&&b| b).count());
            let from = (x >> 8) as usize % 80;
            let expect = (from..77).find(|&j| naive[j]);
            assert_eq!(s.next_at_or_after(from), expect);
        }
    }
}
