//! System configuration, following Table 2 of the paper.
//!
//! Every experiment configuration (Baseline, Baseline_MoreCore, NaiveNDP,
//! NDP(r), NDP(Dyn), NDP(Dyn)_Cache, the §7.3 bigger-GPU study and the §7.6
//! NSU frequency study) is expressed as a mutation of [`SystemConfig::default`],
//! which reproduces Table 2 exactly.

use serde::{Deserialize, Serialize};

/// GPU-side configuration (Table 2, upper block).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors (64 in Table 2).
    pub num_sms: usize,
    /// Hardware warp contexts per SM (1536 threads / 32-wide warps = 48).
    pub warps_per_sm: usize,
    /// SIMT width (threads per warp).
    pub warp_width: usize,
    /// Instruction issue slots per SM per cycle (GPGPU-sim style dual
    /// scheduler).
    pub issue_width: usize,
    /// SM core clock in MHz (also used for the crossbar/L2 timebase).
    pub sm_clock_mhz: u32,
    /// L1 data cache capacity in bytes (32 KB).
    pub l1d_bytes: usize,
    /// L1 data cache associativity.
    pub l1d_ways: usize,
    /// L1 data cache MSHR entries.
    pub l1d_mshrs: usize,
    /// L1 instruction cache capacity in bytes (4 KB; modelled only for the
    /// footprint statistics of Fig. 11's GPU analogue).
    pub l1i_bytes: usize,
    /// Unified L2 capacity in bytes (2 MB), sliced across GPU↔HMC links.
    pub l2_bytes: usize,
    /// L2 associativity (16).
    pub l2_ways: usize,
    /// L2 MSHR entries per slice.
    pub l2_mshrs: usize,
    /// Cache line size in bytes (128).
    pub line_bytes: usize,
    /// Number of bidirectional GPU↔HMC links (8).
    pub num_links: usize,
    /// Per-direction bandwidth of each GPU↔HMC link in GB/s (20).
    pub link_gbps: f64,
    /// L1 hit latency in SM cycles.
    pub l1_hit_latency: u32,
    /// Additional latency for an L2 hit (crossbar + L2 array), in SM cycles.
    pub l2_hit_latency: u32,
    /// Fixed propagation latency of a GPU↔HMC link, in SM cycles
    /// (SerDes + board trace; serialization is modelled separately from
    /// bandwidth).
    pub link_latency: u32,
    /// ALU result latency in SM cycles.
    pub alu_latency: u32,
    /// Special-function (division, sqrt) latency in SM cycles.
    pub sfu_latency: u32,
    /// Warps per cooperative thread array (barrier scope; CTA-contiguous
    /// warp-to-SM assignment).
    pub warps_per_cta: u32,
    /// Input-queue depth of each GPU↔HMC link direction, in packets
    /// (backpressure bound on the serializer).
    pub link_queue_capacity: usize,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            num_sms: 64,
            warps_per_sm: 48,
            warp_width: 32,
            issue_width: 2,
            sm_clock_mhz: 700,
            l1d_bytes: 32 * 1024,
            l1d_ways: 4,
            l1d_mshrs: 48,
            l1i_bytes: 4 * 1024,
            l2_bytes: 2 * 1024 * 1024,
            l2_ways: 16,
            l2_mshrs: 48,
            line_bytes: 128,
            num_links: 8,
            link_gbps: 20.0,
            l1_hit_latency: 28,
            l2_hit_latency: 64,
            link_latency: 20,
            alu_latency: 4,
            sfu_latency: 16,
            warps_per_cta: 8,
            link_queue_capacity: 64,
        }
    }
}

/// DRAM timing parameters in DRAM clock cycles (Table 2: DDR3-1333H).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DramTiming {
    /// DRAM clock period in picoseconds (tCK = 1.50 ns).
    pub tck_ps: u64,
    /// Row precharge.
    pub t_rp: u32,
    /// Column-to-column delay (burst gap).
    pub t_ccd: u32,
    /// RAS-to-CAS delay.
    pub t_rcd: u32,
    /// CAS latency.
    pub t_cl: u32,
    /// Write recovery.
    pub t_wr: u32,
    /// Row-active minimum.
    pub t_ras: u32,
}

impl Default for DramTiming {
    fn default() -> Self {
        DramTiming {
            tck_ps: 1500,
            t_rp: 9,
            t_ccd: 4,
            t_rcd: 9,
            t_cl: 9,
            t_wr: 12,
            t_ras: 24,
        }
    }
}

/// HMC-side configuration (Table 2, middle block).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HmcConfig {
    /// Number of memory stacks in the system (8).
    pub num_hmcs: usize,
    /// Vaults per stack (16).
    pub vaults_per_hmc: usize,
    /// Banks per vault (16).
    pub banks_per_vault: usize,
    /// Stack capacity in bytes (4 GB).
    pub capacity_bytes: u64,
    /// Vault request queue entries for the FR-FCFS scheduler (64).
    pub vault_queue: usize,
    /// Bytes transferred per column access (DDR3 x32 burst-of-8 = 32 B).
    pub burst_bytes: usize,
    /// DRAM row size in bytes used for activation energy (4 KB row, §5).
    pub row_bytes: usize,
    /// DRAM timing parameters.
    pub timing: DramTiming,
    /// Memory-network links per HMC (3, leaving 1 of the 4 HMC links for
    /// the GPU).
    pub memnet_links: usize,
    /// Per-direction bandwidth of each HMC link in GB/s (20).
    pub link_gbps: f64,
    /// Fixed per-hop latency of a memory-network link in SM cycles.
    pub memnet_hop_latency: u32,
    /// Input-queue depth of each memory-network link, in packets
    /// (hop-by-hop backpressure bound).
    pub memnet_queue_capacity: usize,
    /// Intra-HMC crossbar traversal latency in SM cycles.
    pub xbar_latency: u32,
}

impl Default for HmcConfig {
    fn default() -> Self {
        HmcConfig {
            num_hmcs: 8,
            vaults_per_hmc: 16,
            banks_per_vault: 16,
            capacity_bytes: 4 << 30,
            vault_queue: 64,
            burst_bytes: 32,
            row_bytes: 4096,
            timing: DramTiming::default(),
            memnet_links: 3,
            link_gbps: 20.0,
            memnet_hop_latency: 12,
            memnet_queue_capacity: 64,
            xbar_latency: 4,
        }
    }
}

/// NSU and NDP-buffer configuration (Table 2, bottom block).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NsuConfig {
    /// NSU clock in MHz (350, i.e. half the SM clock; §7.6 studies 175).
    pub clock_mhz: u32,
    /// Hardware warp slots per NSU (48).
    pub warp_slots: usize,
    /// SIMD width (32).
    pub warp_width: usize,
    /// Instruction cache capacity in bytes (4 KB).
    pub icache_bytes: usize,
    /// Constant cache capacity in bytes (4 KB).
    pub ccache_bytes: usize,
    /// Read data buffer entries (256 × 128 B).
    pub read_data_entries: usize,
    /// Write address buffer entries (256 × 128 B).
    pub write_addr_entries: usize,
    /// Offload command buffer entries (10).
    pub cmd_entries: usize,
    /// Per-SM pending packet buffer entries (300 × 8 B).
    pub sm_pending_entries: usize,
    /// Per-SM ready packet buffer entries (64 × 8 B).
    pub sm_ready_entries: usize,
    /// Optional small read-only data cache on the NSU (bytes; 0 = none).
    ///
    /// The paper suggests this as a cheap fix for BPROP-style workloads that
    /// repeatedly ship a small cached structure off-chip (§7.1); it is an
    /// ablation in our harness, disabled by default.
    pub readonly_cache_bytes: usize,
    /// Whether RDF packets probe the GPU caches on their way out (§4.1,
    /// Fig. 6(a)). Disabling this is an ablation: every RDF goes straight
    /// to DRAM, which hurts cache-friendly blocks twice (stale bandwidth on
    /// hot lines) but saves the GPU-link data shipping for hits.
    pub rdf_probes_gpu_cache: bool,
}

impl Default for NsuConfig {
    fn default() -> Self {
        NsuConfig {
            clock_mhz: 350,
            warp_slots: 48,
            warp_width: 32,
            icache_bytes: 4 * 1024,
            ccache_bytes: 4 * 1024,
            read_data_entries: 256,
            write_addr_entries: 256,
            cmd_entries: 10,
            sm_pending_entries: 300,
            sm_ready_entries: 64,
            readonly_cache_bytes: 0,
            rdf_probes_gpu_cache: true,
        }
    }
}

/// How offload decisions are made for each offload-block instance (§6–7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OffloadPolicy {
    /// Never offload: the plain GPU baseline.
    Never,
    /// Offload every instance (the §6 "NaiveNDP" configuration).
    Always,
    /// Offload a static fraction of instances, chosen pseudo-randomly (§7.1).
    Static(f64),
    /// Hill-climbing dynamic offload ratio (Algorithm 1, §7.2).
    Dynamic,
    /// Dynamic ratio + cache-locality-aware suppression (§7.3).
    DynamicCacheAware,
}

/// Parameters of the hill-climbing controller (Algorithm 1; values from §7.2).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HillClimbConfig {
    /// Epoch length in SM cycles (30 000).
    pub epoch_cycles: u64,
    /// Initial offload ratio (0.1).
    pub initial_ratio: f64,
    /// Initial step size (0.15).
    pub initial_step: f64,
    /// Granularity of step-size change (0.05).
    pub step_unit: f64,
    /// Minimum step size (0.05).
    pub step_min: f64,
    /// Maximum step size (0.15).
    pub step_max: f64,
    /// Direction-change history window (4).
    pub window: usize,
}

impl Default for HillClimbConfig {
    fn default() -> Self {
        HillClimbConfig {
            epoch_cycles: 30_000,
            initial_ratio: 0.1,
            initial_step: 0.15,
            step_unit: 0.05,
            step_min: 0.05,
            step_max: 0.15,
            window: 4,
        }
    }
}

/// Full system configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    pub gpu: GpuConfig,
    pub hmc: HmcConfig,
    pub nsu: NsuConfig,
    pub offload: OffloadPolicy,
    pub hill_climb: HillClimbConfig,
    /// Page size for the random page→HMC interleaving (4 KB, §5).
    pub page_bytes: u64,
    /// Seed for all pseudo-random simulator state (page map, static-ratio
    /// sampling). Fixed seed ⇒ bit-reproducible runs.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            gpu: GpuConfig::default(),
            hmc: HmcConfig::default(),
            nsu: NsuConfig::default(),
            offload: OffloadPolicy::Never,
            hill_climb: HillClimbConfig::default(),
            page_bytes: 4096,
            seed: 0x5C17_2017,
        }
    }
}

impl SystemConfig {
    /// Baseline (Table 2, no NDP).
    pub fn baseline() -> Self {
        Self::default()
    }

    /// `Baseline_MoreCore`: 8 extra SMs instead of the 8 NSUs (§6).
    pub fn baseline_more_core() -> Self {
        let mut c = Self::default();
        c.gpu.num_sms += c.hmc.num_hmcs;
        c
    }

    /// Naive NDP: every offload-block instance is offloaded (§6).
    pub fn naive_ndp() -> Self {
        Self {
            offload: OffloadPolicy::Always,
            ..Self::default()
        }
    }

    /// NDP with a static offload ratio (§7.1).
    pub fn ndp_static(ratio: f64) -> Self {
        Self {
            offload: OffloadPolicy::Static(ratio),
            ..Self::default()
        }
    }

    /// NDP with the dynamic hill-climbing ratio (§7.2).
    pub fn ndp_dynamic() -> Self {
        Self {
            offload: OffloadPolicy::Dynamic,
            ..Self::default()
        }
    }

    /// NDP with dynamic ratio + cache-locality gating (§7.3).
    pub fn ndp_dynamic_cache() -> Self {
        Self {
            offload: OffloadPolicy::DynamicCacheAware,
            ..Self::default()
        }
    }

    /// Bytes a link moves per SM cycle, given its GB/s rating.
    pub fn bytes_per_cycle(&self, gbps: f64) -> f64 {
        gbps * 1e9 / (self.gpu.sm_clock_mhz as f64 * 1e6)
    }

    /// The NSU clock divider relative to the SM clock (2 for 350 MHz).
    pub fn nsu_divider(&self) -> u64 {
        (self.gpu.sm_clock_mhz as u64).div_ceil(self.nsu.clock_mhz as u64)
    }

    /// Number of L2 slices (one per GPU↔HMC link).
    pub fn l2_slices(&self) -> usize {
        self.gpu.num_links
    }

    /// Aggregate peak DRAM bandwidth of all stacks, GB/s.
    pub fn aggregate_dram_gbps(&self) -> f64 {
        let t = &self.hmc.timing;
        let per_vault =
            self.hmc.burst_bytes as f64 / (t.t_ccd as f64 * t.tck_ps as f64 * 1e-12) / 1e9;
        per_vault * self.hmc.vaults_per_hmc as f64 * self.hmc.num_hmcs as f64
    }

    /// Aggregate GPU off-chip bandwidth per direction, GB/s.
    pub fn gpu_offchip_gbps(&self) -> f64 {
        self.gpu.num_links as f64 * self.gpu.link_gbps
    }

    /// SM-side NDP buffer storage in bytes (§7.5: pending 8 B × 300 +
    /// ready 8 B × 64 ≈ 2.84 KB per SM).
    pub fn sm_ndp_buffer_bytes(&self) -> usize {
        8 * self.nsu.sm_pending_entries + 8 * self.nsu.sm_ready_entries
    }

    /// Existing per-SM on-chip storage (L1I + L1D + scratchpad) plus the L2
    /// share, used for the §7.5 overhead ratio.
    pub fn sm_onchip_storage_bytes(&self) -> usize {
        let scratchpad = 48 * 1024;
        let per_sm = self.gpu.l1i_bytes + self.gpu.l1d_bytes + scratchpad;
        per_sm + self.gpu.l2_bytes / self.gpu.num_sms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_defaults() {
        let c = SystemConfig::default();
        assert_eq!(c.gpu.num_sms, 64);
        assert_eq!(c.gpu.warps_per_sm * c.gpu.warp_width, 1536);
        assert_eq!(c.hmc.num_hmcs, 8);
        assert_eq!(c.hmc.vaults_per_hmc, 16);
        assert_eq!(c.hmc.banks_per_vault, 16);
        assert_eq!(c.hmc.vault_queue, 64);
        assert_eq!(c.nsu.clock_mhz, 350);
        assert_eq!(c.nsu.warp_slots, 48);
        assert_eq!(c.nsu.cmd_entries, 10);
        assert_eq!(c.page_bytes, 4096);
    }

    #[test]
    fn derived_bandwidths() {
        let c = SystemConfig::default();
        // 20 GB/s at 700 MHz ≈ 28.6 B/cycle.
        let bpc = c.bytes_per_cycle(c.gpu.link_gbps);
        assert!((bpc - 28.57).abs() < 0.05, "bpc = {bpc}");
        // GPU off-chip: 8 × 20 = 160 GB/s per direction.
        assert!((c.gpu_offchip_gbps() - 160.0).abs() < 1e-9);
        // Aggregate DRAM must exceed GPU off-chip by a wide margin; with
        // 32 B per tCCD=4 × 1.5 ns we get ≈ 5.33 GB/s per vault → ≈ 683 GB/s.
        let dram = c.aggregate_dram_gbps();
        assert!(dram > 4.0 * c.gpu_offchip_gbps(), "dram = {dram}");
    }

    #[test]
    fn nsu_divider_matches_clock() {
        let mut c = SystemConfig::default();
        assert_eq!(c.nsu_divider(), 2);
        c.nsu.clock_mhz = 175;
        assert_eq!(c.nsu_divider(), 4);
    }

    #[test]
    fn overhead_matches_paper_7_5() {
        let c = SystemConfig::default();
        // 2.84 KB per SM (8 B × 300 + 8 B × 64 = 2912 B ≈ 2.84 KB).
        assert_eq!(c.sm_ndp_buffer_bytes(), 2912);
        let ratio = c.sm_ndp_buffer_bytes() as f64 / c.sm_onchip_storage_bytes() as f64;
        // Paper reports 1.8% of total on-chip storage.
        assert!(ratio > 0.01 && ratio < 0.04, "ratio = {ratio}");
    }

    #[test]
    fn presets_differ_only_where_expected() {
        let more = SystemConfig::baseline_more_core();
        assert_eq!(more.gpu.num_sms, 72);
        assert_eq!(more.offload, OffloadPolicy::Never);
        assert_eq!(SystemConfig::naive_ndp().offload, OffloadPolicy::Always);
        match SystemConfig::ndp_static(0.4).offload {
            OffloadPolicy::Static(r) => assert!((r - 0.4).abs() < 1e-12),
            other => panic!("unexpected policy {other:?}"),
        }
    }
}
