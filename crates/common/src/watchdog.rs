//! Forward-progress watchdog and stall reporting.
//!
//! A deadlocked simulation used to spin silently to `max_cycles` and come
//! back as a bare `timed_out=true`. The watchdog tracks the last cycle at
//! which *anything* made progress — a packet crossing any fabric edge, or
//! an instruction retiring on an SM or NSU — and, once no progress has been
//! seen for a threshold while work is still outstanding, the run aborts
//! early with a [`StallReport`]: every non-empty queue, the credit-pool
//! balances, the in-flight offload tokens and their lifecycle state, and a
//! wait-for summary naming what each starved resource is blocked on.

use std::fmt;

use serde::Serialize;

use crate::ids::Cycle;

/// Default no-progress threshold (SM cycles) before the watchdog fires.
/// Override per run with `NDP_WATCHDOG=<cycles>` (`0` disables).
pub const DEFAULT_WATCHDOG_CYCLES: Cycle = 100_000;

/// Per-edge movement record: how often and how recently packets crossed
/// one transmit edge of the fabric.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EdgeProgress {
    pub name: &'static str,
    pub moves: u64,
    pub last_move: Option<Cycle>,
}

/// Tracks forward progress across the whole machine.
#[derive(Debug, Clone)]
pub struct Watchdog {
    threshold: Cycle,
    last_progress: Cycle,
    last_instrs: u64,
    edges: Vec<EdgeProgress>,
}

impl Watchdog {
    /// `edge_names` label the fabric's transmit edges; `note_move` indexes
    /// into the same order.
    pub fn new(threshold: Cycle, edge_names: &'static [&'static str]) -> Self {
        Watchdog {
            threshold,
            last_progress: 0,
            last_instrs: 0,
            edges: edge_names
                .iter()
                .map(|&name| EdgeProgress {
                    name,
                    moves: 0,
                    last_move: None,
                })
                .collect(),
        }
    }

    pub fn threshold(&self) -> Cycle {
        self.threshold
    }

    /// A packet crossed edge `edge` this cycle.
    #[inline]
    pub fn note_move(&mut self, now: Cycle, edge: usize) {
        self.last_progress = now;
        let e = &mut self.edges[edge];
        e.moves += 1;
        e.last_move = Some(now);
    }

    /// Periodic instruction-retirement snapshot: counts as progress when
    /// the total grew since the last snapshot.
    pub fn note_instrs(&mut self, now: Cycle, total_instrs: u64) {
        if total_instrs > self.last_instrs {
            self.last_instrs = total_instrs;
            self.last_progress = now;
        }
    }

    /// Cycles since the last progress, if it meets the threshold.
    pub fn stalled_for(&self, now: Cycle) -> Option<Cycle> {
        let idle = now.saturating_sub(self.last_progress);
        (idle >= self.threshold).then_some(idle)
    }

    pub fn edges(&self) -> &[EdgeProgress] {
        &self.edges
    }

    /// Checkpoint threshold and progress counters. Edge names are static
    /// fabric labels and are re-supplied at restore via [`Watchdog::new`].
    pub fn snap(&self, w: &mut crate::snap::SnapWriter) {
        w.u64(self.threshold);
        w.u64(self.last_progress);
        w.u64(self.last_instrs);
        w.len(self.edges.len());
        for e in &self.edges {
            w.u64(e.moves);
            w.bool(e.last_move.is_some());
            w.u64(e.last_move.unwrap_or(0));
        }
    }

    /// Overwrite the progress counters from a checkpoint stream. `self`
    /// must be freshly built with the same edge-name list the snapshot was
    /// taken under (guarded by the checkpoint's config fingerprint).
    pub fn restore(
        &mut self,
        r: &mut crate::snap::SnapReader<'_>,
    ) -> Result<(), crate::snap::SnapError> {
        self.threshold = r.u64()?;
        self.last_progress = r.u64()?;
        self.last_instrs = r.u64()?;
        let n = r.len()?;
        if n != self.edges.len() {
            return Err(crate::snap::SnapError(format!(
                "watchdog tracks {} edges, checkpoint has {n}",
                self.edges.len()
            )));
        }
        for e in &mut self.edges {
            e.moves = r.u64()?;
            let present = r.bool()?;
            let at = r.u64()?;
            e.last_move = present.then_some(at);
        }
        Ok(())
    }
}

/// Depth of one named queue at stall time.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QueueDepth {
    pub name: String,
    pub depth: usize,
}

/// One credit pool's balance at stall time.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CreditBalance {
    pub pool: String,
    pub in_use: usize,
    pub capacity: usize,
}

/// One in-flight offload token and where it is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TokenInFlight {
    pub token: u64,
    pub state: String,
}

/// One protocol counter snapshot (from the invariant engine).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CounterSnapshot {
    pub name: &'static str,
    pub value: u64,
}

/// Structured explanation of a forward-progress stall, attached to
/// `RunResult` when the watchdog aborts a run.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct StallReport {
    /// Cycle at which the watchdog fired.
    pub cycle: Cycle,
    /// Cycles since the last observed progress.
    pub stalled_for: Cycle,
    /// The configured no-progress threshold.
    pub threshold: Cycle,
    /// Movement history of every fabric edge.
    pub edges: Vec<EdgeProgress>,
    /// Every non-empty queue in the machine, by name.
    pub queues: Vec<QueueDepth>,
    /// Credit pools with outstanding reservations.
    pub credits: Vec<CreditBalance>,
    /// Offload tokens still in flight, with lifecycle state.
    pub tokens: Vec<TokenInFlight>,
    /// Protocol-counter snapshot from the invariant engine.
    pub protocol: Vec<CounterSnapshot>,
    /// Human-readable wait-for summary: what each starved component or
    /// resource is blocked on.
    pub wait_for: Vec<String>,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== STALL at cycle {} (no progress for {} cycles, threshold {}) ===",
            self.cycle, self.stalled_for, self.threshold
        )?;
        writeln!(f, "wait-for:")?;
        for w in &self.wait_for {
            writeln!(f, "  - {w}")?;
        }
        if !self.queues.is_empty() {
            writeln!(f, "non-empty queues:")?;
            for q in &self.queues {
                writeln!(f, "  {:<28} {}", q.name, q.depth)?;
            }
        }
        if !self.credits.is_empty() {
            writeln!(f, "credit pools with outstanding entries:")?;
            for c in &self.credits {
                writeln!(f, "  {:<28} {}/{} in use", c.pool, c.in_use, c.capacity)?;
            }
        }
        if !self.tokens.is_empty() {
            writeln!(f, "in-flight offload tokens:")?;
            for t in &self.tokens {
                writeln!(f, "  {:#014x}  {}", t.token, t.state)?;
            }
        }
        if !self.protocol.is_empty() {
            writeln!(f, "protocol counters:")?;
            for c in &self.protocol {
                writeln!(f, "  {:<28} {}", c.name, c.value)?;
            }
        }
        writeln!(f, "edge movement (moves, last move cycle):")?;
        for e in &self.edges {
            match e.last_move {
                Some(c) => writeln!(f, "  {:<20} {:>10}  last {}", e.name, e.moves, c)?,
                None => writeln!(f, "  {:<20} {:>10}  never", e.name, e.moves)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EDGES: &[&str] = &["a", "b"];

    #[test]
    fn fires_only_after_threshold_without_progress() {
        let mut w = Watchdog::new(100, EDGES);
        w.note_move(50, 0);
        assert_eq!(w.stalled_for(149), None);
        assert_eq!(w.stalled_for(150), Some(100));
        w.note_move(150, 1);
        assert_eq!(w.stalled_for(249), None);
        assert_eq!(w.edges()[1].moves, 1);
        assert_eq!(w.edges()[1].last_move, Some(150));
    }

    #[test]
    fn instruction_retirement_counts_as_progress() {
        let mut w = Watchdog::new(100, EDGES);
        w.note_instrs(90, 5);
        assert_eq!(w.stalled_for(189), None);
        // Same total again: not progress.
        w.note_instrs(189, 5);
        assert_eq!(w.stalled_for(190), Some(100));
        // Growth is progress.
        w.note_instrs(190, 6);
        assert_eq!(w.stalled_for(289), None);
    }

    #[test]
    fn report_renders_all_sections() {
        let r = StallReport {
            cycle: 9000,
            stalled_for: 4096,
            threshold: 4096,
            edges: vec![EdgeProgress {
                name: "sm_out",
                moves: 12,
                last_move: Some(4904),
            }],
            queues: vec![QueueDepth {
                name: "sm0.out".into(),
                depth: 3,
            }],
            credits: vec![CreditBalance {
                pool: "hmc0.cmd".into(),
                in_use: 2,
                capacity: 2,
            }],
            tokens: vec![TokenInFlight {
                token: 0x42,
                state: "WaitAck (SM side)".into(),
            }],
            protocol: vec![CounterSnapshot {
                name: "cmd_issued",
                value: 7,
            }],
            wait_for: vec!["sm0: 2 warps waiting on NSU buffer credits".into()],
        };
        let text = format!("{r}");
        for needle in [
            "STALL at cycle 9000",
            "sm0.out",
            "hmc0.cmd",
            "2/2 in use",
            "cmd_issued",
            "sm_out",
            "waiting on NSU buffer credits",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
