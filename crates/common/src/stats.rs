//! Simulation statistics: traffic classes, cache counters, no-issue cycle
//! attribution (Fig. 8), and small numeric helpers for reports.

use serde::Serialize;

/// Where bytes moved — the four energy/traffic domains of Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// GPU↔HMC off-chip links (the scarce resource the paper protects).
    GpuLink,
    /// HMC↔HMC memory-network links.
    Memnet,
    /// Intra-HMC logic-layer crossbar (vaults ↔ I/O ↔ NSU).
    IntraHmc,
    /// On-die GPU interconnect (SM ↔ L2 slices).
    GpuOnDie,
}

/// Why an SM issue slot went unused in a cycle (Fig. 8 categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoIssue {
    /// The required execution unit was busy.
    ExecUnitBusy,
    /// An operand was not ready (includes cache/DRAM latency).
    DependencyStall,
    /// No valid instruction: empty warp, synchronization, or — under NDP —
    /// warps blocked on an offload acknowledgment.
    WarpIdle,
}

/// Per-SM issue statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct IssueStats {
    pub issued: u64,
    pub exec_unit_busy: u64,
    pub dependency_stall: u64,
    pub warp_idle: u64,
}

impl IssueStats {
    pub fn no_issue_total(&self) -> u64 {
        self.exec_unit_busy + self.dependency_stall + self.warp_idle
    }

    pub fn record_no_issue(&mut self, why: NoIssue) {
        match why {
            NoIssue::ExecUnitBusy => self.exec_unit_busy += 1,
            NoIssue::DependencyStall => self.dependency_stall += 1,
            NoIssue::WarpIdle => self.warp_idle += 1,
        }
    }

    pub fn merge(&mut self, other: &IssueStats) {
        self.issued += other.issued;
        self.exec_unit_busy += other.exec_unit_busy;
        self.dependency_stall += other.dependency_stall;
        self.warp_idle += other.warp_idle;
    }
}

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    pub read_hits: u64,
    pub read_misses: u64,
    pub writes: u64,
    pub invalidations: u64,
}

impl CacheStats {
    pub fn read_accesses(&self) -> u64 {
        self.read_hits + self.read_misses
    }

    pub fn read_hit_rate(&self) -> f64 {
        if self.read_accesses() == 0 {
            0.0
        } else {
            self.read_hits as f64 / self.read_accesses() as f64
        }
    }

    pub fn merge(&mut self, o: &CacheStats) {
        self.read_hits += o.read_hits;
        self.read_misses += o.read_misses;
        self.writes += o.writes;
        self.invalidations += o.invalidations;
    }
}

/// DRAM activity counters (for energy: activations at 11.8 nJ/4 KB row,
/// column reads at 4 pJ/bit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct DramStats {
    pub activations: u64,
    pub col_reads: u64,
    pub col_writes: u64,
    pub read_bytes: u64,
    pub write_bytes: u64,
}

impl DramStats {
    pub fn merge(&mut self, o: &DramStats) {
        self.activations += o.activations;
        self.col_reads += o.col_reads;
        self.col_writes += o.col_writes;
        self.read_bytes += o.read_bytes;
        self.write_bytes += o.write_bytes;
    }
}

/// Geometric mean (used for GMEAN columns). Returns `None` on an empty
/// slice or when any value is non-positive (where the geomean is
/// undefined), so sweep/report generation degrades to "n/a" instead of
/// aborting a whole run.
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|&v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean. Returns `None` on an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_stats_attribution() {
        let mut s = IssueStats::default();
        s.record_no_issue(NoIssue::ExecUnitBusy);
        s.record_no_issue(NoIssue::DependencyStall);
        s.record_no_issue(NoIssue::DependencyStall);
        s.record_no_issue(NoIssue::WarpIdle);
        assert_eq!(s.no_issue_total(), 4);
        assert_eq!(s.dependency_stall, 2);
    }

    #[test]
    fn cache_hit_rate() {
        let s = CacheStats {
            read_hits: 45,
            read_misses: 55,
            ..Default::default()
        };
        assert!((s.read_hit_rate() - 0.45).abs() < 1e-12);
        assert_eq!(CacheStats::default().read_hit_rate(), 0.0);
    }

    #[test]
    fn geomean_matches_known_values() {
        assert!((geomean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_yield_none_not_panic() {
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[1.0, -2.0]), None);
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = DramStats {
            activations: 1,
            col_reads: 2,
            col_writes: 3,
            read_bytes: 4,
            write_bytes: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.activations, 2);
        assert_eq!(a.write_bytes, 10);
    }
}
