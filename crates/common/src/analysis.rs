//! Static fabric-graph analysis (Pass 2 of the verification suite).
//!
//! The simulator's routing pipeline is data (`ndp-core`'s const `PIPELINE`
//! of stages and edges). This module gives that data a static meaning: a
//! [`FabricGraph`] of component nodes, the packet kinds each originates and
//! terminally consumes, the edges packets travel, and the credit pools that
//! bound NSU buffers. [`FabricGraph::check`] then proves, before a single
//! cycle simulates:
//!
//! - **routing completeness** — every (producer, [`PacketKind`]) pair can
//!   reach a node that consumes that kind;
//! - **no dead-end deliveries** — no edge hands a kind to a node that
//!   neither consumes nor forwards it;
//! - **credit acquire/release pairing** — every bounded pool has both a
//!   reservation site and a release site (a missing release stage is the
//!   withheld-credit wedge the runtime watchdog can only catch after the
//!   machine has already stalled);
//! - **wait-for acyclicity** — the subgraph of bounded, non-credit-protected
//!   edges is cycle-free, the structural precondition for
//!   backpressure-induced deadlock;
//! - **parallel safety** — every member of a parallel-eligible tick stage
//!   declares a shared-state [`FootprintSpec`] free of shared writes
//!   ([`FabricGraph::check_parallel_safety`]), and the stages that *do*
//!   write shared state are rendered into a per-stage conflict report
//!   ([`FabricGraph::footprint_report`]) naming exactly which resources
//!   serialize them.
//!
//! [`PacketKind`]: crate::packet::PacketKind

use std::collections::VecDeque;
use std::fmt;

use crate::packet::{Packet, PacketKind};

/// Bitmask over the [`PacketKind`] universe, bit `i` = kind index `i`
/// (the order of [`Packet::KIND_NAMES`]).
pub type KindMask = u16;

/// Mask with every packet kind set.
pub const ALL_KINDS: KindMask = (1 << PacketKind::COUNT) - 1;

/// Mask for one kind index.
pub const fn kind_bit(kind_index: usize) -> KindMask {
    1 << kind_index
}

fn kind_names(mask: KindMask) -> String {
    let names: Vec<&str> = (0..PacketKind::COUNT)
        .filter(|i| mask & kind_bit(*i) != 0)
        .map(|i| Packet::KIND_NAMES[i])
        .collect();
    names.join("|")
}

/// One component class of the machine (lanes collapsed: every SM behaves
/// identically for routing purposes, so one node stands for all of them).
#[derive(Debug, Clone)]
pub struct GraphNode {
    pub name: &'static str,
    /// Kinds this node originates (injects into the fabric).
    pub emits: KindMask,
    /// Kinds this node terminally consumes (packet leaves the fabric here).
    pub consumes: KindMask,
}

/// One routing-table edge, lifted from a `Route` stage of the pipeline.
#[derive(Debug, Clone)]
pub struct GraphEdge {
    pub name: &'static str,
    pub from: &'static str,
    pub to: &'static str,
    /// Kinds this edge may legally carry.
    pub kinds: KindMask,
    /// The receiver has finite capacity and may refuse delivery
    /// (backpressure propagates to the sender).
    pub bounded: bool,
    /// An end-to-end credit protocol guarantees the receiver can always
    /// drain what was admitted, so this edge cannot sustain a wait-for
    /// cycle.
    pub credit_protected: bool,
}

/// A bounded credit pool with its reservation and release sites. Sites are
/// names from [`FabricGraph::sites`]; a pool whose release site is absent
/// from the lifted pipeline is a statically detectable wedge.
#[derive(Debug, Clone)]
pub struct CreditPoolSpec {
    pub name: String,
    pub capacity: usize,
    pub acquire: &'static str,
    pub release: &'static str,
}

/// Quiescence declaration of one skippable tick stage: the component node
/// it advances and the in-edges whose deliveries its work horizon
/// observes. The event-driven core may skip a stage only while its
/// horizon says "no work"; that is sound only if every path by which work
/// can *arrive* at the component is visible to the horizon. A stage that
/// fails to watch one of its node's in-edges could sleep through a
/// delivery — a statically detectable progress bug.
#[derive(Debug, Clone)]
pub struct SkipSpec {
    /// Pipeline stage name (e.g. `tick:stacks`).
    pub stage: &'static str,
    /// The [`GraphNode`] this stage ticks.
    pub node: &'static str,
    /// Edge names whose deliveries the stage's quiescence horizon sees
    /// (via the occupancy of the queues those edges fill).
    pub watches: Vec<&'static str>,
    /// Names of the component's *internal* wake sources its horizon
    /// observes — the maintained structures (ready sets, wake-wheels,
    /// membership sets) that can hold deferred work between ticks. Must
    /// cover every [`WakeSourceSpec`] registered for `node`: a source the
    /// horizon doesn't observe is deferred work the event-driven core
    /// could sleep through, exactly like an unwatched in-edge.
    pub wakes: Vec<&'static str>,
    /// Whether the runtime may tick this stage's members on threads (the
    /// `NDP_PARALLEL` path). Parallel-eligible stages must have a
    /// write-free shared-state footprint — enforced by
    /// [`FabricGraph::check_parallel_safety`].
    pub parallel: bool,
}

/// One shared mutable resource of the machine — controller state, credit
/// pools, the observability ring — that component ticks may touch. The
/// registry gives footprint declarations a closed universe: a footprint
/// naming an unregistered resource is a phantom claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedResourceSpec {
    /// Canonical name (see `crate::footprint::res`), e.g. `ctrl.credits`.
    pub name: &'static str,
    /// The service that owns the state (e.g. `ctrl`, `system`).
    pub owner: &'static str,
    /// One-line description for the conflict report.
    pub note: &'static str,
}

/// The declared per-tick shared-state footprint of one component class,
/// lifted from its `FOOTPRINT` const (the static twin of the `NDP_RACE`
/// runtime recorder — the detector validates these very declarations).
/// Write membership implies read permission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FootprintSpec {
    /// The [`GraphNode`] whose component class declares this footprint.
    pub node: &'static str,
    pub reads: Vec<&'static str>,
    pub writes: Vec<&'static str>,
}

/// One internal wake source a component registers (its `WAKE_SOURCES`
/// const): a named structure whose occupancy can make `next_work_at`
/// return work on a future tick without any new packet delivery. The
/// quiescence pass cross-checks the registry against the [`SkipSpec`]
/// declarations in both directions — a registered-but-undeclared source
/// is a horizon blind spot; a declared-but-unregistered name is a phantom
/// claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WakeSourceSpec {
    /// The [`GraphNode`] whose component owns the source.
    pub node: &'static str,
    /// Source name, conventionally `component:structure`
    /// (e.g. `sm:wake_wheel`).
    pub name: &'static str,
}

/// The machine's communication structure as a static graph.
#[derive(Debug, Clone, Default)]
pub struct FabricGraph {
    pub nodes: Vec<GraphNode>,
    pub edges: Vec<GraphEdge>,
    pub pools: Vec<CreditPoolSpec>,
    /// Non-edge protocol sites present in the lifted pipeline (credit
    /// reservation points, side-channel stages). Pool acquire/release
    /// fields must name one of these.
    pub sites: Vec<&'static str>,
    /// Quiescence declarations of the skippable tick stages. Empty means
    /// the pipeline predates (or opts out of) event-driven skipping and
    /// the quiescence check vacuously passes.
    pub skip_specs: Vec<SkipSpec>,
    /// Registry of internal wake sources, lifted from the components'
    /// `WAKE_SOURCES` consts (see [`WakeSourceSpec`]).
    pub wake_sources: Vec<WakeSourceSpec>,
    /// Registry of shared mutable resources. Together with `footprints`,
    /// empty means the graph predates (or opts out of) footprint analysis
    /// and the parallel-safety check vacuously passes.
    pub resources: Vec<SharedResourceSpec>,
    /// Shared-state footprints of the tick-stage component classes,
    /// lifted from their `FOOTPRINT` consts (see [`FootprintSpec`]).
    pub footprints: Vec<FootprintSpec>,
}

/// One finding of [`FabricGraph::check`], naming the check family and the
/// node/edge/kind involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphDiag {
    pub check: &'static str,
    pub detail: String,
}

impl fmt::Display for GraphDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

impl FabricGraph {
    fn node(&self, name: &str) -> Option<&GraphNode> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Remove the named edge; `true` if it existed. Mutation-test hook (and
    /// the way `ndp-lint --drop-edge` simulates a missing pipeline stage).
    pub fn remove_edge(&mut self, name: &str) -> bool {
        let before = self.edges.len();
        self.edges.retain(|e| e.name != name);
        self.edges.len() != before
    }

    /// Remove the named protocol site; `true` if it existed.
    pub fn remove_site(&mut self, name: &str) -> bool {
        let before = self.sites.len();
        self.sites.retain(|s| *s != name);
        self.sites.len() != before
    }

    /// Remove one watched edge from a stage's quiescence declaration;
    /// `true` if it was present. Mutation-test hook: the resulting graph
    /// must fail [`FabricGraph::check`] with a `quiescence` diagnostic.
    pub fn remove_watch(&mut self, stage: &str, edge: &str) -> bool {
        let Some(spec) = self.skip_specs.iter_mut().find(|s| s.stage == stage) else {
            return false;
        };
        let before = spec.watches.len();
        spec.watches.retain(|w| *w != edge);
        spec.watches.len() != before
    }

    /// Remove one declared wake source from a stage's quiescence
    /// declaration; `true` if it was present. Mutation-test hook (and the
    /// way `ndp-lint --drop-wake` simulates a horizon that stopped
    /// observing a maintained structure): the resulting graph must fail
    /// [`FabricGraph::check`] with a `quiescence` diagnostic naming the
    /// source.
    pub fn remove_wake(&mut self, stage: &str, source: &str) -> bool {
        let Some(spec) = self.skip_specs.iter_mut().find(|s| s.stage == stage) else {
            return false;
        };
        let before = spec.wakes.len();
        spec.wakes.retain(|w| *w != source);
        spec.wakes.len() != before
    }

    /// Remove the named component class's footprint declaration; `true`
    /// if it existed. Mutation-test hook (and the way `ndp-lint
    /// --drop-footprint` simulates an undeclared component): the resulting
    /// graph must fail [`FabricGraph::check`] with a `footprint`
    /// diagnostic naming the member.
    pub fn remove_footprint(&mut self, node: &str) -> bool {
        let before = self.footprints.len();
        self.footprints.retain(|f| f.node != node);
        self.footprints.len() != before
    }

    /// Run every static check; an empty result means the graph is
    /// well-formed.
    pub fn check(&self) -> Vec<GraphDiag> {
        let mut diags = Vec::new();
        self.check_structure(&mut diags);
        // Structural breakage (dangling endpoints) makes the reachability
        // results meaningless; report it alone.
        if !diags.is_empty() {
            return diags;
        }
        self.check_routing(&mut diags);
        self.check_dead_ends(&mut diags);
        self.check_credits(&mut diags);
        self.check_wait_cycles(&mut diags);
        self.check_quiescence(&mut diags);
        self.check_parallel_safety(&mut diags);
        diags
    }

    /// Parallel safety of the member-loop stages: every skippable tick
    /// stage's component class must declare a shared-state footprint over
    /// registered resources, and a stage the runtime ticks on threads
    /// (`parallel`) must be write-free — two members of the same class
    /// share one footprint, so any declared shared write is a write-write
    /// (and read-write) conflict between sibling lanes. Conflicts on
    /// *sequential* stages are not findings; they are the worklist
    /// rendered by [`FabricGraph::footprint_report`].
    fn check_parallel_safety(&self, diags: &mut Vec<GraphDiag>) {
        if self.resources.is_empty() && self.footprints.is_empty() {
            return; // graph opts out of footprint analysis
        }
        for fp in &self.footprints {
            if self.node(fp.node).is_none() {
                diags.push(GraphDiag {
                    check: "footprint",
                    detail: format!("footprint declared for unknown node {:?}", fp.node),
                });
            }
            for r in fp.reads.iter().chain(&fp.writes) {
                if !self.resources.iter().any(|s| s.name == *r) {
                    diags.push(GraphDiag {
                        check: "footprint",
                        detail: format!(
                            "footprint of {:?} names unregistered shared resource {:?}",
                            fp.node, r
                        ),
                    });
                }
            }
        }
        for spec in &self.skip_specs {
            let Some(fp) = self.footprints.iter().find(|f| f.node == spec.node) else {
                diags.push(GraphDiag {
                    check: "footprint",
                    detail: format!(
                        "member {:?} of stage {:?} declares no shared-state footprint — \
                         its per-tick shared accesses are invisible to the \
                         parallel-safety analysis",
                        spec.node, spec.stage
                    ),
                });
                continue;
            };
            if spec.parallel {
                for w in &fp.writes {
                    diags.push(GraphDiag {
                        check: "parallel-safety",
                        detail: format!(
                            "stage {:?} ticks its {:?} members on threads, but each member \
                             writes shared resource {:?} — a write-write conflict between \
                             sibling lanes",
                            spec.stage, spec.node, w
                        ),
                    });
                }
            }
        }
    }

    /// Render the per-stage shared-state conflict report: for every
    /// skippable tick stage, its members' declared footprint and the
    /// parallel verdict — certified parallel-safe (write-free), or
    /// serialized with the exact resources that block it. This is the
    /// committed `results/parallel_footprint.txt` deliverable: the
    /// worklist for making `tick:sms` parallel-eligible.
    pub fn footprint_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# Per-stage shared-state footprints");
        let _ = writeln!(
            out,
            "# (ndp-lint check_parallel_safety; see DESIGN.md section 16)"
        );
        let _ = writeln!(out);
        let _ = writeln!(out, "## Shared resources");
        for r in &self.resources {
            let _ = writeln!(out, "  {:<18} owner={:<7} {}", r.name, r.owner, r.note);
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "## Tick stages");
        for spec in &self.skip_specs {
            let mode = if spec.parallel {
                "parallel (NDP_PARALLEL)"
            } else {
                "sequential"
            };
            let _ = writeln!(out, "  {} [{}], members: {}", spec.stage, mode, spec.node);
            let Some(fp) = self.footprints.iter().find(|f| f.node == spec.node) else {
                let _ = writeln!(out, "    footprint: UNDECLARED");
                continue;
            };
            let render = |v: &[&str]| {
                if v.is_empty() {
                    "-".into()
                } else {
                    v.join(", ")
                }
            };
            let _ = writeln!(out, "    reads:  {}", render(&fp.reads));
            let _ = writeln!(out, "    writes: {}", render(&fp.writes));
            if fp.writes.is_empty() {
                let _ = writeln!(
                    out,
                    "    verdict: parallel-safe (certified: no shared writes)"
                );
            } else {
                let _ = writeln!(
                    out,
                    "    verdict: serialized — blocked by shared writes: {}",
                    fp.writes.join(", ")
                );
            }
        }
        out
    }

    /// Quiescence soundness of the event-driven core: every declared
    /// skippable tick stage must reference a real node, watch only real
    /// edges, and watch *every* in-edge of its node — an unwatched arrival
    /// path means the skip logic could sleep through a delivery and stall
    /// a live machine.
    fn check_quiescence(&self, diags: &mut Vec<GraphDiag>) {
        for spec in &self.skip_specs {
            if self.node(spec.node).is_none() {
                diags.push(GraphDiag {
                    check: "quiescence",
                    detail: format!(
                        "skip spec for stage {:?} ticks unknown node {:?}",
                        spec.stage, spec.node
                    ),
                });
                continue;
            }
            for w in &spec.watches {
                if !self.edges.iter().any(|e| e.name == *w) {
                    diags.push(GraphDiag {
                        check: "quiescence",
                        detail: format!("stage {:?} watches unknown edge {:?}", spec.stage, w),
                    });
                }
            }
            for e in self.edges.iter().filter(|e| e.to == spec.node) {
                if !spec.watches.contains(&e.name) {
                    diags.push(GraphDiag {
                        check: "quiescence",
                        detail: format!(
                            "skippable stage {:?} does not watch in-edge {:?} of {:?} — \
                             a packet delivered there could be slept through",
                            spec.stage, e.name, spec.node
                        ),
                    });
                }
            }
            // Internal wake sources, both directions: every registered
            // source must be declared (else the horizon has a blind spot),
            // and every declared name must be registered (else the spec
            // claims a phantom structure and would mask a rename).
            for w in &spec.wakes {
                if !self
                    .wake_sources
                    .iter()
                    .any(|s| s.node == spec.node && s.name == *w)
                {
                    diags.push(GraphDiag {
                        check: "quiescence",
                        detail: format!(
                            "stage {:?} declares unregistered wake source {:?} \
                             (not in {:?}'s WAKE_SOURCES)",
                            spec.stage, w, spec.node
                        ),
                    });
                }
            }
            for s in self.wake_sources.iter().filter(|s| s.node == spec.node) {
                if !spec.wakes.contains(&s.name) {
                    diags.push(GraphDiag {
                        check: "quiescence",
                        detail: format!(
                            "skippable stage {:?} does not observe wake source {:?} of {:?} — \
                             deferred work parked there could be slept through",
                            spec.stage, s.name, spec.node
                        ),
                    });
                }
            }
        }
    }

    fn check_structure(&self, diags: &mut Vec<GraphDiag>) {
        for (i, n) in self.nodes.iter().enumerate() {
            if self.nodes[..i].iter().any(|m| m.name == n.name) {
                diags.push(GraphDiag {
                    check: "structure",
                    detail: format!("duplicate node {:?}", n.name),
                });
            }
        }
        for e in &self.edges {
            for end in [e.from, e.to] {
                if self.node(end).is_none() {
                    diags.push(GraphDiag {
                        check: "structure",
                        detail: format!("edge {:?} references unknown node {:?}", e.name, end),
                    });
                }
            }
            if e.kinds == 0 {
                diags.push(GraphDiag {
                    check: "structure",
                    detail: format!("edge {:?} carries no packet kinds", e.name),
                });
            }
        }
    }

    /// Every kind a node emits must reach, via edges that carry it, some
    /// node that consumes it.
    fn check_routing(&self, diags: &mut Vec<GraphDiag>) {
        for n in &self.nodes {
            for k in 0..PacketKind::COUNT {
                let bit = kind_bit(k);
                if n.emits & bit == 0 {
                    continue;
                }
                if !self.kind_reaches_sink(n.name, bit) {
                    diags.push(GraphDiag {
                        check: "routing",
                        detail: format!(
                            "{} emitted at {} cannot reach any consumer \
                             (no path over edges carrying {})",
                            Packet::KIND_NAMES[k],
                            n.name,
                            Packet::KIND_NAMES[k],
                        ),
                    });
                }
            }
        }
    }

    fn kind_reaches_sink(&self, start: &str, bit: KindMask) -> bool {
        let mut seen = vec![start];
        let mut frontier = VecDeque::from([start]);
        while let Some(at) = frontier.pop_front() {
            if self.node(at).is_some_and(|n| n.consumes & bit != 0) {
                return true;
            }
            for e in self.edges.iter().filter(|e| e.from == at) {
                if e.kinds & bit != 0 && !seen.contains(&e.to) {
                    seen.push(e.to);
                    frontier.push_back(e.to);
                }
            }
        }
        false
    }

    /// No edge may deliver a kind to a node that neither consumes nor
    /// forwards it (the runtime would panic with a `BadDelivery`).
    fn check_dead_ends(&self, diags: &mut Vec<GraphDiag>) {
        for e in &self.edges {
            let Some(to) = self.node(e.to) else { continue };
            let forwarded: KindMask = self
                .edges
                .iter()
                .filter(|f| f.from == e.to)
                .fold(0, |m, f| m | f.kinds);
            let stuck = e.kinds & !(to.consumes | forwarded);
            if stuck != 0 {
                diags.push(GraphDiag {
                    check: "dead-end",
                    detail: format!(
                        "edge {} delivers {} to {} which neither consumes nor forwards it",
                        e.name,
                        kind_names(stuck),
                        e.to,
                    ),
                });
            }
        }
    }

    /// Every bounded pool needs both its acquire and its release site
    /// present; a pool that is only ever drawn down wedges the machine.
    fn check_credits(&self, diags: &mut Vec<GraphDiag>) {
        for p in self.pools.iter().filter(|p| p.capacity > 0) {
            for (role, site) in [("acquire", p.acquire), ("release", p.release)] {
                if !self.sites.contains(&site) && self.edges.iter().all(|e| e.name != site) {
                    diags.push(GraphDiag {
                        check: "credit",
                        detail: format!(
                            "credit pool {} (capacity {}) has no {} site: {:?} is absent \
                             from the pipeline — reserved entries could never return",
                            p.name, p.capacity, role, site,
                        ),
                    });
                }
            }
        }
    }

    /// Bounded, non-credit-protected edges must form a DAG: a cycle of
    /// such edges is the structural precondition for a backpressure
    /// deadlock (each hop waiting on the next's finite buffer).
    fn check_wait_cycles(&self, diags: &mut Vec<GraphDiag>) {
        let blocking: Vec<&GraphEdge> = self
            .edges
            .iter()
            .filter(|e| e.bounded && !e.credit_protected)
            .collect();
        // Iterative DFS with colors over the node set.
        let mut color: Vec<u8> = vec![0; self.nodes.len()]; // 0 white, 1 grey, 2 black
        let idx = |name: &str| self.nodes.iter().position(|n| n.name == name);
        for start in 0..self.nodes.len() {
            if color[start] != 0 {
                continue;
            }
            // Stack of (node, path-so-far) keeps the cycle nameable.
            let mut stack: Vec<(usize, Vec<usize>)> = vec![(start, vec![start])];
            while let Some((at, path)) = stack.pop() {
                if color[at] == 2 {
                    continue;
                }
                color[at] = 2;
                for e in blocking.iter().filter(|e| idx(e.from) == Some(at)) {
                    let Some(to) = idx(e.to) else { continue };
                    if let Some(pos) = path.iter().position(|&n| n == to) {
                        let cycle: Vec<&str> = path[pos..]
                            .iter()
                            .map(|&n| self.nodes[n].name)
                            .chain([self.nodes[to].name])
                            .collect();
                        diags.push(GraphDiag {
                            check: "wait-cycle",
                            detail: format!(
                                "bounded edges form a wait-for cycle: {} \
                                 (deadlock precondition; no credit protocol breaks it)",
                                cycle.join(" -> "),
                            ),
                        });
                        return; // one cycle is enough to fail the check
                    }
                    let mut next = path.clone();
                    next.push(to);
                    stack.push((to, next));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FabricGraph {
        // a --req--> b --resp--> a, with a credit pool on b's buffer.
        FabricGraph {
            nodes: vec![
                GraphNode {
                    name: "a",
                    emits: kind_bit(0),
                    consumes: kind_bit(1),
                },
                GraphNode {
                    name: "b",
                    emits: kind_bit(1),
                    consumes: kind_bit(0),
                },
            ],
            edges: vec![
                GraphEdge {
                    name: "fwd",
                    from: "a",
                    to: "b",
                    kinds: kind_bit(0),
                    bounded: true,
                    credit_protected: true,
                },
                GraphEdge {
                    name: "bwd",
                    from: "b",
                    to: "a",
                    kinds: kind_bit(1),
                    bounded: false,
                    credit_protected: false,
                },
            ],
            pools: vec![CreditPoolSpec {
                name: "b.buf".into(),
                capacity: 4,
                acquire: "reserve",
                release: "credits",
            }],
            sites: vec!["reserve", "credits"],
            skip_specs: vec![],
            wake_sources: vec![],
            resources: vec![],
            footprints: vec![],
        }
    }

    #[test]
    fn well_formed_graph_is_clean() {
        assert_eq!(tiny().check(), vec![]);
    }

    #[test]
    fn dropped_edge_breaks_routing() {
        let mut g = tiny();
        assert!(g.remove_edge("fwd"));
        let diags = g.check();
        assert!(
            diags.iter().any(|d| d.check == "routing"
                && d.detail.contains("ReadReq")
                && d.detail.contains("a")),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_release_site_is_a_wedge() {
        let mut g = tiny();
        assert!(g.remove_site("credits"));
        let diags = g.check();
        assert!(
            diags
                .iter()
                .any(|d| d.check == "credit" && d.detail.contains("b.buf")),
            "{diags:?}"
        );
    }

    #[test]
    fn dead_end_delivery_detected() {
        let mut g = tiny();
        g.nodes[1].consumes = 0; // b no longer consumes ReadReq
        let diags = g.check();
        assert!(diags.iter().any(|d| d.check == "dead-end"), "{diags:?}");
        assert!(diags.iter().any(|d| d.check == "routing"), "{diags:?}");
    }

    #[test]
    fn bounded_cycle_detected() {
        let mut g = tiny();
        g.edges[0].credit_protected = false;
        g.edges[1].bounded = true;
        let diags = g.check();
        let cyc = diags
            .iter()
            .find(|d| d.check == "wait-cycle")
            .expect("cycle reported");
        assert!(cyc.detail.contains("a -> b -> a") || cyc.detail.contains("b -> a -> b"));
    }

    fn with_specs(mut g: FabricGraph) -> FabricGraph {
        g.skip_specs = vec![
            SkipSpec {
                stage: "tick:a",
                node: "a",
                watches: vec!["bwd"],
                wakes: vec!["a:wheel"],
                parallel: false,
            },
            SkipSpec {
                stage: "tick:b",
                node: "b",
                watches: vec!["fwd"],
                wakes: vec![],
                parallel: true,
            },
        ];
        g.wake_sources = vec![WakeSourceSpec {
            node: "a",
            name: "a:wheel",
        }];
        g
    }

    #[test]
    fn complete_skip_specs_are_clean() {
        assert_eq!(with_specs(tiny()).check(), vec![]);
    }

    #[test]
    fn unwatched_in_edge_is_a_quiescence_bug() {
        let mut g = with_specs(tiny());
        assert!(g.remove_watch("tick:b", "fwd"));
        assert!(
            !g.remove_watch("tick:b", "fwd"),
            "second removal is a no-op"
        );
        let diags = g.check();
        assert!(
            diags.iter().any(|d| d.check == "quiescence"
                && d.detail.contains("tick:b")
                && d.detail.contains("fwd")),
            "{diags:?}"
        );
    }

    #[test]
    fn unobserved_wake_source_is_a_quiescence_bug() {
        let mut g = with_specs(tiny());
        assert!(g.remove_wake("tick:a", "a:wheel"));
        assert!(!g.remove_wake("tick:a", "a:wheel"), "second removal no-op");
        let diags = g.check();
        assert!(
            diags.iter().any(|d| d.check == "quiescence"
                && d.detail.contains("tick:a")
                && d.detail.contains("a:wheel")),
            "{diags:?}"
        );
    }

    #[test]
    fn phantom_wake_declaration_detected() {
        let mut g = with_specs(tiny());
        g.skip_specs[1].wakes.push("b:ghost_wheel");
        let diags = g.check();
        assert!(
            diags.iter().any(|d| d.check == "quiescence"
                && d.detail.contains("unregistered wake source")
                && d.detail.contains("b:ghost_wheel")),
            "{diags:?}"
        );
    }

    #[test]
    fn skip_spec_endpoints_must_exist() {
        let mut g = with_specs(tiny());
        g.skip_specs.push(SkipSpec {
            stage: "tick:ghost",
            node: "ghost",
            watches: vec![],
            wakes: vec![],
            parallel: false,
        });
        g.skip_specs[0].watches.push("no_such_edge");
        let diags = g.check();
        assert!(
            diags
                .iter()
                .any(|d| d.check == "quiescence" && d.detail.contains("unknown node")),
            "{diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.check == "quiescence" && d.detail.contains("no_such_edge")),
            "{diags:?}"
        );
    }

    fn with_footprints(mut g: FabricGraph) -> FabricGraph {
        g.resources = vec![
            SharedResourceSpec {
                name: "svc.pool",
                owner: "svc",
                note: "shared pool",
            },
            SharedResourceSpec {
                name: "svc.log",
                owner: "svc",
                note: "shared log",
            },
        ];
        g.footprints = vec![
            FootprintSpec {
                node: "a",
                reads: vec!["svc.pool"],
                writes: vec!["svc.log"],
            },
            FootprintSpec {
                node: "b",
                reads: vec![],
                writes: vec![],
            },
        ];
        g
    }

    #[test]
    fn complete_footprints_are_clean() {
        // "tick:a" writes shared state but is sequential; "tick:b" is
        // parallel with an empty footprint — both fine.
        assert_eq!(with_footprints(with_specs(tiny())).check(), vec![]);
    }

    #[test]
    fn graphs_without_footprints_opt_out() {
        // Pre-footprint graphs (empty registry + declarations) pass
        // vacuously, even with skip specs present.
        assert_eq!(with_specs(tiny()).check(), vec![]);
    }

    #[test]
    fn dropped_footprint_names_the_member_and_stage() {
        let mut g = with_footprints(with_specs(tiny()));
        assert!(g.remove_footprint("a"));
        assert!(!g.remove_footprint("a"), "second removal is a no-op");
        let diags = g.check();
        assert!(
            diags.iter().any(|d| d.check == "footprint"
                && d.detail.contains("\"a\"")
                && d.detail.contains("tick:a")),
            "{diags:?}"
        );
    }

    #[test]
    fn shared_write_on_parallel_stage_is_flagged() {
        let mut g = with_footprints(with_specs(tiny()));
        g.footprints[1].writes.push("svc.pool"); // b ticks on threads
        let diags = g.check();
        assert!(
            diags.iter().any(|d| d.check == "parallel-safety"
                && d.detail.contains("tick:b")
                && d.detail.contains("svc.pool")),
            "{diags:?}"
        );
    }

    #[test]
    fn shared_read_on_parallel_stage_is_safe() {
        let mut g = with_footprints(with_specs(tiny()));
        g.footprints[1].reads.push("svc.pool"); // RR sharing is fine
        assert_eq!(g.check(), vec![]);
    }

    #[test]
    fn phantom_resource_in_footprint_detected() {
        let mut g = with_footprints(with_specs(tiny()));
        g.footprints[0].writes.push("svc.ghost");
        let diags = g.check();
        assert!(
            diags.iter().any(|d| d.check == "footprint"
                && d.detail.contains("svc.ghost")
                && d.detail.contains("unregistered")),
            "{diags:?}"
        );
    }

    #[test]
    fn footprint_for_unknown_node_detected() {
        let mut g = with_footprints(with_specs(tiny()));
        g.footprints.push(FootprintSpec {
            node: "ghost",
            reads: vec![],
            writes: vec![],
        });
        let diags = g.check();
        assert!(
            diags
                .iter()
                .any(|d| d.check == "footprint" && d.detail.contains("unknown node")),
            "{diags:?}"
        );
    }

    #[test]
    fn report_names_blocking_resources_and_verdicts() {
        let g = with_footprints(with_specs(tiny()));
        let report = g.footprint_report();
        assert!(report.contains("svc.pool"), "{report}");
        assert!(
            report.contains("tick:a [sequential]")
                && report.contains("blocked by shared writes: svc.log"),
            "{report}"
        );
        assert!(
            report.contains("tick:b [parallel (NDP_PARALLEL)]")
                && report.contains("parallel-safe (certified: no shared writes)"),
            "{report}"
        );
    }

    #[test]
    fn dangling_edge_reported_structurally() {
        let mut g = tiny();
        g.edges[0].to = "ghost";
        let diags = g.check();
        assert!(diags.iter().all(|d| d.check == "structure"), "{diags:?}");
        assert!(diags[0].detail.contains("ghost"));
    }
}
