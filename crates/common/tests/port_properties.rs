//! Property tests for the fabric port types: under arbitrary backpressure
//! and capacity schedules, a port never drops, duplicates, or reorders a
//! packet — the popped sequence is always exactly the pushed sequence.

use proptest::prelude::*;

use ndp_common::ids::{Cycle, Node};
use ndp_common::packet::{Packet, PacketKind};
use ndp_common::port::{Edge, FabricCtx, InPort, OutPort};

/// A packet tagged with a sequence number so identity survives the queue.
fn pkt(seq: u64) -> Packet {
    Packet::new(
        Node::Sm(0),
        Node::L2(0),
        0,
        PacketKind::ReadReq {
            addr: 0x1000,
            bytes: 128,
            tag: seq,
            block: ndp_common::packet::NO_BLOCK,
        },
    )
}

fn seq_of(p: &Packet) -> u64 {
    match p.kind {
        PacketKind::ReadReq { tag, .. } => tag,
        _ => unreachable!("only ReadReq packets are used here"),
    }
}

proptest! {
    /// OutPort under a random push/pop schedule with a random capacity:
    /// every pushed packet pops exactly once, in push order, and occupancy
    /// never exceeds capacity.
    #[test]
    fn outport_conserves_and_orders_packets(
        capacity in 1usize..16,
        schedule in prop::collection::vec(any::<bool>(), 1..300),
    ) {
        let mut port = OutPort::new(capacity);
        let mut pushed = Vec::new();
        let mut popped = Vec::new();
        let mut next = 0u64;
        for push in schedule {
            if push {
                // Sender obeys backpressure, as fabric components must.
                if port.can_accept() {
                    port.push_back(pkt(next));
                    pushed.push(next);
                    next += 1;
                }
            } else if let Some(p) = port.pop_front() {
                popped.push(seq_of(&p));
            }
            prop_assert!(port.len() <= capacity, "occupancy exceeded capacity");
            prop_assert_eq!(port.can_accept(), port.len() < capacity);
        }
        while let Some(p) = port.pop_front() {
            popped.push(seq_of(&p));
        }
        prop_assert_eq!(popped, pushed, "drop/duplicate/reorder detected");
    }

    /// InPort under random per-packet latencies and a random pop schedule:
    /// FIFO order holds even when later packets become ready earlier, no
    /// packet pops before its ready cycle, and none is lost or duplicated.
    #[test]
    fn inport_conserves_orders_and_gates_packets(
        latencies in prop::collection::vec(0u64..40, 1..100),
        pop_gaps in prop::collection::vec(0u64..8, 1..400),
    ) {
        let mut port = InPort::new(0, usize::MAX);
        let mut ready_at = Vec::new();
        for (i, &lat) in latencies.iter().enumerate() {
            // Packets arrive one cycle apart with their own delays.
            let arrive = i as Cycle;
            port.push_at(arrive + lat, pkt(i as u64));
            ready_at.push(arrive + lat);
        }
        let mut popped = Vec::new();
        let mut now: Cycle = 0;
        for gap in pop_gaps {
            now += gap;
            while let Some(p) = port.pop_ready(now) {
                let s = seq_of(&p) as usize;
                prop_assert!(
                    ready_at[s] <= now,
                    "packet {s} popped at {now} before ready {}", ready_at[s]
                );
                popped.push(s as u64);
            }
        }
        // Everything still queued becomes ready far in the future.
        now += 1_000;
        while let Some(p) = port.pop_ready(now) {
            popped.push(seq_of(&p));
        }
        let want: Vec<u64> = (0..latencies.len() as u64).collect();
        prop_assert_eq!(popped, want, "drop/duplicate/reorder detected");
    }
}

/// Multi-lane edge machine: N transmit lanes into one bounded receiver,
/// for the `run_edge` conservation property below.
struct EdgeRig {
    lanes: Vec<OutPort>,
    rx: OutPort,
}

impl FabricCtx for EdgeRig {
    type Tx = ();
    type Rx = ();
    type Comp = ();
    type Gate = ();
    type Side = ();

    fn lanes(&self, _: ()) -> usize {
        self.lanes.len()
    }
    fn gate_open(&self, _: (), _: Cycle) -> bool {
        true
    }
    fn peek(&self, _: Cycle, _: (), lane: usize) -> Option<&Packet> {
        self.lanes[lane].front()
    }
    fn route(
        &self,
        _: Cycle,
        _: (),
        _: usize,
        _: &Packet,
    ) -> Result<(), ndp_common::error::SimError> {
        Ok(())
    }
    fn can_accept(&self, _: (), _: &Packet) -> bool {
        self.rx.can_accept()
    }
    fn pop(&mut self, _: Cycle, _: (), lane: usize) -> Packet {
        self.lanes[lane].pop_front().expect("peeked")
    }
    fn accept(&mut self, _: Cycle, _: (), p: Packet) -> Result<(), ndp_common::error::SimError> {
        self.rx.push_back(p);
        Ok(())
    }
    fn tick_comp(&mut self, _: Cycle, _: ()) {}
    fn side(&mut self, _: Cycle, _: ()) {}
    fn observe(&mut self, _: Cycle, _: ndp_common::obs::TraceSite, _: &Packet) {}
}

proptest! {
    /// `run_edge` across randomly filled lanes and a randomly drained
    /// bounded receiver: every packet crosses exactly once, per-lane order
    /// is preserved, and the receiver never exceeds its capacity.
    #[test]
    fn run_edge_conserves_packets_under_backpressure(
        num_lanes in 1usize..5,
        per_lane in prop::collection::vec(0usize..20, 1..5),
        rx_capacity in 1usize..12,
        drains in prop::collection::vec(0usize..10, 1..200),
    ) {
        let mut rig = EdgeRig {
            lanes: (0..num_lanes).map(|_| OutPort::unbounded()).collect(),
            rx: OutPort::new(rx_capacity),
        };
        // Lane l's packets are numbered l*1000, l*1000+1, ... so both the
        // owning lane and the intra-lane order are recoverable.
        let mut total = 0usize;
        for (l, count) in per_lane.iter().cycle().take(num_lanes).enumerate() {
            for i in 0..*count {
                rig.lanes[l].push_back(pkt((l * 1000 + i) as u64));
                total += 1;
            }
        }
        let edge = Edge { tx: (), site: None };
        let mut delivered: Vec<u64> = Vec::new();
        for (now, drain) in drains.iter().enumerate() {
            ndp_common::port::run_edge(&mut rig, now as Cycle, &edge).unwrap();
            prop_assert!(rig.rx.len() <= rx_capacity);
            for _ in 0..*drain {
                if let Some(p) = rig.rx.pop_front() {
                    delivered.push(seq_of(&p));
                }
            }
            if delivered.len() + rig.rx.len() == total && rig.lanes.iter().all(|l| l.is_empty()) {
                break;
            }
        }
        // Drain whatever remains with an unconstrained receiver.
        loop {
            while let Some(p) = rig.rx.pop_front() {
                delivered.push(seq_of(&p));
            }
            if rig.lanes.iter().all(|l| l.is_empty()) {
                break;
            }
            ndp_common::port::run_edge(&mut rig, 1_000_000, &edge).unwrap();
        }
        prop_assert_eq!(delivered.len(), total, "packets lost or duplicated");
        // Per-lane FIFO order: the subsequence of each lane is sorted.
        for l in 0..num_lanes {
            let lane_seqs: Vec<u64> = delivered
                .iter()
                .copied()
                .filter(|s| (s / 1000) as usize == l)
                .collect();
            prop_assert!(
                lane_seqs.windows(2).all(|w| w[0] < w[1]),
                "lane {l} reordered: {lane_seqs:?}"
            );
        }
    }
}
