//! Kernel-construction helpers: a tiny assembler over the warp IR with a
//! register allocator and a page-aligned array allocator.

use ndp_isa::instr::{AluOp, Instr, MemSpace, Operand, Reg};
use ndp_isa::program::{ArrayDecl, Item, Program, TripCount};

/// Problem-size scaling shared by all workloads.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Warps launched.
    pub warps: u32,
    /// Nominal loop trip count (per-workload kernels derive their loops
    /// from this).
    pub iters: u32,
}

impl Scale {
    /// Tiny problems for unit tests.
    pub fn tiny() -> Self {
        Scale { warps: 8, iters: 4 }
    }

    /// Evaluation scale: enough warps to fill 64 SMs with multiple waves
    /// and saturate the GPU links on the streaming kernels, while keeping
    /// one simulation in the seconds range (the same
    /// scaling-for-feasibility step the paper applies, §5).
    pub fn eval() -> Self {
        Scale {
            warps: 2048,
            iters: 16,
        }
    }

    pub fn threads(&self) -> u64 {
        self.warps as u64 * 32
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::eval()
    }
}

/// Kernel builder.
pub struct Kb {
    name: &'static str,
    items: Vec<Item>,
    arrays: Vec<ArrayDecl>,
    next_reg: u8,
    base_cursor: u64,
    warps: u32,
}

impl Kb {
    pub fn new(name: &'static str, warps: u32) -> Self {
        Kb {
            name,
            items: vec![],
            arrays: vec![],
            next_reg: 0,
            // Leave page 0 unused.
            base_cursor: 0x10_0000,
            warps,
        }
    }

    /// Allocate a fresh register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        assert!(
            self.next_reg <= 64,
            "register budget exceeded in {}",
            self.name
        );
        r
    }

    /// Declare a data array; returns its base address (4 KB aligned so the
    /// random page→HMC interleaving applies cleanly).
    pub fn array(&mut self, name: &'static str, bytes: u64, elem_bytes: u32) -> u64 {
        let base = self.base_cursor;
        self.arrays.push(ArrayDecl {
            name,
            base,
            bytes,
            elem_bytes,
        });
        self.base_cursor += bytes.div_ceil(4096).max(1) * 4096;
        base
    }

    pub fn op(&mut self, i: Instr) {
        self.items.push(Item::Op(i));
    }

    /// `dst = a * b + c` into a fresh register.
    pub fn imad(&mut self, a: Operand, b: Operand, c: Operand) -> Reg {
        let d = self.reg();
        self.op(Instr::alu3(AluOp::IMad, d, a, b, c));
        d
    }

    pub fn iadd(&mut self, a: Operand, b: Operand) -> Reg {
        let d = self.reg();
        self.op(Instr::alu(AluOp::IAdd, d, a, b));
        d
    }

    pub fn imul(&mut self, a: Operand, b: Operand) -> Reg {
        let d = self.reg();
        self.op(Instr::alu(AluOp::IMul, d, a, b));
        d
    }

    pub fn and(&mut self, a: Operand, b: Operand) -> Reg {
        let d = self.reg();
        self.op(Instr::alu(AluOp::And, d, a, b));
        d
    }

    pub fn shl(&mut self, a: Operand, b: Operand) -> Reg {
        let d = self.reg();
        self.op(Instr::alu(AluOp::Shl, d, a, b));
        d
    }

    pub fn falu(&mut self, op: AluOp, a: Operand, b: Operand) -> Reg {
        let d = self.reg();
        self.op(Instr::alu(op, d, a, b));
        d
    }

    pub fn fmad(&mut self, a: Operand, b: Operand, c: Operand) -> Reg {
        let d = self.reg();
        self.op(Instr::alu3(AluOp::FMad, d, a, b, c));
        d
    }

    /// Reduce into an existing register: `acc = op(acc, b)`.
    pub fn reduce(&mut self, op: AluOp, acc: Reg, b: Operand) {
        self.op(Instr::alu(op, acc, Operand::Reg(acc), b));
    }

    /// Two-source ALU into an existing register (explicit register reuse
    /// for large kernels).
    pub fn alu_into(&mut self, op: AluOp, d: Reg, a: Operand, b: Operand) {
        self.op(Instr::alu(op, d, a, b));
    }

    /// Three-source ALU into an existing register.
    pub fn alu3_into(&mut self, op: AluOp, d: Reg, a: Operand, b: Operand, c: Operand) {
        self.op(Instr::alu3(op, d, a, b, c));
    }

    /// Load into an existing register.
    pub fn ld_into(&mut self, d: Reg, addr: Reg) {
        self.op(Instr::ld(d, addr));
    }

    /// Reset the register allocator cursor (reuse registers across phases
    /// whose values are dead — e.g. after a barrier).
    pub fn reset_regs(&mut self, n: u8) {
        self.next_reg = n;
    }

    /// Current register cursor.
    pub fn reg_cursor(&self) -> u8 {
        self.next_reg
    }

    pub fn mov(&mut self, a: Operand) -> Reg {
        let d = self.reg();
        self.op(Instr::mov(d, a));
        d
    }

    pub fn ld(&mut self, addr: Reg) -> Reg {
        let d = self.reg();
        self.op(Instr::ld(d, addr));
        d
    }

    pub fn ld_const(&mut self, addr: Reg) -> Reg {
        let d = self.reg();
        self.op(Instr::Ld {
            dst: d,
            space: MemSpace::Const,
            addr,
        });
        d
    }

    pub fn ld_shared(&mut self, addr: Reg) -> Reg {
        let d = self.reg();
        self.op(Instr::Ld {
            dst: d,
            space: MemSpace::Shared,
            addr,
        });
        d
    }

    pub fn st(&mut self, val: Reg, addr: Reg) {
        self.op(Instr::st(val, addr));
    }

    pub fn st_shared(&mut self, val: Reg, addr: Reg) {
        self.op(Instr::St {
            val,
            space: MemSpace::Shared,
            addr,
        });
    }

    pub fn bar(&mut self) {
        self.items.push(Item::Bar);
    }

    pub fn loop_n(&mut self, trips: u32, body: impl FnOnce(&mut Kb)) {
        self.items.push(Item::LoopBegin(TripCount::Const(trips)));
        body(self);
        self.items.push(Item::LoopEnd);
    }

    pub fn loop_irregular(&mut self, base: u32, spread: u32, body: impl FnOnce(&mut Kb)) {
        self.items
            .push(Item::LoopBegin(TripCount::PerWarp { base, spread }));
        body(self);
        self.items.push(Item::LoopEnd);
    }

    /// Address of a 4-byte element: `base + (iter*stride_elems + tid) * 4`.
    /// Emits the canonical two-instruction address chain.
    pub fn addr_stream(&mut self, base: u64, stride_elems: u64) -> Reg {
        let off = self.imad(
            Operand::Iter(0),
            Operand::Imm(stride_elems * 4),
            Operand::Imm(base),
        );

        self.imad(Operand::Tid, Operand::Imm(4), Operand::Reg(off))
    }

    /// Broadcast address: `base + iter*4` (all lanes identical).
    pub fn addr_broadcast(&mut self, base: u64, modulo: u64) -> Reg {
        // iter % modulo via mask when modulo is a power of two.
        assert!(modulo.is_power_of_two());
        let m = self.and(Operand::Iter(0), Operand::Imm(modulo - 1));
        self.imad(Operand::Reg(m), Operand::Imm(4), Operand::Imm(base))
    }

    /// Broadcast address at cache-line granularity: `base +
    /// (iter % modulo)*line` — a fresh shared line per iteration, the
    /// mat-vec operand pattern (all warps at iteration j read vector
    /// element block j).
    pub fn addr_broadcast_line(&mut self, base: u64, modulo: u64) -> Reg {
        assert!(modulo.is_power_of_two());
        let m = self.and(Operand::Iter(0), Operand::Imm(modulo - 1));
        self.imad(Operand::Reg(m), Operand::Imm(4096), Operand::Imm(base))
    }

    /// Validate and assemble the program; an invalid kernel comes back as
    /// a typed [`SimError::InvalidKernel`] instead of a panic.
    pub fn try_finish(self) -> Result<Program, ndp_common::error::SimError> {
        let mut p = Program::new(self.name, self.warps);
        p.items = self.items;
        p.arrays = self.arrays;
        if let Err(e) = p.validate() {
            return Err(ndp_common::error::SimError::InvalidKernel {
                name: p.name.to_string(),
                detail: format!("{e:?}"),
            });
        }
        Ok(p)
    }

    pub fn finish(self) -> Program {
        self.try_finish()
            .unwrap_or_else(|e| panic!("kernel invalid: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_program() {
        let mut k = Kb::new("t", 4);
        let a = k.array("a", 4096, 4);
        let b = k.array("b", 4096, 4);
        assert_ne!(a, b);
        assert_eq!(a % 4096, 0);
        k.loop_n(4, |k| {
            let addr = k.addr_stream(a, 128);
            let x = k.ld(addr);
            let y = k.falu(AluOp::FMul, Operand::Reg(x), Operand::Reg(x));
            let out = k.addr_stream(b, 128);
            k.st(y, out);
        });
        let p = k.finish();
        assert_eq!(p.arrays.len(), 2);
        assert!(p.num_ops() > 0);
    }

    #[test]
    #[should_panic(expected = "register budget")]
    fn register_budget_enforced() {
        let mut k = Kb::new("t", 1);
        for _ in 0..65 {
            k.reg();
        }
    }
}
