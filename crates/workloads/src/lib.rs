//! The ten evaluated workloads (Table 1), re-expressed in the warp IR.
//!
//! Each kernel reproduces the *memory access structure* of its original
//! (Rodinia / Parboil / CUDA SDK / Polybench — see DESIGN.md for the
//! substitution argument): streaming vs. strided vs. indirect access,
//! loads-to-stores ratio, compute per byte, scratchpad/barrier usage, and —
//! asserted by tests — the per-block NSU instruction counts of Table 1.

#![forbid(unsafe_code)]

pub mod builder;
pub mod kernels;

pub use builder::{Kb, Scale};
pub use kernels::{all_workloads, workload, Workload, WORKLOADS};
