//! The ten Table-1 workloads.
//!
//! Per-workload notes state what the original kernel does and which
//! behavioural properties we preserve. Offload-block shapes (NSU
//! instruction counts) are asserted against Table 1 by the tests at the
//! bottom of this file.

use ndp_common::error::SimError;
use ndp_isa::instr::{AluOp, Operand};
use ndp_isa::program::Program;

use crate::builder::{Kb, Scale};

use Operand::{Imm, Iter, Reg as R, Tid};

/// IEEE-754 binary32 immediate.
fn f(x: f32) -> Operand {
    Imm(x.to_bits() as u64)
}

/// The evaluated workload set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    Bprop,
    Bfs,
    Bicg,
    Fwt,
    Kmn,
    MiniFe,
    Sp,
    Stn,
    Stcl,
    Vadd,
}

/// All workloads in Table 1 order.
pub const WORKLOADS: [Workload; 10] = [
    Workload::Bprop,
    Workload::Bfs,
    Workload::Bicg,
    Workload::Fwt,
    Workload::Kmn,
    Workload::MiniFe,
    Workload::Sp,
    Workload::Stn,
    Workload::Stcl,
    Workload::Vadd,
];

impl Workload {
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Bprop => "BPROP",
            Workload::Bfs => "BFS",
            Workload::Bicg => "BICG",
            Workload::Fwt => "FWT",
            Workload::Kmn => "KMN",
            Workload::MiniFe => "MiniFE",
            Workload::Sp => "SP",
            Workload::Stn => "STN",
            Workload::Stcl => "STCL",
            Workload::Vadd => "VADD",
        }
    }

    pub fn description(&self) -> &'static str {
        match self {
            Workload::Bprop => "Back Propagation [Rodinia]",
            Workload::Bfs => "Breadth-first search [Rodinia]",
            Workload::Bicg => "BiCGStab solver [Polybench]",
            Workload::Fwt => "Fast Walsh Transform [CUDA SDK]",
            Workload::Kmn => "K-means [Rodinia]",
            Workload::MiniFe => "Finite element method [Mantevo]",
            Workload::Sp => "Scalar product [CUDA SDK]",
            Workload::Stn => "Stencil [Parboil]",
            Workload::Stcl => "Streamcluster [Rodinia]",
            Workload::Vadd => "Vector addition [CUDA SDK]",
        }
    }

    /// Table 1 "# of instructions in offload blocks" (NSU-translated).
    pub fn table1_sizes(&self) -> &'static [usize] {
        match self {
            Workload::Bprop => &[29, 23],
            Workload::Bfs => &[1, 1, 16],
            Workload::Bicg => &[4, 4],
            Workload::Fwt => &[16, 4],
            Workload::Kmn => &[3],
            Workload::MiniFe => &[3],
            Workload::Sp => &[3],
            Workload::Stn => &[15],
            Workload::Stcl => &[3, 9, 1, 1],
            Workload::Vadd => &[4],
        }
    }

    /// Build the kernel, surfacing ISA-validation failures as a typed
    /// [`SimError::InvalidKernel`].
    pub fn try_build(&self, scale: &Scale) -> Result<Program, SimError> {
        match self {
            Workload::Bprop => bprop(scale),
            Workload::Bfs => bfs(scale),
            Workload::Bicg => bicg(scale),
            Workload::Fwt => fwt(scale),
            Workload::Kmn => kmn(scale),
            Workload::MiniFe => minife(scale),
            Workload::Sp => sp(scale),
            Workload::Stn => stn(scale),
            Workload::Stcl => stcl(scale),
            Workload::Vadd => vadd(scale),
        }
    }

    pub fn build(&self, scale: &Scale) -> Program {
        self.try_build(scale).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Build one workload by name (case-insensitive).
pub fn workload(name: &str) -> Option<Workload> {
    WORKLOADS
        .iter()
        .copied()
        .find(|w| w.name().eq_ignore_ascii_case(name))
}

/// All programs at a given scale.
pub fn all_workloads(scale: &Scale) -> Vec<(Workload, Program)> {
    WORKLOADS.iter().map(|w| (*w, w.build(scale))).collect()
}

/// VADD — `C[i] = A[i] + B[i]`, 50M elements in the paper; a grid-stride
/// streaming loop here. One offload block: LD, LD, FADD, ST (Table 1: 4).
fn vadd(s: &Scale) -> Result<Program, SimError> {
    let mut k = Kb::new("VADD", s.warps);
    let n = s.threads() * s.iters as u64;
    let a = k.array("A", n * 4, 4);
    let b = k.array("B", n * 4, 4);
    let c = k.array("C", n * 4, 4);
    let stride = s.threads();
    k.loop_n(s.iters, |k| {
        let aa = k.addr_stream(a, stride);
        let av = k.ld(aa);
        let ba = k.addr_stream(b, stride);
        let bv = k.ld(ba);
        let cv = k.falu(AluOp::FAdd, R(av), R(bv));
        let ca = k.addr_stream(c, stride);
        k.st(cv, ca);
    });
    k.try_finish()
}

/// KMN — k-means distance phase: per feature, stream the point values,
/// subtract the centroid feature, store the delta. The centroid components
/// are compiled in as immediates, mirroring Rodinia's constant-memory
/// centroids (whose values the compiler can treat as literals after the
/// host uploads them) — crucially, the block then transfers **no**
/// registers, like the paper's 3-instruction KMN block. With 2 memory ops
/// per 3 instructions over the longest streams of the suite, this is the
/// workload where NDP pays off most (§7: up to +66.8%).
/// One offload block: LD, FSUB, ST (Table 1: 3).
fn kmn(s: &Scale) -> Result<Program, SimError> {
    let mut k = Kb::new("KMN", s.warps);
    let feats = (s.iters * 2).max(4);
    let n = s.threads() * feats as u64;
    let x = k.array("features", n * 4, 4);
    let d = k.array("delta", n * 4, 4);
    let stride = s.threads();
    let acc = k.mov(f(0.0));
    let best = k.mov(f(1.0e30));
    k.loop_n(feats, |k| {
        let xa = k.addr_stream(x, stride);
        let xv = k.ld(xa);
        let dv = k.falu(AluOp::FSub, R(xv), f(0.37));
        let da = k.addr_stream(d, stride);
        k.st(dv, da);
        // GPU-side membership bookkeeping (min-distance tracking across
        // clusters) — the compute Rodinia's kmeans interleaves with the
        // streaming. It keeps the SMs productive while offloaded instances
        // stream on the NSUs, which is what lets high offload ratios win.
        k.reduce(AluOp::FMul, acc, f(1.0009));
        let t1 = k.falu(AluOp::FMul, R(acc), f(0.5));
        let t2 = k.falu(AluOp::FAdd, R(t1), R(acc));
        let t3 = k.falu(AluOp::FMul, R(t2), R(t2));
        let t4 = k.fmad(R(t3), R(t1), R(t2));
        k.alu_into(AluOp::FMin, best, R(best), R(t4));
    });
    // Final membership write.
    let oa = k.imad(Tid, Imm(4), Imm(d));
    k.st(best, oa);
    k.try_finish()
}

/// MiniFE — the vector kernels of the CG solve (waxpby-style streaming),
/// followed by a scratchpad dot-product reduction that stays on the GPU.
/// One offload block: LD, FMUL, ST (Table 1: 3).
fn minife(s: &Scale) -> Result<Program, SimError> {
    let mut k = Kb::new("MiniFE", s.warps);
    let n = s.threads() * s.iters as u64;
    let x = k.array("x", n * 4, 4);
    let w = k.array("w", n * 4, 4);
    let stride = s.threads();
    k.loop_n(s.iters, |k| {
        let xa = k.addr_stream(x, stride);
        let xv = k.ld(xa);
        let wv = k.falu(AluOp::FMul, R(xv), f(0.85));
        let wa = k.addr_stream(w, stride);
        k.st(wv, wa);
    });
    // Scratchpad reduction tail (kept on the GPU; never an offload block).
    let sa = k.imul(Operand::Lane, Imm(4));
    let z = k.mov(f(0.0));
    k.st_shared(z, sa);
    k.bar();
    let r = k.ld_shared(sa);
    let acc = k.falu(AluOp::FAdd, R(r), R(z));
    k.st_shared(acc, sa);
    k.try_finish()
}

/// SP — scalar product of 512 vector pairs: streaming loads and a multiply
/// feed a scratchpad tree reduction on the GPU.
/// One offload block: LD, LD, FMUL (Table 1: 3; live-out = product).
fn sp(s: &Scale) -> Result<Program, SimError> {
    let mut k = Kb::new("SP", s.warps);
    let n = s.threads() * s.iters as u64;
    let a = k.array("a", n * 4, 4);
    let b = k.array("b", n * 4, 4);
    let stride = s.threads();
    let acc = k.mov(f(0.0));
    k.loop_n(s.iters, |k| {
        let aa = k.addr_stream(a, stride);
        let av = k.ld(aa);
        let ba = k.addr_stream(b, stride);
        let bv = k.ld(ba);
        let t = k.falu(AluOp::FMul, R(av), R(bv));
        k.reduce(AluOp::FAdd, acc, R(t));
    });
    // Scratchpad tree reduction.
    let sa = k.imul(Operand::Lane, Imm(4));
    k.st_shared(acc, sa);
    k.bar();
    let other = k.ld_shared(sa);
    k.reduce(AluOp::FAdd, acc, R(other));
    k.st_shared(acc, sa);
    k.try_finish()
}

/// BICG — the two mat-vec products of the BiCG kernel: `q += A·p` and
/// `s += Aᵀ·r`, both as streaming partial-product kernels. Two offload
/// blocks of LD, LD, FMUL, ST (Table 1: 4, 4). The `p`/`r` operands are
/// broadcast loads with strong cache locality.
fn bicg(s: &Scale) -> Result<Program, SimError> {
    let mut k = Kb::new("BICG", s.warps);
    let n = s.threads() * s.iters as u64;
    let a = k.array("A", n * 4, 4);
    let m = (s.iters as u64).next_power_of_two();
    // One page per shared vector block: the operand vector is spread across
    // the stacks (unrestricted placement — the premise of the paper).
    let p = k.array("p", m * 4096, 4);
    let q = k.array("q_part", n * 4, 4);
    let r = k.array("r", m * 4096, 4);
    let sv = k.array("s_part", n * 4, 4);
    let stride = s.threads();
    k.loop_n(s.iters, |k| {
        let aa = k.addr_stream(a, stride);
        let av = k.ld(aa);
        let pa = k.addr_broadcast_line(p, m);
        let pv = k.ld(pa);
        let t = k.falu(AluOp::FMul, R(av), R(pv));
        let qa = k.addr_stream(q, stride);
        k.st(t, qa);
    });
    k.loop_n(s.iters, |k| {
        let aa = k.addr_stream(a, stride);
        let av = k.ld(aa);
        let ra = k.addr_broadcast_line(r, m);
        let rv = k.ld(ra);
        let t = k.falu(AluOp::FMul, R(av), R(rv));
        let sa = k.addr_stream(sv, stride);
        k.st(t, sa);
    });
    k.try_finish()
}

/// FWT — fast Walsh transform: a radix-4 stage loop (block of 16: 4 LD,
/// 8 butterflies, 4 ST) with barriers between stages, then a radix-2
/// combine pass (block of 4: LD, LD, FADD, ST). Butterfly addressing uses
/// shift/mask arithmetic and produces partially divergent accesses.
fn fwt(s: &Scale) -> Result<Program, SimError> {
    let mut k = Kb::new("FWT", s.warps);
    let n = s.threads() * 4 * s.iters.max(2) as u64;
    let data = k.array("data", n * 4, 4);
    let out = k.array("out", n * 4, 4);
    let stages = 4u32.min(s.iters).max(2);
    k.loop_n(stages, |k| {
        // Butterfly group addressing: pos = ((tid >> s) << (s+2)) | (tid &
        // ((1<<s)-1)), lane-dependent and stage-dependent.
        let hi = k.shl(Tid, Imm(2)); // tid * 4 elements per butterfly
        let grp = k.shl(R(hi), Iter(0));
        let msk = k.and(Tid, Imm(3));
        let base_idx = k.iadd(R(grp), R(msk));
        let a0 = k.imad(R(base_idx), Imm(4), Imm(data));
        let v0 = k.ld(a0);
        let a1 = k.iadd(R(a0), Imm(16));
        let v1 = k.ld(a1);
        let a2 = k.iadd(R(a1), Imm(16));
        let v2 = k.ld(a2);
        let a3 = k.iadd(R(a2), Imm(16));
        let v3 = k.ld(a3);
        let s0 = k.falu(AluOp::FAdd, R(v0), R(v1));
        let d0 = k.falu(AluOp::FSub, R(v0), R(v1));
        let s1 = k.falu(AluOp::FAdd, R(v2), R(v3));
        let d1 = k.falu(AluOp::FSub, R(v2), R(v3));
        let r0 = k.falu(AluOp::FAdd, R(s0), R(s1));
        let r1 = k.falu(AluOp::FAdd, R(d0), R(d1));
        let r2 = k.falu(AluOp::FSub, R(s0), R(s1));
        let r3 = k.falu(AluOp::FSub, R(d0), R(d1));
        k.st(r0, a0);
        k.st(r1, a1);
        k.st(r2, a2);
        k.st(r3, a3);
        k.bar();
    });
    k.reset_regs(2);
    // Radix-2 combine into the output vector.
    let stride = s.threads();
    k.loop_n(s.iters.max(2), |k| {
        let xa = k.addr_stream(data, stride);
        let xv = k.ld(xa);
        let ya = k.addr_stream(out, stride);
        let yv = k.ld(ya);
        let sum = k.falu(AluOp::FAdd, R(xv), R(yv));
        let oa = k.addr_stream(out, stride);
        k.st(sum, oa);
    });
    k.try_finish()
}

/// STN — 3-D 7-point stencil over a 512×512×64-style grid (scaled): the z
/// loop re-touches the previous/current planes, giving the moderate L2 read
/// locality (~45% in the paper) that makes offloading counterproductive.
/// One offload block: 7 LD, 7 FP ops, 1 ST (Table 1: 15).
fn stn(s: &Scale) -> Result<Program, SimError> {
    let mut k = Kb::new("STN", s.warps);
    // One plane holds exactly the launched threads; z iterates planes.
    let plane = s.threads();
    let planes = s.iters as u64 + 2;
    let grid = k.array("grid", plane * planes * 4, 4);
    let out = k.array("out", plane * planes * 4, 4);
    let cols = 64u64; // row length in elements
    k.loop_n(s.iters, |k| {
        // idx = (iter+1)*plane + tid
        let ip1 = k.iadd(Iter(0), Imm(1));
        let idx = k.imad(R(ip1), Imm(plane), Tid);
        let ca = k.imad(R(idx), Imm(4), Imm(grid));
        let c = k.ld(ca);
        let xm = k.iadd(R(ca), Imm((-4i64) as u64));
        let vxm = k.ld(xm);
        let xp = k.iadd(R(ca), Imm(4));
        let vxp = k.ld(xp);
        let ym = k.iadd(R(ca), Imm((-(4 * cols as i64)) as u64));
        let vym = k.ld(ym);
        let yp = k.iadd(R(ca), Imm(4 * cols));
        let vyp = k.ld(yp);
        let zm = k.iadd(R(ca), Imm((-(4 * plane as i64)) as u64));
        let vzm = k.ld(zm);
        let zp = k.iadd(R(ca), Imm(4 * plane));
        let vzp = k.ld(zp);
        let t0 = k.falu(AluOp::FMul, R(c), f(0.4));
        let t1 = k.fmad(R(vxm), f(0.1), R(t0));
        let t2 = k.fmad(R(vxp), f(0.1), R(t1));
        let t3 = k.fmad(R(vym), f(0.1), R(t2));
        let t4 = k.fmad(R(vyp), f(0.1), R(t3));
        let t5 = k.fmad(R(vzm), f(0.1), R(t4));
        let t6 = k.fmad(R(vzp), f(0.1), R(t5));
        let oa = k.imad(R(idx), Imm(4), Imm(out));
        k.st(t6, oa);
    });
    k.try_finish()
}

/// BFS — frontier expansion with data-dependent neighbor gathers. The
/// irregular per-warp loop streams the edge list; the two gathers
/// (distance and visited flag of the neighbor) are data-dependent,
/// divergent loads that the §4.4 rule offloads as single-instruction
/// blocks (Table 1: 1, 1). A 16-instruction node-update block follows
/// (Table 1: 16).
fn bfs(s: &Scale) -> Result<Program, SimError> {
    let mut k = Kb::new("BFS", s.warps);
    // The distance array sits well past the 2 MB L2 (the gathers must miss
    // for the divergence-filtering benefit to exist — Rodinia's 1M-node
    // graph); the visited bitmap is small enough to stay L2-resident.
    let nodes = (s.threads() * 64).next_power_of_two();
    let vnodes = (s.threads() * 2).next_power_of_two();
    let n = s.threads() * s.iters as u64;
    let edges = k.array("edges", n * 4, 4);
    let dist = k.array("dist", nodes * 4, 4);
    let visited = k.array("visited", vnodes * 4, 4);
    let upd = k.array("updates", s.threads() * 4, 4);
    let cost = k.array("cost", s.threads() * 16 * 4, 4);
    let stride = s.threads();
    let best = k.mov(Imm(0x7fff_ffff));
    k.loop_irregular(s.iters / 2 + 1, s.iters, |k| {
        let ea = k.addr_stream(edges, stride);
        let ev = k.ld(ea); // edge target (raw)
                           // Neighbor ids cluster in a per-warp window (graph locality): a
                           // 1024-node window bounds the divergence (~20 lines per gather)
                           // while the union of windows still outgrows the 2 MB L2.
        let win = k.imul(Operand::WarpId, Imm(1024 * 4));
        let off = k.and(R(ev), Imm(1023));
        let lo = k.imad(R(off), Imm(4), R(win));
        let hi = k.and(R(lo), Imm(nodes * 4 - 1));
        let da = k.iadd(R(hi), Imm(dist));
        let dv = k.ld(da); // ← §4.4 indirect block (1)
        let nd = k.iadd(R(dv), Imm(1));
        let vo = k.and(R(lo), Imm(vnodes * 4 - 1));
        let va = k.iadd(R(vo), Imm(visited));
        let fv = k.ld(va); // ← §4.4 indirect block (1)
        let gate = k.and(R(fv), Imm(1));
        let cand = k.mov(R(nd));
        k.alu3_into(AluOp::Sel, cand, R(best), R(cand), R(gate));
        k.alu_into(AluOp::IMin, best, R(best), R(cand));
        // Frontier compaction arithmetic (GPU-side compute between gathers,
        // keeping the gathers a fraction of total work as in Rodinia).
        let h1 = k.imul(R(cand), Imm(0x9e37_79b9));
        let h2 = k.shl(R(h1), Imm(7));
        let h3 = k.iadd(R(h2), R(h1));
        let h4 = k.and(R(h3), Imm(0xffff));
        k.alu_into(AluOp::IMin, best, R(best), R(h4));
    });
    // Node-update pass: stream several per-node arrays, combine, write back
    // (5 LD + 6 ALU + 5 ST = 16).
    let ua = k.imad(Tid, Imm(4), Imm(upd));
    let u0 = k.ld(ua);
    let c0a = k.imad(Tid, Imm(4), Imm(cost));
    let c0 = k.ld(c0a);
    let c1a = k.iadd(R(c0a), Imm(4 * stride));
    let c1 = k.ld(c1a);
    let c2a = k.iadd(R(c1a), Imm(4 * stride));
    let c2 = k.ld(c2a);
    let c3a = k.iadd(R(c2a), Imm(4 * stride));
    let c3 = k.ld(c3a);
    let m0 = k.falu(AluOp::IMin, R(u0), R(best));
    let m1 = k.falu(AluOp::IMin, R(c0), R(c1));
    let m2 = k.falu(AluOp::IMin, R(c2), R(c3));
    let m3 = k.falu(AluOp::IMin, R(m1), R(m2));
    let m4 = k.falu(AluOp::IMin, R(m0), R(m3));
    let m5 = k.iadd(R(m4), Imm(1));
    k.st(m4, ua);
    k.st(m5, c0a);
    k.st(m4, c1a);
    k.st(m5, c2a);
    k.st(m4, c3a);
    k.try_finish()
}

/// STCL — streamcluster gain evaluation: a streaming weight pass (block of
/// 3), a 3-coordinate distance pass (block of 9: 3 LD, 4 FP, 2 ST), and two
/// center-coordinate gathers through the assignment table — data-dependent
/// loads offloaded by the §4.4 rule (blocks of 1, 1).
fn stcl(s: &Scale) -> Result<Program, SimError> {
    let mut k = Kb::new("STCL", s.warps);
    let n = s.threads() * s.iters as u64;
    let centers = 256u64;
    let w = k.array("weight", n * 4, 4);
    let g = k.array("gain", n * 4, 4);
    let px = k.array("px", n * 4, 4);
    let py = k.array("py", n * 4, 4);
    let pz = k.array("pz", n * 4, 4);
    let d2 = k.array("dist2", n * 4, 4);
    let dd = k.array("delta", n * 4, 4);
    let assign = k.array("assign", s.threads() * 4, 4);
    let cx = k.array("cx", centers * 4, 4);
    let cy = k.array("cy", centers * 4, 4);
    let acc = k.array("acc", s.threads() * 4, 4);
    let stride = s.threads();
    // Pass 1: gain = weight * factor (block: LD, FMUL, ST = 3).
    k.loop_n(s.iters, |k| {
        let wa = k.addr_stream(w, stride);
        let wv = k.ld(wa);
        let gv = k.falu(AluOp::FMul, R(wv), f(1.3));
        let ga = k.addr_stream(g, stride);
        k.st(gv, ga);
    });
    k.bar();
    k.reset_regs(0);
    // Pass 2: squared distance to a tentative center (block: 3 LD + 4 FP +
    // 2 ST = 9).
    k.loop_n(s.iters, |k| {
        let xa = k.addr_stream(px, stride);
        let xv = k.ld(xa);
        let ya = k.addr_stream(py, stride);
        let yv = k.ld(ya);
        let za = k.addr_stream(pz, stride);
        let zv = k.ld(za);
        let dx = k.falu(AluOp::FSub, R(xv), f(0.5));
        let dy = k.falu(AluOp::FSub, R(yv), f(0.25));
        let t = k.falu(AluOp::FMul, R(dx), R(dx));
        let u = k.fmad(R(dy), R(dy), R(t));
        let da = k.addr_stream(d2, stride);
        k.st(u, da);
        let ea = k.addr_stream(dd, stride);
        k.st(zv, ea);
    });
    k.bar();
    k.reset_regs(0);
    // Pass 3: gather the assigned center's x coordinate (indirect → 1).
    let aa = k.imad(Tid, Imm(4), Imm(assign));
    let av = k.ld(aa);
    let ci = k.and(R(av), Imm(centers - 1));
    let cxa = k.imad(R(ci), Imm(4), Imm(cx));
    let cxv = k.ld(cxa); // ← §4.4 indirect block (1)
    let r1 = k.falu(AluOp::FAdd, R(cxv), f(1.0));
    let oa = k.imad(Tid, Imm(4), Imm(acc));
    k.st(r1, oa);
    k.bar();
    k.reset_regs(0);
    // Pass 4: gather the assigned center's y coordinate (indirect → 1).
    let aa = k.imad(Tid, Imm(4), Imm(assign));
    let av = k.ld(aa);
    let ci = k.and(R(av), Imm(centers - 1));
    let cya = k.imad(R(ci), Imm(4), Imm(cy));
    let cyv = k.ld(cya); // ← §4.4 indirect block (1)
    let r2 = k.falu(AluOp::FMul, R(cyv), f(2.0));
    let oa = k.imad(Tid, Imm(4), Imm(acc));
    k.st(r2, oa);
    k.try_finish()
}

/// BPROP — two MLP layer passes. Every block instance touches the 68-byte
/// constant weight structure plus a small per-layer weight table (§7.1):
/// most of each block's loads hit the GPU cache in the baseline, so
/// offloading ships cached data off-chip every instance and the GPU link
/// becomes the bottleneck — the workload the dynamic ratio must drive
/// toward zero. Blocks: 29 (12 LD + 14 FP + 3 ST) and 23 (9 LD + 11 FP +
/// 3 ST).
fn bprop(s: &Scale) -> Result<Program, SimError> {
    let mut k = Kb::new("BPROP", s.warps);
    let n = s.threads() * s.iters as u64;
    let input = k.array("input", n * 4 * 4, 4);
    let cfg = k.array("cfg68", 68, 4); // the 68-byte constant structure
    let hid = k.array("hidden", n * 3 * 4, 4);
    let grad = k.array("grad", n * 3 * 4, 4);
    let stride = s.threads();
    // Prologue: touch the hot structure with ordinary loads (kernel set-up
    // reads it on every thread), warming each SM's L1 — this is what makes
    // the in-block RDF probes *hit* and ship cached words off-chip (§7.1).
    // The two values stay live into the epilogue, so the range scores 0
    // under Eq. 1 and is not itself an offload block.
    let wp0a = k.mov(Imm(cfg));
    let wpre0 = k.ld(wp0a);
    let wp1a = k.mov(Imm(cfg + 64));
    let wpre1 = k.ld(wp1a);
    // --- Forward pass: block of 29 (12 LD + 14 FP + 3 ST) ---
    k.loop_n(s.iters, |k| {
        // 4 streaming input loads.
        let base = k.addr_stream(input, stride * 4);
        let mut ins = vec![];
        let mut addr = base;
        for j in 0..4 {
            let v = k.ld(addr);
            ins.push(v);
            if j < 3 {
                addr = k.iadd(R(addr), Imm(4 * stride));
            }
        }
        // 8 broadcast loads walking the hot 68 B structure (two cache
        // lines, always L1-resident in the baseline after the prologue).
        let wa0 = k.addr_broadcast(cfg, 4);
        let mut ws = vec![k.ld(wa0)];
        let mut waddr = wa0;
        for _ in 0..7 {
            waddr = k.iadd(R(waddr), Imm(16));
            ws.push(k.ld(waddr));
        }
        // 14 FP ops.
        let t = k.falu(AluOp::FMul, R(ins[0]), R(ws[0]));
        for (v, w) in ins[1..4].iter().zip(&ws[1..4]) {
            k.alu3_into(AluOp::FMad, t, R(*v), R(*w), R(t)); // 3 FMads
        }
        let u1 = k.falu(AluOp::FMul, R(t), R(ws[4]));
        let u2 = k.fmad(R(ws[5]), R(u1), R(t));
        let u3 = k.falu(AluOp::FAdd, R(u2), R(ws[6]));
        let u4 = k.falu(AluOp::FMul, R(u3), R(ws[7]));
        let u5 = k.falu(AluOp::FMax, R(u4), f(0.0));
        let u6 = k.fmad(R(u5), R(u1), R(u2));
        let u7 = k.falu(AluOp::FAdd, R(u6), R(u3));
        let u8 = k.falu(AluOp::FMul, R(u7), R(u4));
        let u9 = k.falu(AluOp::FSub, R(u8), R(t));
        let u10 = k.falu(AluOp::FAdd, R(u9), R(u2));
        // 3 streaming stores.
        let ha = k.addr_stream(hid, stride * 3);
        k.st(u5, ha);
        let h1 = k.iadd(R(ha), Imm(4 * stride));
        k.st(u8, h1);
        let h2 = k.iadd(R(h1), Imm(4 * stride));
        k.st(u10, h2);
    });
    k.bar();
    k.reset_regs(4); // preserve the prologue registers (live into the epilogue)
                     // --- Weight-update pass: block of 23 (9 LD + 11 FP + 3 ST) ---
    k.loop_n(s.iters, |k| {
        // 3 streaming hidden loads.
        let base = k.addr_stream(hid, stride * 3);
        let mut hs = vec![];
        let mut addr = base;
        for j in 0..3 {
            let v = k.ld(addr);
            hs.push(v);
            if j < 2 {
                addr = k.iadd(R(addr), Imm(4 * stride));
            }
        }
        // 6 broadcast loads from the hot structure (same two lines).
        let wa0 = k.addr_broadcast(cfg, 4);
        let mut ws = vec![k.ld(wa0)];
        let mut waddr = wa0;
        for _ in 0..5 {
            waddr = k.iadd(R(waddr), Imm(16));
            ws.push(k.ld(waddr));
        }
        // 11 FP ops.
        let t = k.falu(AluOp::FMul, R(hs[0]), R(ws[0]));
        for (v, w) in hs[1..3].iter().zip(&ws[1..3]) {
            k.alu3_into(AluOp::FMad, t, R(*v), R(*w), R(t)); // 2 FMads
        }
        let v1 = k.falu(AluOp::FMul, R(t), R(ws[3]));
        let v2 = k.falu(AluOp::FAdd, R(v1), R(ws[4]));
        let v3 = k.falu(AluOp::FMax, R(v2), f(0.0));
        let v4 = k.fmad(R(ws[5]), R(v3), R(t));
        let v5 = k.falu(AluOp::FSub, R(v4), R(v1));
        let v6 = k.falu(AluOp::FMul, R(v5), R(v2));
        let v7 = k.falu(AluOp::FAdd, R(v6), R(t));
        let v8 = k.falu(AluOp::FMul, R(v7), R(v3));
        // 3 streaming stores.
        let ga = k.addr_stream(grad, stride * 3);
        k.st(v4, ga);
        let g1 = k.iadd(R(ga), Imm(4 * stride));
        k.st(v6, g1);
        let g2 = k.iadd(R(g1), Imm(4 * stride));
        k.st(v8, g2);
    });
    // Epilogue: fold the prologue values into a final per-thread write
    // (bias norm bookkeeping). Live-in-heavy, so Eq. 1 keeps it on the GPU.
    let fin = k.falu(AluOp::FAdd, R(wpre0), R(wpre1));
    let fa = k.imad(Tid, Imm(4), Imm(grad));
    k.st(fin, fa);
    k.try_finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_compiler::{compile, CompilerConfig};

    fn sizes(w: Workload) -> Vec<usize> {
        let p = w.build(&Scale::tiny());
        let ck = compile(&p, &CompilerConfig::default());
        ck.nsu_lens()
    }

    #[test]
    fn table1_block_sizes_match_paper() {
        for w in WORKLOADS {
            assert_eq!(
                sizes(w),
                w.table1_sizes().to_vec(),
                "Table 1 mismatch for {}",
                w.name()
            );
        }
    }

    #[test]
    fn register_transfer_is_small_on_average() {
        // §5: 0.41 regs sent, 0.47 received per thread on average.
        let mut total_in = 0.0;
        let mut total_out = 0.0;
        let mut blocks = 0.0;
        for w in WORKLOADS {
            let p = w.build(&Scale::tiny());
            let ck = compile(&p, &CompilerConfig::default());
            for b in &ck.blocks {
                total_in += b.live_in.len() as f64;
                total_out += b.live_out.len() as f64;
                blocks += 1.0;
            }
        }
        assert!(
            total_in / blocks < 1.5,
            "avg regs in = {}",
            total_in / blocks
        );
        assert!(
            total_out / blocks < 1.5,
            "avg regs out = {}",
            total_out / blocks
        );
    }

    #[test]
    fn indirect_blocks_where_expected() {
        for (w, want) in [
            (Workload::Bfs, 2usize),
            (Workload::Stcl, 2),
            (Workload::Vadd, 0),
        ] {
            let p = w.build(&Scale::tiny());
            let ck = compile(&p, &CompilerConfig::default());
            let got = ck.blocks.iter().filter(|b| b.indirect).count();
            assert_eq!(got, want, "{}", w.name());
        }
    }

    #[test]
    fn all_workloads_validate_at_eval_scale() {
        for (_, p) in all_workloads(&Scale::eval()) {
            assert!(p.validate().is_ok(), "{}", p.name);
            assert!(p.num_warps >= 1024);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(workload("vadd"), Some(Workload::Vadd));
        assert_eq!(workload("MiniFE"), Some(Workload::MiniFe));
        assert_eq!(workload("nope"), None);
    }
}

#[cfg(test)]
mod behaviour_tests {
    //! Tests pinning the *behavioural drivers* each workload was designed
    //! around (divergence, locality, stream length) — the properties the
    //! paper's evaluation depends on, not just the block shapes.

    use super::*;
    use ndp_gpu::coalesce;
    use ndp_isa::exec::{Step, WarpExec};
    use ndp_isa::instr::MemSpace;
    use std::collections::HashMap;

    /// Count coalesced lines per executed global load, per load site.
    fn lines_per_load(w: Workload, scale: &Scale, warp: u32) -> HashMap<usize, (u64, u64)> {
        let p = w.build(scale);
        let mut exec = WarpExec::new(&p, warp, u32::MAX, 42);
        let mut stats: HashMap<usize, (u64, u64)> = HashMap::new();
        let mut guard = 0u64;
        loop {
            match exec.step(&p) {
                Step::Done => break,
                Step::Load {
                    idx,
                    space: MemSpace::Global,
                    addrs,
                    active,
                    ..
                } => {
                    let n = coalesce(&addrs, active, 4, 128).len() as u64;
                    let e = stats.entry(idx).or_insert((0, 0));
                    e.0 += n;
                    e.1 += 1;
                }
                _ => {}
            }
            guard += 1;
            assert!(guard < 2_000_000, "runaway kernel");
        }
        stats
    }

    #[test]
    fn bfs_gathers_are_divergent_and_streams_are_not() {
        let scale = Scale {
            warps: 64,
            iters: 8,
        };
        let stats = lines_per_load(Workload::Bfs, &scale, 3);
        let mut divergent_sites = 0;
        let mut coalesced_sites = 0;
        for (lines, loads) in stats.values() {
            let avg = *lines as f64 / *loads as f64;
            if avg > 8.0 {
                divergent_sites += 1;
            } else if avg < 1.5 {
                coalesced_sites += 1;
            }
        }
        assert!(
            divergent_sites >= 2,
            "BFS needs its two divergent gathers: {stats:?}"
        );
        assert!(coalesced_sites >= 1, "edge stream must stay coalesced");
    }

    #[test]
    fn streaming_workloads_stay_fully_coalesced() {
        let scale = Scale {
            warps: 16,
            iters: 4,
        };
        for w in [
            Workload::Vadd,
            Workload::Kmn,
            Workload::MiniFe,
            Workload::Sp,
        ] {
            for (idx, (lines, loads)) in lines_per_load(w, &scale, 1) {
                assert_eq!(
                    lines,
                    loads,
                    "{} load at {idx} must touch exactly one line per warp",
                    w.name()
                );
            }
        }
    }

    #[test]
    fn bprop_touches_the_hot_structure_every_iteration() {
        // The §7.1 pathology needs the 68 B structure in every block
        // instance: its two lines must be re-read once per loop iteration.
        let scale = Scale { warps: 8, iters: 6 };
        let p = Workload::Bprop.build(&scale);
        let cfg_base = p.array("cfg68").expect("declared").base;
        let mut exec = WarpExec::new(&p, 0, u32::MAX, 42);
        let mut hot_reads = 0u64;
        loop {
            match exec.step(&p) {
                Step::Done => break,
                Step::Load {
                    space: MemSpace::Global,
                    addrs,
                    ..
                } if (cfg_base..cfg_base + 128).contains(&addrs[0]) => {
                    hot_reads += 1;
                }
                _ => {}
            }
        }
        // 8 per forward iteration + 6 per update iteration + 2 prologue.
        assert!(
            hot_reads >= (8 + 6) * 6,
            "hot structure under-touched: {hot_reads}"
        );
    }

    #[test]
    fn stn_neighbours_share_lines_with_center() {
        // x±1 loads land in the center's line for 30 of 32 lanes — the L1
        // locality that (with the z-plane reuse) drives the §7.3 gate.
        let scale = Scale { warps: 8, iters: 2 };
        let p = Workload::Stn.build(&scale);
        let mut exec = WarpExec::new(&p, 2, u32::MAX, 42);
        let mut loads: Vec<[u64; 32]> = vec![];
        loop {
            match exec.step(&p) {
                Step::Done => break,
                Step::Load { addrs, .. } => loads.push(addrs),
                _ => {}
            }
        }
        // Loads come in groups of 7 per iteration: c, x−, x+, y−, y+, z−, z+.
        let c = loads[0];
        let xm = loads[1];
        let same_line = (0..32).filter(|&l| c[l] & !127 == xm[l] & !127).count();
        assert!(same_line >= 30, "x−1 must mostly share the center line");
    }

    #[test]
    fn array_declarations_do_not_overlap() {
        let scale = Scale {
            warps: 32,
            iters: 8,
        };
        for (_, p) in all_workloads(&scale) {
            let mut spans: Vec<(u64, u64, &str)> = p
                .arrays
                .iter()
                .map(|a| (a.base, a.base + a.bytes, a.name))
                .collect();
            spans.sort();
            for w in spans.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "{}: arrays {} and {} overlap",
                    p.name,
                    w[0].2,
                    w[1].2
                );
            }
        }
    }

    #[test]
    fn eval_scale_footprints_exceed_l2_for_streams() {
        // The streaming arrays must outgrow the 2 MB L2 at eval scale or the
        // whole bandwidth story collapses.
        let scale = Scale::eval();
        for w in [Workload::Vadd, Workload::Kmn, Workload::MiniFe] {
            let p = w.build(&scale);
            let total: u64 = p.arrays.iter().map(|a| a.bytes).sum();
            assert!(
                total >= 8 * 1024 * 1024,
                "{}: streaming footprint only {total} B",
                w.name()
            );
        }
    }
}
