//! System energy model (§5, §7.4).
//!
//! Follows the structure the paper derives from GPUWattch, the Rambus DRAM
//! power model and TSV models: the energy domains of Fig. 10 are the GPU
//! (core dynamic + static + on-chip caches and wires), the NSUs, the
//! intra-HMC logic-layer NoC, the off-chip interconnect (GPU links + memory
//! network, 2 pJ/bit, Poulton et al.), and DRAM (11.8 nJ per 4 KB row activation and
//! 4 pJ/bit row-buffer read, Rambus/Vogelsang models).
//!
//! Constants the paper states are used verbatim; the remaining coefficients
//! are documented plausible values (DESIGN.md "Substitutions") — the
//! reproduction target is the *relative* breakdown and the NDP-vs-baseline
//! delta, not absolute joules.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};

/// Energy coefficients.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Off-chip link energy, pJ/bit (paper: 2 pJ/bit).
    pub offchip_pj_per_bit: f64,
    /// DRAM row activation energy, nJ per 4 KB row activation (paper: 11.8).
    pub act_nj: f64,
    /// DRAM row-buffer read/write energy, pJ/bit (paper: 4).
    pub rowbuf_pj_per_bit: f64,
    /// GPU dynamic energy per warp instruction, nJ (pipeline + RF + lanes).
    pub gpu_warp_instr_nj: f64,
    /// NSU dynamic energy per warp instruction, nJ (no texture units, no
    /// data cache, simplified LSU — §4.5).
    pub nsu_warp_instr_nj: f64,
    /// L1 access energy, nJ per line access.
    pub l1_access_nj: f64,
    /// L2 access energy, nJ per line access.
    pub l2_access_nj: f64,
    /// GPU on-die wire energy, pJ/bit (20 mm × 30 mm die, values from Keckler et al.).
    pub ondie_pj_per_bit: f64,
    /// Intra-HMC NoC energy, pJ/bit (logic-layer crossbar + TSVs).
    pub intra_hmc_pj_per_bit: f64,
    /// GPU static power, W (whole device at 64 SMs).
    pub gpu_static_w: f64,
    /// Static power per NSU, W (small core, half clock).
    pub nsu_static_w: f64,
    /// DRAM background power per stack, W.
    pub dram_background_w: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            offchip_pj_per_bit: 2.0,
            act_nj: 11.8,
            rowbuf_pj_per_bit: 4.0,
            gpu_warp_instr_nj: 0.60,
            nsu_warp_instr_nj: 0.25,
            l1_access_nj: 0.08,
            l2_access_nj: 0.25,
            ondie_pj_per_bit: 0.8,
            intra_hmc_pj_per_bit: 0.4,
            gpu_static_w: 38.0,
            nsu_static_w: 0.25,
            dram_background_w: 1.6,
        }
    }
}

/// Activity counters gathered from a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Activity {
    /// Wall-clock seconds of the simulated run.
    pub seconds: f64,
    /// Warp instructions issued on GPU SMs.
    pub gpu_instrs: u64,
    /// Warp instructions executed on NSUs.
    pub nsu_instrs: u64,
    /// L1 accesses (reads + writes), all SMs.
    pub l1_accesses: u64,
    /// L2 accesses, all slices.
    pub l2_accesses: u64,
    /// Bytes over the GPU on-die interconnect.
    pub ondie_bytes: u64,
    /// Bytes over GPU↔HMC links (both directions).
    pub gpu_link_bytes: u64,
    /// Bytes over the memory network.
    pub memnet_bytes: u64,
    /// Bytes through logic-layer crossbars.
    pub intra_hmc_bytes: u64,
    /// DRAM row activations.
    pub dram_activations: u64,
    /// DRAM bytes read + written.
    pub dram_bytes: u64,
    /// NSUs present (0 disables NSU static power — baseline configs).
    pub num_nsus: usize,
    /// Memory stacks present.
    pub num_hmcs: usize,
    /// Whether the memory network is powered (NDP configs only).
    pub memnet_powered: bool,
}

/// Per-domain energy in joules (the Fig. 10 stack).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    pub gpu: f64,
    pub nsu: f64,
    pub intra_hmc: f64,
    pub offchip: f64,
    pub dram: f64,
}

impl EnergyBreakdown {
    pub fn total(&self) -> f64 {
        self.gpu + self.nsu + self.intra_hmc + self.offchip + self.dram
    }
}

/// Evaluate the model.
pub fn energy(params: &EnergyParams, a: &Activity) -> EnergyBreakdown {
    let pj = 1e-12;
    let nj = 1e-9;
    let bits = |bytes: u64| bytes as f64 * 8.0;

    let gpu = a.gpu_instrs as f64 * params.gpu_warp_instr_nj * nj
        + a.l1_accesses as f64 * params.l1_access_nj * nj
        + a.l2_accesses as f64 * params.l2_access_nj * nj
        + bits(a.ondie_bytes) * params.ondie_pj_per_bit * pj
        + params.gpu_static_w * a.seconds;

    let nsu = a.nsu_instrs as f64 * params.nsu_warp_instr_nj * nj
        + a.num_nsus as f64 * params.nsu_static_w * a.seconds;

    let intra_hmc = bits(a.intra_hmc_bytes) * params.intra_hmc_pj_per_bit * pj;

    // The memory network's extra links only burn energy when NDP is on —
    // the paper power-gates them otherwise (§5).
    let memnet_bytes = if a.memnet_powered { a.memnet_bytes } else { 0 };
    let offchip = bits(a.gpu_link_bytes + memnet_bytes) * params.offchip_pj_per_bit * pj;

    let dram = a.dram_activations as f64 * params.act_nj * nj
        + bits(a.dram_bytes) * params.rowbuf_pj_per_bit * pj
        + a.num_hmcs as f64 * params.dram_background_w * a.seconds;

    EnergyBreakdown {
        gpu,
        nsu,
        intra_hmc,
        offchip,
        dram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_activity() -> Activity {
        Activity {
            seconds: 1e-3,
            gpu_instrs: 1_000_000,
            nsu_instrs: 0,
            l1_accesses: 200_000,
            l2_accesses: 100_000,
            ondie_bytes: 50_000_000,
            gpu_link_bytes: 100_000_000,
            memnet_bytes: 0,
            intra_hmc_bytes: 120_000_000,
            dram_activations: 100_000,
            dram_bytes: 120_000_000,
            num_nsus: 0,
            num_hmcs: 8,
            memnet_powered: false,
        }
    }

    #[test]
    fn paper_constants_are_defaults() {
        let p = EnergyParams::default();
        assert_eq!(p.offchip_pj_per_bit, 2.0);
        assert_eq!(p.act_nj, 11.8);
        assert_eq!(p.rowbuf_pj_per_bit, 4.0);
    }

    #[test]
    fn offchip_energy_matches_hand_calculation() {
        let p = EnergyParams::default();
        let mut a = Activity {
            gpu_link_bytes: 1_000_000,
            ..Default::default()
        };
        a.seconds = 0.0;
        let e = energy(&p, &a);
        // 1 MB × 8 bits × 2 pJ = 16 µJ.
        assert!((e.offchip - 16e-6).abs() < 1e-12);
    }

    #[test]
    fn activation_energy_matches_hand_calculation() {
        let p = EnergyParams::default();
        let a = Activity {
            dram_activations: 1000,
            ..Default::default()
        };
        let e = energy(&p, &a);
        assert!((e.dram - 1000.0 * 11.8e-9).abs() < 1e-15);
    }

    #[test]
    fn memnet_gated_when_unpowered() {
        let p = EnergyParams::default();
        let mut a = base_activity();
        a.memnet_bytes = 500_000_000;
        let off = energy(&p, &a).offchip;
        a.memnet_powered = true;
        let on = energy(&p, &a).offchip;
        assert!(on > off, "powered memnet must add energy");
    }

    #[test]
    fn shorter_runtime_cuts_static_energy() {
        let p = EnergyParams::default();
        let a1 = base_activity();
        let mut a2 = base_activity();
        a2.seconds = a1.seconds / 2.0;
        let e1 = energy(&p, &a1);
        let e2 = energy(&p, &a2);
        assert!(e2.gpu < e1.gpu);
        assert!(e2.dram < e1.dram);
        assert_eq!(e2.offchip, e1.offchip, "dynamic-only domains unchanged");
    }

    #[test]
    fn breakdown_total_sums_domains() {
        let p = EnergyParams::default();
        let e = energy(&p, &base_activity());
        let sum = e.gpu + e.nsu + e.intra_hmc + e.offchip + e.dram;
        assert!((e.total() - sum).abs() < 1e-18);
        assert!(e.total() > 0.0);
    }
}
