//! Instruction set: registers, operands, ALU operations, memory spaces.

use std::fmt;

/// A warp register (per-lane 64-bit value). Up to 64 registers per kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Instruction source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    Reg(Reg),
    /// Immediate (also used for array base addresses).
    Imm(u64),
    /// Global thread index: `warp_global_index * 32 + lane`.
    Tid,
    /// Lane index within the warp (0..32).
    Lane,
    /// Global warp index.
    WarpId,
    /// Current trip counter of the loop at nesting `depth` (0 = outermost
    /// active loop).
    Iter(u8),
}

impl Operand {
    pub fn reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "0x{v:x}"),
            Operand::Tid => write!(f, "%tid"),
            Operand::Lane => write!(f, "%lane"),
            Operand::WarpId => write!(f, "%warp"),
            Operand::Iter(d) => write!(f, "%iter{d}"),
        }
    }
}

/// ALU operations. Integer ops use wrapping u64 arithmetic; floating-point
/// ops operate on the low 32 bits as IEEE-754 binary32.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    IAdd,
    ISub,
    IMul,
    /// dst = a * b + c
    IMad,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    /// dst = a (register move / immediate load)
    Mov,
    /// dst = min(a, b) on u64
    IMin,
    /// dst = (a < b) ? 1 : 0 on u64
    SetLt,
    /// dst = c ? a : b  (per-lane select; c is a 0/1 predicate value)
    Sel,
    FAdd,
    FSub,
    FMul,
    /// dst = a * b + c
    FMad,
    FMin,
    FMax,
    /// Special-function unit ops (longer latency).
    FDiv,
    FSqrt,
    FRcp,
    FExp,
}

impl AluOp {
    /// Special-function-unit ops have longer latency on the GPU/NSU.
    pub fn is_sfu(&self) -> bool {
        matches!(self, AluOp::FDiv | AluOp::FSqrt | AluOp::FRcp | AluOp::FExp)
    }

    /// Number of source operands (2 or 3).
    pub fn arity(&self) -> usize {
        match self {
            AluOp::IMad | AluOp::FMad | AluOp::Sel => 3,
            AluOp::Mov | AluOp::FSqrt | AluOp::FRcp | AluOp::FExp => 1,
            _ => 2,
        }
    }

    pub fn mnemonic(&self) -> &'static str {
        match self {
            AluOp::IAdd => "ADD",
            AluOp::ISub => "SUB",
            AluOp::IMul => "MUL",
            AluOp::IMad => "MAD",
            AluOp::And => "AND",
            AluOp::Or => "OR",
            AluOp::Xor => "XOR",
            AluOp::Shl => "SHL",
            AluOp::Shr => "SHR",
            AluOp::Mov => "MOV",
            AluOp::IMin => "MIN",
            AluOp::SetLt => "SETP.LT",
            AluOp::Sel => "SEL",
            AluOp::FAdd => "FADD",
            AluOp::FSub => "FSUB",
            AluOp::FMul => "FMUL",
            AluOp::FMad => "FMAD",
            AluOp::FMin => "FMIN",
            AluOp::FMax => "FMAX",
            AluOp::FDiv => "FDIV",
            AluOp::FSqrt => "FSQRT",
            AluOp::FRcp => "FRCP",
            AluOp::FExp => "FEXP",
        }
    }
}

/// Memory spaces. Only `Global` generates off-chip traffic; `Shared` is the
/// on-chip scratchpad ("shared memory" in CUDA) and `Const` the small
/// constant cache — both disqualify enclosing offload blocks (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    Global,
    Shared,
    Const,
}

/// One static instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = op(a, b, c?)`
    Alu {
        op: AluOp,
        dst: Reg,
        a: Operand,
        b: Operand,
        c: Option<Operand>,
    },
    /// `dst = mem[addr_reg]` — per-lane addresses from `addr`.
    Ld {
        dst: Reg,
        space: MemSpace,
        addr: Reg,
    },
    /// `mem[addr_reg] = val`
    St {
        val: Reg,
        space: MemSpace,
        addr: Reg,
    },
}

impl Instr {
    /// Convenience constructors used heavily by the workload kernels.
    pub fn alu(op: AluOp, dst: Reg, a: Operand, b: Operand) -> Instr {
        debug_assert!(op.arity() <= 2);
        Instr::Alu {
            op,
            dst,
            a,
            b,
            c: None,
        }
    }

    pub fn alu3(op: AluOp, dst: Reg, a: Operand, b: Operand, c: Operand) -> Instr {
        debug_assert_eq!(op.arity(), 3);
        Instr::Alu {
            op,
            dst,
            a,
            b,
            c: Some(c),
        }
    }

    pub fn mov(dst: Reg, a: Operand) -> Instr {
        Instr::Alu {
            op: AluOp::Mov,
            dst,
            a,
            b: Operand::Imm(0),
            c: None,
        }
    }

    pub fn ld(dst: Reg, addr: Reg) -> Instr {
        Instr::Ld {
            dst,
            space: MemSpace::Global,
            addr,
        }
    }

    pub fn st(val: Reg, addr: Reg) -> Instr {
        Instr::St {
            val,
            space: MemSpace::Global,
            addr,
        }
    }

    /// Destination register, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Instr::Alu { dst, .. } | Instr::Ld { dst, .. } => Some(*dst),
            Instr::St { .. } => None,
        }
    }

    /// Source registers (including address registers).
    /// Visit every source register without allocating (hot-path variant of
    /// [`Instr::srcs`] for the per-issue-attempt scoreboard check).
    pub fn for_each_src(&self, mut f: impl FnMut(Reg)) {
        match self {
            Instr::Alu { op, a, b, c, .. } => {
                if let Some(r) = a.reg() {
                    f(r);
                }
                if op.arity() >= 2 {
                    if let Some(r) = b.reg() {
                        f(r);
                    }
                }
                if let Some(c) = c {
                    if let Some(r) = c.reg() {
                        f(r);
                    }
                }
            }
            Instr::Ld { addr, .. } => f(*addr),
            Instr::St { val, addr, .. } => {
                f(*val);
                f(*addr);
            }
        }
    }

    pub fn srcs(&self) -> Vec<Reg> {
        match self {
            Instr::Alu { op, a, b, c, .. } => {
                let mut v = Vec::with_capacity(3);
                if let Some(r) = a.reg() {
                    v.push(r);
                }
                if op.arity() >= 2 {
                    if let Some(r) = b.reg() {
                        v.push(r);
                    }
                }
                if let Some(c) = c {
                    if let Some(r) = c.reg() {
                        v.push(r);
                    }
                }
                v
            }
            Instr::Ld { addr, .. } => vec![*addr],
            Instr::St { val, addr, .. } => vec![*val, *addr],
        }
    }

    /// Non-address source registers (value operands only). For an ALU op
    /// this is all sources; for a store only the data register; a load has
    /// none.
    pub fn value_srcs(&self) -> Vec<Reg> {
        match self {
            Instr::Alu { .. } => self.srcs(),
            Instr::Ld { .. } => vec![],
            Instr::St { val, .. } => vec![*val],
        }
    }

    /// The address register of a memory instruction.
    pub fn addr_reg(&self) -> Option<Reg> {
        match self {
            Instr::Ld { addr, .. } | Instr::St { addr, .. } => Some(*addr),
            Instr::Alu { .. } => None,
        }
    }

    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Ld { .. } | Instr::St { .. })
    }

    pub fn is_global_mem(&self) -> bool {
        matches!(
            self,
            Instr::Ld {
                space: MemSpace::Global,
                ..
            } | Instr::St {
                space: MemSpace::Global,
                ..
            }
        )
    }

    pub fn mem_space(&self) -> Option<MemSpace> {
        match self {
            Instr::Ld { space, .. } | Instr::St { space, .. } => Some(*space),
            Instr::Alu { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_sfu_classification() {
        assert_eq!(AluOp::IMad.arity(), 3);
        assert_eq!(AluOp::Mov.arity(), 1);
        assert_eq!(AluOp::FMul.arity(), 2);
        assert!(AluOp::FDiv.is_sfu());
        assert!(!AluOp::FMad.is_sfu());
    }

    #[test]
    fn src_dst_extraction() {
        let i = Instr::alu3(
            AluOp::IMad,
            Reg(5),
            Operand::Reg(Reg(1)),
            Operand::Imm(4),
            Operand::Reg(Reg(2)),
        );
        assert_eq!(i.dst(), Some(Reg(5)));
        assert_eq!(i.srcs(), vec![Reg(1), Reg(2)]);

        let st = Instr::st(Reg(3), Reg(4));
        assert_eq!(st.dst(), None);
        assert_eq!(st.srcs(), vec![Reg(3), Reg(4)]);
        assert_eq!(st.value_srcs(), vec![Reg(3)]);
        assert_eq!(st.addr_reg(), Some(Reg(4)));

        let ld = Instr::ld(Reg(7), Reg(8));
        assert!(ld.value_srcs().is_empty());
        assert_eq!(ld.addr_reg(), Some(Reg(8)));
    }

    #[test]
    fn global_mem_detection() {
        assert!(Instr::ld(Reg(0), Reg(1)).is_global_mem());
        let sh = Instr::Ld {
            dst: Reg(0),
            space: MemSpace::Shared,
            addr: Reg(1),
        };
        assert!(sh.is_mem() && !sh.is_global_mem());
        assert!(!Instr::mov(Reg(0), Operand::Tid).is_mem());
    }

    #[test]
    fn mov_has_single_source() {
        let m = Instr::mov(Reg(2), Operand::Reg(Reg(9)));
        assert_eq!(m.srcs(), vec![Reg(9)]);
    }
}
