//! Kernel programs: linear instruction stream with structured loop markers.
//!
//! Control flow is structured (counted loops and barriers only). Offload
//! blocks may not span loop or barrier boundaries — the §3.1 constraint that
//! a block stays within one basic block — which the linear form makes easy
//! to enforce: a basic block is a maximal run of `Item::Op` entries.

use crate::instr::{Instr, MemSpace, Reg};

/// Loop trip count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripCount {
    /// Same for every warp.
    Const(u32),
    /// `base + hash(warp, seed) % spread` — models irregular per-warp work
    /// (graph frontiers, variable-degree rows).
    PerWarp { base: u32, spread: u32 },
}

impl TripCount {
    pub fn resolve(&self, warp: u32, seed: u64) -> u32 {
        match *self {
            TripCount::Const(n) => n,
            TripCount::PerWarp { base, spread } => {
                if spread == 0 {
                    base
                } else {
                    let h = ndp_common::rng::splitmix64(seed ^ 0x10ef ^ warp as u64);
                    base + (h % spread as u64) as u32
                }
            }
        }
    }

    /// Upper bound on trips (for static analysis).
    pub fn max(&self) -> u32 {
        match *self {
            TripCount::Const(n) => n,
            TripCount::PerWarp { base, spread } => base + spread.saturating_sub(1),
        }
    }
}

/// One element of the linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    Op(Instr),
    LoopBegin(TripCount),
    LoopEnd,
    /// Thread-block barrier / synchronization point. Never inside an offload
    /// block (§3.1).
    Bar,
}

/// A named data array of the kernel, with its (physical, in our simplified
/// flat address space) base address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    pub name: &'static str,
    pub base: u64,
    pub bytes: u64,
    pub elem_bytes: u32,
}

impl ArrayDecl {
    pub fn elems(&self) -> u64 {
        self.bytes / self.elem_bytes as u64
    }
}

/// A complete kernel.
#[derive(Debug, Clone)]
pub struct Program {
    pub name: &'static str,
    pub items: Vec<Item>,
    pub arrays: Vec<ArrayDecl>,
    /// Number of warps launched.
    pub num_warps: u32,
}

/// Errors detected by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    UnbalancedLoops,
    UseBeforeDef(Reg, usize),
    EmptyProgram,
    SharedStoreToConst(usize),
}

impl Program {
    pub fn new(name: &'static str, num_warps: u32) -> Self {
        Program {
            name,
            items: vec![],
            arrays: vec![],
            num_warps,
        }
    }

    /// Structural validation: balanced loops, no obvious use-before-def at
    /// top level, no writes to the constant space.
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.items.is_empty() {
            return Err(ProgramError::EmptyProgram);
        }
        let mut depth: i64 = 0;
        let mut defined = [false; 64];
        for (idx, item) in self.items.iter().enumerate() {
            match item {
                Item::LoopBegin(_) => depth += 1,
                Item::LoopEnd => {
                    depth -= 1;
                    if depth < 0 {
                        return Err(ProgramError::UnbalancedLoops);
                    }
                }
                Item::Bar => {}
                Item::Op(i) => {
                    if let Instr::St {
                        space: MemSpace::Const,
                        ..
                    } = i
                    {
                        return Err(ProgramError::SharedStoreToConst(idx));
                    }
                    // Use-before-def only checked outside loops: loop bodies
                    // legitimately consume values defined on earlier trips.
                    if depth == 0 {
                        for s in i.srcs() {
                            if !defined[s.0 as usize] {
                                return Err(ProgramError::UseBeforeDef(s, idx));
                            }
                        }
                    }
                    if let Some(d) = i.dst() {
                        defined[d.0 as usize] = true;
                    }
                }
            }
        }
        if depth != 0 {
            return Err(ProgramError::UnbalancedLoops);
        }
        Ok(())
    }

    /// Basic blocks: maximal runs of `Item::Op` (half-open index ranges into
    /// `items`). Offload blocks must be contained in one of these.
    pub fn basic_blocks(&self) -> Vec<(usize, usize)> {
        let mut blocks = vec![];
        let mut start = None;
        for (i, item) in self.items.iter().enumerate() {
            match item {
                Item::Op(_) => {
                    if start.is_none() {
                        start = Some(i);
                    }
                }
                _ => {
                    if let Some(s) = start.take() {
                        blocks.push((s, i));
                    }
                }
            }
        }
        if let Some(s) = start {
            blocks.push((s, self.items.len()));
        }
        blocks
    }

    /// Total static instruction count (ops only).
    pub fn num_ops(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, Item::Op(_)))
            .count()
    }

    /// Dynamic warp-instruction upper bound (ops weighted by loop trip
    /// maxima) — used for progress estimates, not timing.
    pub fn dynamic_ops_bound(&self) -> u64 {
        let mut mult: u64 = 1;
        let mut stack = vec![];
        let mut total: u64 = 0;
        for item in &self.items {
            match item {
                Item::LoopBegin(t) => {
                    stack.push(mult);
                    mult = mult.saturating_mul(t.max() as u64);
                }
                Item::LoopEnd => mult = stack.pop().expect("validated"),
                Item::Op(_) => total = total.saturating_add(mult),
                Item::Bar => {}
            }
        }
        total
    }

    pub fn array(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Operand};

    fn op(dst: u8) -> Item {
        Item::Op(Instr::mov(Reg(dst), Operand::Tid))
    }

    #[test]
    fn validate_balanced_loops() {
        let mut p = Program::new("t", 1);
        p.items = vec![
            op(0),
            Item::LoopBegin(TripCount::Const(4)),
            op(1),
            Item::LoopEnd,
        ];
        assert!(p.validate().is_ok());
        p.items.push(Item::LoopEnd);
        assert_eq!(p.validate(), Err(ProgramError::UnbalancedLoops));
    }

    #[test]
    fn validate_use_before_def() {
        let mut p = Program::new("t", 1);
        p.items = vec![Item::Op(Instr::alu(
            AluOp::IAdd,
            Reg(1),
            Operand::Reg(Reg(0)),
            Operand::Imm(1),
        ))];
        assert_eq!(p.validate(), Err(ProgramError::UseBeforeDef(Reg(0), 0)));
    }

    #[test]
    fn validate_rejects_const_store() {
        let mut p = Program::new("t", 1);
        p.items = vec![
            op(0),
            Item::Op(Instr::St {
                val: Reg(0),
                space: MemSpace::Const,
                addr: Reg(0),
            }),
        ];
        assert_eq!(p.validate(), Err(ProgramError::SharedStoreToConst(1)));
    }

    #[test]
    fn basic_blocks_split_on_loops_and_barriers() {
        let mut p = Program::new("t", 1);
        p.items = vec![
            op(0),
            op(1),
            Item::LoopBegin(TripCount::Const(2)),
            op(2),
            op(3),
            Item::Bar,
            op(4),
            Item::LoopEnd,
            op(5),
        ];
        assert_eq!(p.basic_blocks(), vec![(0, 2), (3, 5), (6, 7), (8, 9)]);
    }

    #[test]
    fn dynamic_bound_multiplies_loops() {
        let mut p = Program::new("t", 1);
        p.items = vec![
            op(0),
            Item::LoopBegin(TripCount::Const(10)),
            op(1),
            op(2),
            Item::LoopEnd,
        ];
        assert_eq!(p.dynamic_ops_bound(), 1 + 20);
    }

    #[test]
    fn per_warp_trip_counts_vary_but_are_deterministic() {
        let t = TripCount::PerWarp {
            base: 4,
            spread: 16,
        };
        let a = t.resolve(0, 1);
        let b = t.resolve(1, 1);
        assert_eq!(a, t.resolve(0, 1));
        assert!((4..20).contains(&a));
        // Different warps should usually differ (probabilistic; fixed seed).
        let distinct = (0..32)
            .map(|w| t.resolve(w, 1))
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 4, "{distinct:?}");
        let _ = b;
    }
}
