//! Warp-level intermediate representation (IR) and functional executor.
//!
//! Workloads are expressed in a small PTX-like register IR: ALU operations
//! over 32-lane warps, loads/stores whose addresses come from registers
//! (so that address computation is visible dataflow — the partitioned
//! execution mechanism of §4 splits exactly along that line), structured
//! loops, and barriers. The functional executor computes real per-lane
//! values (memory contents are synthesized deterministically), which makes
//! indirect accesses like `B[A[i]]` produce genuinely data-dependent
//! divergent address streams.
//!
//! [`verify`] statically re-derives every offload-block annotation from the
//! program text and diffs it against the stored block (Pass 1 of the
//! `ndp-lint` verification suite).

#![forbid(unsafe_code)]

pub mod disasm;
pub mod exec;
pub mod instr;
pub mod offload;
pub mod program;
pub mod verify;

pub use instr::{AluOp, Instr, MemSpace, Operand, Reg};
pub use offload::{InstrRole, NsuInstr, OffloadBlock};
pub use program::{ArrayDecl, Item, Program, TripCount};
pub use verify::{verify_block, verify_blocks, PartitionDiag};

/// SIMT width. The whole model is specialized to 32-lane warps (Table 2).
pub const WARP_WIDTH: usize = 32;

/// Per-lane values of one register across the warp.
pub type LaneValues = [u64; WARP_WIDTH];
