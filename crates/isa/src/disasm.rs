//! Disassembler producing Fig. 3-style listings of GPU and NSU code.

use std::fmt::Write as _;

use crate::instr::Instr;
use crate::offload::{InstrRole, NsuInstr, OffloadBlock};
use crate::program::{Item, Program};

fn fmt_instr(i: &Instr) -> String {
    match i {
        Instr::Alu { op, dst, a, b, c } => {
            let mut s = format!("{} {dst}, {a}", op.mnemonic());
            if op.arity() >= 2 {
                let _ = write!(s, ", {b}");
            }
            if let Some(c) = c {
                let _ = write!(s, ", {c}");
            }
            s
        }
        Instr::Ld { dst, space, addr } => format!("LD{} {dst}, [{addr}]", space_suffix(*space)),
        Instr::St { val, space, addr } => format!("ST{} [{addr}], {val}", space_suffix(*space)),
    }
}

fn space_suffix(s: crate::instr::MemSpace) -> &'static str {
    match s {
        crate::instr::MemSpace::Global => "",
        crate::instr::MemSpace::Shared => ".SHARED",
        crate::instr::MemSpace::Const => ".CONST",
    }
}

/// Render the GPU-side listing of a program with offload-block annotations,
/// in the style of Fig. 3(a).
pub fn disasm_gpu(program: &Program, blocks: &[OffloadBlock]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// kernel {} (GPU code)", program.name);
    let mut depth = 0usize;
    for (idx, item) in program.items.iter().enumerate() {
        // Emit OFLD.BEG before the first instruction of a block.
        for b in blocks {
            if b.start == idx {
                let _ = writeln!(
                    out,
                    "{:ind$}OFLD.BEG 0x{:X}, [{}], {}, {}  // PC, SendRegs, #LDs, #STs",
                    "",
                    b.nsu_pc,
                    regs_list(&b.live_in),
                    b.n_loads(),
                    b.n_stores(),
                    ind = depth * 2
                );
            }
        }
        match item {
            Item::LoopBegin(t) => {
                let _ = writeln!(out, "{:ind$}LOOP {:?} {{", "", t, ind = depth * 2);
                depth += 1;
            }
            Item::LoopEnd => {
                depth = depth.saturating_sub(1);
                let _ = writeln!(out, "{:ind$}}}", "", ind = depth * 2);
            }
            Item::Bar => {
                let _ = writeln!(out, "{:ind$}BAR.SYNC", "", ind = depth * 2);
            }
            Item::Op(instr) => {
                let role = blocks.iter().find_map(|b| b.role_of(idx));
                let annot = match role {
                    Some(InstrRole::AtNsu) => "@NSU  // skipped on GPU",
                    Some(InstrRole::AddrCalc) => "      // memory address calculation",
                    Some(InstrRole::Load) => "      // generates RDF packet(s)",
                    Some(InstrRole::Store) => "      // generates WTA packet(s)",
                    None => "",
                };
                let _ = writeln!(
                    out,
                    "{:ind$}{} {}",
                    "",
                    fmt_instr(instr),
                    annot,
                    ind = depth * 2
                );
            }
        }
        // Emit OFLD.END after the last instruction of a block.
        for b in blocks {
            if b.end == idx + 1 {
                let _ = writeln!(
                    out,
                    "{:ind$}OFLD.END [{}]  // write-back from ACK packet",
                    "",
                    regs_list(&b.live_out),
                    ind = depth * 2
                );
            }
        }
    }
    out
}

/// Render the NSU code of one block, in the style of Fig. 3(b).
pub fn disasm_nsu(block: &OffloadBlock) -> String {
    let mut out = String::new();
    let mut pc = block.nsu_pc;
    for instr in &block.nsu_code {
        let text = match instr {
            NsuInstr::Begin { regs_in } => {
                format!("OFLD.BEG ({regs_in} regs)  // init regs from CMD packet")
            }
            NsuInstr::Ld { dst } => format!("LD {dst}  // from read data buffer"),
            NsuInstr::St { src } => {
                format!("ST {src}  // to memory, addr from WTA buffer")
            }
            NsuInstr::Alu(i) => fmt_instr(i),
            NsuInstr::End { regs_out } => {
                format!("OFLD.END ({regs_out} regs)  // send ACK to GPU")
            }
        };
        let _ = writeln!(out, "0x{pc:X}: {text}");
        pc += 8;
    }
    out
}

fn regs_list(regs: &[crate::instr::Reg]) -> String {
    regs.iter()
        .map(|r| r.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Operand, Reg};

    #[test]
    fn gpu_listing_contains_markers() {
        let mut p = Program::new("vadd", 1);
        p.items = vec![
            Item::Op(Instr::mov(Reg(1), Operand::Tid)),
            Item::Op(Instr::ld(Reg(2), Reg(1))),
            Item::Op(Instr::alu(
                AluOp::FMul,
                Reg(3),
                Operand::Reg(Reg(2)),
                Operand::Reg(Reg(0)),
            )),
            Item::Op(Instr::st(Reg(3), Reg(1))),
        ];
        let b = OffloadBlock {
            id: 0,
            start: 1,
            end: 4,
            roles: vec![InstrRole::Load, InstrRole::AtNsu, InstrRole::Store],
            live_in: vec![Reg(0)],
            live_out: vec![],
            nsu_code: vec![
                NsuInstr::Begin { regs_in: 1 },
                NsuInstr::Ld { dst: Reg(2) },
                NsuInstr::Alu(Instr::alu(
                    AluOp::FMul,
                    Reg(3),
                    Operand::Reg(Reg(2)),
                    Operand::Reg(Reg(0)),
                )),
                NsuInstr::St { src: Reg(3) },
                NsuInstr::End { regs_out: 0 },
            ],
            nsu_pc: 0xD08,
            score: 1,
            indirect: false,
        };
        let text = disasm_gpu(&p, std::slice::from_ref(&b));
        assert!(text.contains("OFLD.BEG 0xD08"), "{text}");
        assert!(text.contains("OFLD.END"), "{text}");
        assert!(text.contains("@NSU"), "{text}");
        let nsu = disasm_nsu(&b);
        assert!(nsu.contains("0xD08: OFLD.BEG"), "{nsu}");
        assert!(nsu.contains("read data buffer"), "{nsu}");
    }
}
