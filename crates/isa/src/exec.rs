//! Functional warp executor.
//!
//! Executes a [`Program`] for one warp, computing real per-lane register
//! values. The *timing* simulators (GPU SM and NSU) drive this executor:
//! they `current()` the next instruction, apply scoreboard/latency rules,
//! then `step()` to commit its functional effect. Memory contents are
//! synthesized with [`ndp_common::rng::mem_value`], identical on the GPU and
//! NSU sides, so partitioned execution is functionally transparent.

use crate::instr::{AluOp, Instr, MemSpace, Operand, Reg};
use crate::program::{Item, Program};
use crate::{LaneValues, WARP_WIDTH};
use ndp_common::rng::mem_value;

/// The next dynamic instruction a warp will execute.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    Alu {
        /// Index into `program.items`.
        idx: usize,
        op: AluOp,
        dst: Reg,
    },
    Load {
        idx: usize,
        dst: Reg,
        space: MemSpace,
        addrs: LaneValues,
        active: u32,
    },
    Store {
        idx: usize,
        space: MemSpace,
        addrs: LaneValues,
        active: u32,
    },
    Barrier {
        idx: usize,
    },
    Done,
}

impl Step {
    pub fn idx(&self) -> Option<usize> {
        match self {
            Step::Alu { idx, .. }
            | Step::Load { idx, .. }
            | Step::Store { idx, .. }
            | Step::Barrier { idx } => Some(*idx),
            Step::Done => None,
        }
    }
}

/// Lightweight decode of the next dynamic instruction: like [`Step`] but
/// memory steps carry the address *register* instead of a copied lane-value
/// vector. The timing simulators probe warps many times per issued
/// instruction (scoreboard stalls, structural hazards), and copying 256 B
/// of addresses per probe dominated the issue path; callers that actually
/// need the addresses read them through [`WarpExec::reg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepLite {
    Alu {
        /// Index into `program.items`.
        idx: usize,
        op: AluOp,
        dst: Reg,
    },
    Load {
        idx: usize,
        dst: Reg,
        space: MemSpace,
        addr: Reg,
    },
    Store {
        idx: usize,
        space: MemSpace,
        addr: Reg,
    },
    Barrier {
        idx: usize,
    },
    Done,
}

impl StepLite {
    pub fn idx(&self) -> Option<usize> {
        match self {
            StepLite::Alu { idx, .. }
            | StepLite::Load { idx, .. }
            | StepLite::Store { idx, .. }
            | StepLite::Barrier { idx } => Some(*idx),
            StepLite::Done => None,
        }
    }
}

#[derive(Debug, Clone)]
struct LoopFrame {
    body_pc: usize,
    remaining: u32,
    iter: u32,
}

/// Functional state of one warp.
#[derive(Debug, Clone)]
pub struct WarpExec {
    pc: usize,
    loops: Vec<LoopFrame>,
    regs: Vec<LaneValues>,
    /// Global warp index (drives `%tid`, `%warp`, per-warp trip counts).
    pub warp_global: u32,
    /// Active-lane mask.
    pub active: u32,
    seed: u64,
    /// `items[i]` for LoopBegin → index of matching LoopEnd.
    match_end: Vec<usize>,
    done: bool,
    /// Dynamic instruction count executed so far.
    pub executed: u64,
}

impl WarpExec {
    pub fn new(program: &Program, warp_global: u32, active: u32, seed: u64) -> Self {
        let mut match_end = vec![usize::MAX; program.items.len()];
        let mut stack = vec![];
        for (i, item) in program.items.iter().enumerate() {
            match item {
                Item::LoopBegin(_) => stack.push(i),
                Item::LoopEnd => {
                    let b = stack.pop().expect("validated program");
                    match_end[b] = i;
                }
                _ => {}
            }
        }
        assert!(stack.is_empty(), "unbalanced loops — validate() first");
        WarpExec {
            pc: 0,
            loops: vec![],
            regs: vec![[0; WARP_WIDTH]; 64],
            warp_global,
            active,
            seed,
            match_end,
            done: false,
            executed: 0,
        }
    }

    pub fn is_done(&self) -> bool {
        self.done
    }

    pub fn reg(&self, r: Reg) -> &LaneValues {
        &self.regs[r.0 as usize]
    }

    pub fn set_reg(&mut self, r: Reg, v: LaneValues) {
        self.regs[r.0 as usize] = v;
    }

    /// Index (into `items`) of the next instruction, if any.
    pub fn pc(&self) -> usize {
        self.pc
    }

    fn operand(&self, o: Operand, lane: usize) -> u64 {
        match o {
            Operand::Reg(r) => self.regs[r.0 as usize][lane],
            Operand::Imm(v) => v,
            Operand::Tid => self.warp_global as u64 * WARP_WIDTH as u64 + lane as u64,
            Operand::Lane => lane as u64,
            Operand::WarpId => self.warp_global as u64,
            Operand::Iter(d) => {
                // Iter(0) = innermost active loop.
                let n = self.loops.len();
                let depth = d as usize;
                if depth < n {
                    self.loops[n - 1 - depth].iter as u64
                } else {
                    0
                }
            }
        }
    }

    /// Skip loop markers, resolving trip counts, until pc rests on an
    /// executable item (Op/Bar) or the program end.
    fn settle(&mut self, program: &Program) {
        loop {
            if self.pc >= program.items.len() {
                self.done = true;
                return;
            }
            match &program.items[self.pc] {
                Item::LoopBegin(t) => {
                    let trips = t.resolve(self.warp_global, self.seed);
                    if trips == 0 {
                        self.pc = self.match_end[self.pc] + 1;
                    } else {
                        self.loops.push(LoopFrame {
                            body_pc: self.pc + 1,
                            remaining: trips,
                            iter: 0,
                        });
                        self.pc += 1;
                    }
                }
                Item::LoopEnd => {
                    let f = self.loops.last_mut().expect("loop stack underflow");
                    f.remaining -= 1;
                    f.iter += 1;
                    if f.remaining == 0 {
                        self.loops.pop();
                        self.pc += 1;
                    } else {
                        self.pc = f.body_pc;
                    }
                }
                Item::Op(_) | Item::Bar => return,
            }
        }
    }

    /// The next dynamic instruction (without executing it).
    pub fn current(&mut self, program: &Program) -> Step {
        self.settle(program);
        if self.done {
            return Step::Done;
        }
        let idx = self.pc;
        match &program.items[idx] {
            Item::Bar => Step::Barrier { idx },
            Item::Op(instr) => match instr {
                Instr::Alu { op, dst, .. } => Step::Alu {
                    idx,
                    op: *op,
                    dst: *dst,
                },
                Instr::Ld { dst, space, addr } => Step::Load {
                    idx,
                    dst: *dst,
                    space: *space,
                    addrs: *self.reg(*addr),
                    active: self.active,
                },
                Instr::St { space, addr, .. } => Step::Store {
                    idx,
                    space: *space,
                    addrs: *self.reg(*addr),
                    active: self.active,
                },
            },
            _ => unreachable!("settle() leaves pc on Op/Bar"),
        }
    }

    /// The next dynamic instruction, decoded without copying lane values —
    /// the hot-path companion of [`WarpExec::current`].
    pub fn current_lite(&mut self, program: &Program) -> StepLite {
        self.settle(program);
        if self.done {
            return StepLite::Done;
        }
        let idx = self.pc;
        match &program.items[idx] {
            Item::Bar => StepLite::Barrier { idx },
            Item::Op(instr) => match instr {
                Instr::Alu { op, dst, .. } => StepLite::Alu {
                    idx,
                    op: *op,
                    dst: *dst,
                },
                Instr::Ld { dst, space, addr } => StepLite::Load {
                    idx,
                    dst: *dst,
                    space: *space,
                    addr: *addr,
                },
                Instr::St { space, addr, .. } => StepLite::Store {
                    idx,
                    space: *space,
                    addr: *addr,
                },
            },
            _ => unreachable!("settle() leaves pc on Op/Bar"),
        }
    }

    /// Execute the current instruction functionally and advance, without
    /// rebuilding the [`Step`] — the hot-path variant of [`WarpExec::step`]
    /// for callers that already hold the decoded step from `current()`.
    pub fn advance(&mut self, program: &Program) {
        self.settle(program);
        if self.done {
            return;
        }
        if let Item::Op(instr) = &program.items[self.pc] {
            self.execute(instr.clone());
        }
        self.executed += 1;
        self.pc += 1;
    }

    /// Execute the current instruction functionally and advance.
    pub fn step(&mut self, program: &Program) -> Step {
        let step = self.current(program);
        if let Step::Done = step {
            return step;
        }
        let idx = self.pc;
        if let Item::Op(instr) = &program.items[idx] {
            self.execute(instr.clone());
        }
        self.executed += 1;
        self.pc += 1;
        step
    }

    /// Checkpoint all dynamic state. `match_end` is static (derived from the
    /// program in [`WarpExec::new`]) and is not serialized.
    pub fn snap(&self, w: &mut ndp_common::snap::SnapWriter) {
        w.usize(self.pc);
        w.len(self.loops.len());
        for f in &self.loops {
            w.usize(f.body_pc);
            w.u32(f.remaining);
            w.u32(f.iter);
        }
        w.len(self.regs.len());
        for r in &self.regs {
            for lane in r {
                w.u64(*lane);
            }
        }
        w.u32(self.warp_global);
        w.u32(self.active);
        w.u64(self.seed);
        w.bool(self.done);
        w.u64(self.executed);
    }

    /// Overwrite dynamic state from a checkpoint stream. `self` must have
    /// been built with [`WarpExec::new`] against the same program (that
    /// supplies `match_end`).
    pub fn restore(
        &mut self,
        r: &mut ndp_common::snap::SnapReader<'_>,
    ) -> Result<(), ndp_common::snap::SnapError> {
        self.pc = r.usize()?;
        self.loops.clear();
        for _ in 0..r.len()? {
            self.loops.push(LoopFrame {
                body_pc: r.usize()?,
                remaining: r.u32()?,
                iter: r.u32()?,
            });
        }
        let nregs = r.len()?;
        if nregs != self.regs.len() {
            return Err(ndp_common::snap::SnapError(format!(
                "warp has {} registers, checkpoint has {nregs}",
                self.regs.len()
            )));
        }
        for reg in &mut self.regs {
            for lane in reg.iter_mut() {
                *lane = r.u64()?;
            }
        }
        self.warp_global = r.u32()?;
        self.active = r.u32()?;
        self.seed = r.u64()?;
        self.done = r.bool()?;
        self.executed = r.u64()?;
        Ok(())
    }

    fn execute(&mut self, instr: Instr) {
        match instr {
            Instr::Alu { op, dst, a, b, c } => {
                let mut out = [0u64; WARP_WIDTH];
                for (lane, o) in out.iter_mut().enumerate() {
                    let av = self.operand(a, lane);
                    let bv = self.operand(b, lane);
                    let cv = c.map(|c| self.operand(c, lane)).unwrap_or(0);
                    *o = alu_eval(op, av, bv, cv);
                }
                self.regs[dst.0 as usize] = out;
            }
            Instr::Ld { dst, addr, .. } => {
                let addrs = self.regs[addr.0 as usize];
                let mut out = self.regs[dst.0 as usize];
                for (lane, o) in out.iter_mut().enumerate() {
                    if self.active & (1 << lane) != 0 {
                        *o = mem_value(self.seed, addrs[lane]);
                    }
                }
                self.regs[dst.0 as usize] = out;
            }
            Instr::St { .. } => {
                // Stores are timing-only (see DESIGN.md — workloads never
                // read back their own in-kernel writes through addresses).
            }
        }
    }
}

#[inline]
fn f32v(x: u64) -> f32 {
    f32::from_bits(x as u32)
}

#[inline]
fn f32b(x: f32) -> u64 {
    x.to_bits() as u64
}

/// Evaluate an ALU op on one lane.
pub fn alu_eval(op: AluOp, a: u64, b: u64, c: u64) -> u64 {
    match op {
        AluOp::IAdd => a.wrapping_add(b),
        AluOp::ISub => a.wrapping_sub(b),
        AluOp::IMul => a.wrapping_mul(b),
        AluOp::IMad => a.wrapping_mul(b).wrapping_add(c),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b as u32 & 63),
        AluOp::Shr => a.wrapping_shr(b as u32 & 63),
        AluOp::Mov => a,
        AluOp::IMin => a.min(b),
        AluOp::SetLt => u64::from(a < b),
        AluOp::Sel => {
            if c != 0 {
                a
            } else {
                b
            }
        }
        AluOp::FAdd => f32b(f32v(a) + f32v(b)),
        AluOp::FSub => f32b(f32v(a) - f32v(b)),
        AluOp::FMul => f32b(f32v(a) * f32v(b)),
        AluOp::FMad => f32b(f32v(a).mul_add(f32v(b), f32v(c))),
        AluOp::FMin => f32b(f32v(a).min(f32v(b))),
        AluOp::FMax => f32b(f32v(a).max(f32v(b))),
        AluOp::FDiv => f32b(f32v(a) / f32v(b)),
        AluOp::FSqrt => f32b(f32v(a).abs().sqrt()),
        AluOp::FRcp => f32b(1.0 / f32v(a)),
        AluOp::FExp => f32b(f32v(a).exp()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr as I;
    use crate::program::TripCount;

    const ALL: u32 = u32::MAX;

    fn run_to_end(p: &Program, warp: u32) -> WarpExec {
        let mut w = WarpExec::new(p, warp, ALL, 42);
        let mut guard = 0;
        loop {
            match w.step(p) {
                Step::Done => break,
                _ => {
                    guard += 1;
                    assert!(guard < 1_000_000, "runaway program");
                }
            }
        }
        w
    }

    #[test]
    fn tid_and_lane_semantics() {
        let mut p = Program::new("t", 2);
        p.items = vec![
            Item::Op(I::mov(Reg(0), Operand::Tid)),
            Item::Op(I::mov(Reg(1), Operand::Lane)),
        ];
        let w = run_to_end(&p, 3);
        assert_eq!(w.reg(Reg(0))[0], 96);
        assert_eq!(w.reg(Reg(0))[31], 127);
        assert_eq!(w.reg(Reg(1))[5], 5);
    }

    #[test]
    fn loop_executes_trip_count_times() {
        let mut p = Program::new("t", 1);
        p.items = vec![
            Item::Op(I::mov(Reg(0), Operand::Imm(0))),
            Item::LoopBegin(TripCount::Const(7)),
            Item::Op(I::alu(
                AluOp::IAdd,
                Reg(0),
                Operand::Reg(Reg(0)),
                Operand::Imm(1),
            )),
            Item::LoopEnd,
        ];
        let w = run_to_end(&p, 0);
        assert_eq!(w.reg(Reg(0))[0], 7);
        assert_eq!(w.executed, 8);
    }

    #[test]
    fn nested_loops_and_iter_operand() {
        // sum += inner_iter for 3 outer × 4 inner; iter(0) = innermost.
        let mut p = Program::new("t", 1);
        p.items = vec![
            Item::Op(I::mov(Reg(0), Operand::Imm(0))),
            Item::LoopBegin(TripCount::Const(3)),
            Item::LoopBegin(TripCount::Const(4)),
            Item::Op(I::alu(
                AluOp::IAdd,
                Reg(0),
                Operand::Reg(Reg(0)),
                Operand::Iter(0),
            )),
            Item::LoopEnd,
            Item::LoopEnd,
        ];
        let w = run_to_end(&p, 0);
        // inner iters 0+1+2+3 = 6, × 3 outer = 18.
        assert_eq!(w.reg(Reg(0))[0], 18);
    }

    #[test]
    fn zero_trip_loop_skipped() {
        let mut p = Program::new("t", 1);
        p.items = vec![
            Item::Op(I::mov(Reg(0), Operand::Imm(5))),
            Item::LoopBegin(TripCount::Const(0)),
            Item::Op(I::mov(Reg(0), Operand::Imm(9))),
            Item::LoopEnd,
        ];
        let w = run_to_end(&p, 0);
        assert_eq!(w.reg(Reg(0))[0], 5);
    }

    #[test]
    fn load_values_are_deterministic_memory_contents() {
        let mut p = Program::new("t", 1);
        p.items = vec![
            // addr = tid*4 + 0x1000
            Item::Op(I::alu3(
                AluOp::IMad,
                Reg(1),
                Operand::Tid,
                Operand::Imm(4),
                Operand::Imm(0x1000),
            )),
            Item::Op(I::ld(Reg(2), Reg(1))),
        ];
        let w = run_to_end(&p, 0);
        for lane in 0..4 {
            let addr = 0x1000 + 4 * lane as u64;
            assert_eq!(w.reg(Reg(2))[lane], mem_value(42, addr));
        }
    }

    #[test]
    fn inactive_lanes_do_not_load() {
        let mut p = Program::new("t", 1);
        p.items = vec![
            Item::Op(I::mov(Reg(1), Operand::Imm(0x2000))),
            Item::Op(I::ld(Reg(2), Reg(1))),
        ];
        let mut w = WarpExec::new(&p, 0, 0b1, 42);
        while !matches!(w.step(&p), Step::Done) {}
        assert_eq!(w.reg(Reg(2))[0], mem_value(42, 0x2000));
        assert_eq!(w.reg(Reg(2))[1], 0, "inactive lane untouched");
    }

    #[test]
    fn float_ops_roundtrip() {
        assert_eq!(f32v(alu_eval(AluOp::FAdd, f32b(1.5), f32b(2.25), 0)), 3.75);
        assert_eq!(
            f32v(alu_eval(AluOp::FMad, f32b(2.0), f32b(3.0), f32b(1.0))),
            7.0
        );
        assert_eq!(f32v(alu_eval(AluOp::FDiv, f32b(1.0), f32b(4.0), 0)), 0.25);
    }

    #[test]
    fn select_and_compare() {
        assert_eq!(alu_eval(AluOp::SetLt, 3, 5, 0), 1);
        assert_eq!(alu_eval(AluOp::SetLt, 5, 3, 0), 0);
        assert_eq!(alu_eval(AluOp::Sel, 10, 20, 1), 10);
        assert_eq!(alu_eval(AluOp::Sel, 10, 20, 0), 20);
    }

    #[test]
    fn current_is_idempotent_step_advances() {
        let mut p = Program::new("t", 1);
        p.items = vec![Item::Op(I::mov(Reg(0), Operand::Imm(1)))];
        let mut w = WarpExec::new(&p, 0, ALL, 1);
        let c1 = w.current(&p);
        let c2 = w.current(&p);
        assert_eq!(c1, c2);
        let s = w.step(&p);
        assert_eq!(s, c1);
        assert!(matches!(w.step(&p), Step::Done));
        assert!(w.is_done());
    }

    #[test]
    fn current_lite_mirrors_current() {
        let mut p = Program::new("t", 1);
        p.items = vec![
            Item::Op(I::alu3(
                AluOp::IMad,
                Reg(1),
                Operand::Tid,
                Operand::Imm(4),
                Operand::Imm(0x1000),
            )),
            Item::Op(I::ld(Reg(2), Reg(1))),
            Item::Bar,
            Item::Op(I::st(Reg(2), Reg(1))),
        ];
        let mut w = WarpExec::new(&p, 0, ALL, 42);
        loop {
            let lite = w.current_lite(&p);
            let full = w.current(&p);
            assert_eq!(lite.idx(), full.idx());
            match (lite, &full) {
                (StepLite::Done, Step::Done) => break,
                (StepLite::Barrier { .. }, Step::Barrier { .. }) => {}
                (
                    StepLite::Alu { op, dst, .. },
                    Step::Alu {
                        op: o2, dst: d2, ..
                    },
                ) => {
                    assert_eq!((op, dst), (*o2, *d2));
                }
                (
                    StepLite::Load {
                        dst, space, addr, ..
                    },
                    Step::Load {
                        dst: d2,
                        space: s2,
                        addrs,
                        active,
                        ..
                    },
                ) => {
                    assert_eq!((dst, space), (*d2, *s2));
                    assert_eq!(
                        w.reg(addr),
                        addrs,
                        "addr register resolves to the copied lanes"
                    );
                    assert_eq!(*active, w.active);
                }
                (
                    StepLite::Store { space, addr, .. },
                    Step::Store {
                        space: s2, addrs, ..
                    },
                ) => {
                    assert_eq!(space, *s2);
                    assert_eq!(w.reg(addr), addrs);
                }
                (l, f) => panic!("decode mismatch: {l:?} vs {f:?}"),
            }
            w.advance(&p);
        }
        assert!(w.is_done());
    }

    #[test]
    fn integer_ops_wrap_and_mask() {
        assert_eq!(alu_eval(AluOp::IAdd, u64::MAX, 1, 0), 0);
        assert_eq!(alu_eval(AluOp::ISub, 0, 1, 0), u64::MAX);
        assert_eq!(alu_eval(AluOp::IMul, 1 << 63, 2, 0), 0);
        assert_eq!(alu_eval(AluOp::Shl, 1, 65, 0), 2, "shift amount masked");
        assert_eq!(alu_eval(AluOp::Shr, 8, 2, 0), 2);
        assert_eq!(alu_eval(AluOp::And, 0b1100, 0b1010, 0), 0b1000);
        assert_eq!(alu_eval(AluOp::Or, 0b1100, 0b1010, 0), 0b1110);
        assert_eq!(alu_eval(AluOp::Xor, 0b1100, 0b1010, 0), 0b0110);
        assert_eq!(alu_eval(AluOp::IMin, 7, 3, 0), 3);
        assert_eq!(alu_eval(AluOp::IMad, 3, 4, 5,), 17);
    }

    #[test]
    fn sfu_ops_compute() {
        assert_eq!(f32v(alu_eval(AluOp::FSqrt, f32b(9.0), 0, 0)), 3.0);
        assert_eq!(f32v(alu_eval(AluOp::FRcp, f32b(4.0), 0, 0)), 0.25);
        let e = f32v(alu_eval(AluOp::FExp, f32b(1.0), 0, 0));
        assert!((e - std::f32::consts::E).abs() < 1e-6);
        assert_eq!(f32v(alu_eval(AluOp::FMin, f32b(1.0), f32b(2.0), 0)), 1.0);
        assert_eq!(f32v(alu_eval(AluOp::FMax, f32b(1.0), f32b(2.0), 0)), 2.0);
    }

    #[test]
    fn executed_counter_tracks_dynamic_instructions() {
        let mut p = Program::new("t", 1);
        p.items = vec![
            Item::Op(I::mov(Reg(0), Operand::Imm(0))),
            Item::LoopBegin(TripCount::Const(5)),
            Item::Op(I::alu(
                AluOp::IAdd,
                Reg(0),
                Operand::Reg(Reg(0)),
                Operand::Imm(1),
            )),
            Item::LoopEnd,
        ];
        let w = run_to_end(&p, 0);
        assert_eq!(w.executed, 6);
    }

    #[test]
    fn per_warp_trips_diverge_across_warps() {
        let mut p = Program::new("t", 4);
        p.items = vec![
            Item::Op(I::mov(Reg(0), Operand::Imm(0))),
            Item::LoopBegin(TripCount::PerWarp {
                base: 1,
                spread: 64,
            }),
            Item::Op(I::alu(
                AluOp::IAdd,
                Reg(0),
                Operand::Reg(Reg(0)),
                Operand::Imm(1),
            )),
            Item::LoopEnd,
        ];
        let a = run_to_end(&p, 0).reg(Reg(0))[0];
        let b = run_to_end(&p, 1).reg(Reg(0))[0];
        let c = run_to_end(&p, 2).reg(Reg(0))[0];
        assert!(a != b || b != c, "trip counts suspiciously uniform");
    }
}
