//! Offload-block descriptors and the NSU-side instruction stream.
//!
//! An offload block (§3) is a contiguous instruction range within one basic
//! block. The compiler classifies every instruction in the range into the
//! partitioned-execution roles of §4.1: address-calculation ALU ops stay on
//! the GPU, other ALU ops are marked `@NSU` (NOP on the GPU), loads/stores
//! generate RDF/WTA packets on the GPU and consume NDP buffers on the NSU.

use crate::instr::{AluOp, Instr, Reg};

/// Role of an instruction inside an offload block under partitioned
/// execution (§4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrRole {
    /// ALU op in the backward slice of a memory address: executed on the
    /// GPU, removed from the NSU code.
    AddrCalc,
    /// ALU op on memory data: `@NSU` — skipped on the GPU, executed on the
    /// NSU.
    AtNsu,
    /// Load: GPU generates RDF packets; NSU pops the read data buffer.
    Load,
    /// Store: GPU generates WTA packets; NSU generates the DRAM writes.
    Store,
}

/// One instruction of the NSU code generated for an offload block
/// (Fig. 3(b)). The NSU ISA is the paper's "standardized" target: loads and
/// stores carry no address — data and addresses come from the NDP buffers.
#[derive(Debug, Clone, PartialEq)]
pub enum NsuInstr {
    /// `OFLD.BEG`: initialize `regs_in` registers from the command packet.
    Begin { regs_in: u8 },
    /// Load from the read data buffer into `dst`.
    Ld { dst: Reg },
    /// Write `src` to memory using the next write-address buffer entry.
    St { src: Reg },
    /// Translated ALU instruction.
    Alu(Instr),
    /// `OFLD.END`: send `regs_out` registers back in the ACK packet.
    End { regs_out: u8 },
}

/// A compiled offload block.
#[derive(Debug, Clone)]
pub struct OffloadBlock {
    /// Block index within the kernel (also its identifier in stats).
    pub id: usize,
    /// Half-open item-index range `[start, end)` into `Program::items`.
    pub start: usize,
    pub end: usize,
    /// Role of each instruction in the range (`roles[idx - start]`).
    pub roles: Vec<InstrRole>,
    /// Registers transferred GPU→NSU in the command packet (live-ins used by
    /// `@NSU` instructions, excluding values the NSU produces itself).
    pub live_in: Vec<Reg>,
    /// Registers transferred NSU→GPU in the ACK packet (defs live after the
    /// block that the GPU did not compute).
    pub live_out: Vec<Reg>,
    /// Generated NSU code (Begin + body + End).
    pub nsu_code: Vec<NsuInstr>,
    /// Start PC of the NSU code in the (physically contiguous, §4.1.1) NSU
    /// code region.
    pub nsu_pc: u64,
    /// Static score from Eq. 1 (bytes saved − register-transfer overhead).
    pub score: i64,
    /// True for single-indirect-load blocks added by the §4.4 rule.
    pub indirect: bool,
}

impl OffloadBlock {
    /// Role of the instruction at item index `idx`, if inside this block.
    pub fn role_of(&self, idx: usize) -> Option<InstrRole> {
        if idx >= self.start && idx < self.end {
            Some(self.roles[idx - self.start])
        } else {
            None
        }
    }

    pub fn contains(&self, idx: usize) -> bool {
        idx >= self.start && idx < self.end
    }

    pub fn n_loads(&self) -> usize {
        self.roles.iter().filter(|r| **r == InstrRole::Load).count()
    }

    pub fn n_stores(&self) -> usize {
        self.roles
            .iter()
            .filter(|r| **r == InstrRole::Store)
            .count()
    }

    /// Instruction count of the translated NSU code, excluding the
    /// `OFLD.BEG`/`OFLD.END` markers — the quantity reported per workload in
    /// Table 1.
    pub fn nsu_len(&self) -> usize {
        self.nsu_code
            .iter()
            .filter(|i| !matches!(i, NsuInstr::Begin { .. } | NsuInstr::End { .. }))
            .count()
    }

    /// Bytes of NSU code, assuming 8 B per instruction (for the Fig. 11
    /// I-cache utilization statistic).
    pub fn nsu_code_bytes(&self) -> usize {
        self.nsu_code.len() * 8
    }
}

/// Estimated ALU issue latency class on the NSU (mirrors the GPU classes).
pub fn nsu_alu_latency(op: AluOp, base: u32, sfu: u32) -> u32 {
    if op.is_sfu() {
        sfu
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Operand};

    fn block() -> OffloadBlock {
        OffloadBlock {
            id: 0,
            start: 10,
            end: 14,
            roles: vec![
                InstrRole::Load,
                InstrRole::AtNsu,
                InstrRole::AddrCalc,
                InstrRole::Store,
            ],
            live_in: vec![Reg(0)],
            live_out: vec![Reg(2)],
            nsu_code: vec![
                NsuInstr::Begin { regs_in: 1 },
                NsuInstr::Ld { dst: Reg(1) },
                NsuInstr::Alu(Instr::alu(
                    AluOp::FMul,
                    Reg(2),
                    Operand::Reg(Reg(0)),
                    Operand::Reg(Reg(1)),
                )),
                NsuInstr::St { src: Reg(2) },
                NsuInstr::End { regs_out: 1 },
            ],
            nsu_pc: 0xd08,
            score: 128,
            indirect: false,
        }
    }

    #[test]
    fn role_lookup() {
        let b = block();
        assert_eq!(b.role_of(10), Some(InstrRole::Load));
        assert_eq!(b.role_of(12), Some(InstrRole::AddrCalc));
        assert_eq!(b.role_of(13), Some(InstrRole::Store));
        assert_eq!(b.role_of(14), None);
        assert_eq!(b.role_of(9), None);
        assert!(b.contains(11) && !b.contains(14));
    }

    #[test]
    fn counts_and_nsu_len() {
        let b = block();
        assert_eq!(b.n_loads(), 1);
        assert_eq!(b.n_stores(), 1);
        // LD + MUL + ST = 3, matching the Fig. 3 example.
        assert_eq!(b.nsu_len(), 3);
        assert_eq!(b.nsu_code_bytes(), 5 * 8);
    }
}
