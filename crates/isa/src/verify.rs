//! Static offload-partition verifier (Pass 1 of the verification suite).
//!
//! [`OffloadBlock`] annotations — instruction roles, live-in/live-out
//! transfer sets, the generated NSU code — decide what the partitioned
//! execution protocol (§4.1) puts on the wire. A wrong annotation is not a
//! crash; it is silently wrong data: a stale register resumed on the GPU, a
//! WTA issued for a load, an address computed from a value that only exists
//! on the NSU. This module *independently* recomputes every annotation from
//! the [`Program`] text with its own dataflow analysis and diffs the result
//! against the stored block, so those bug classes surface at build time with
//! a named location instead of at cycle two million.
//!
//! What Pass 1 proves:
//! - every instruction's role matches both its shape (loads are RDF, stores
//!   are WTA) and the backward address-demand slice (§4.1.1);
//! - no GPU-side work (address calculation, address registers of memory
//!   ops) reads a register the NSU writes before the ACK boundary;
//! - the live-in set is exactly what NSU-side work reads from the GPU, and
//!   the live-out set covers every NSU definition consumed outside the
//!   block — after it or around an enclosing loop's backedge;
//! - the NSU code stream is the faithful translation of the roles, with
//!   `OFLD.BEG`/`OFLD.END` transfer counts matching the live sets.
//!
//! What it deliberately leaves to the runtime invariant engine: anything
//! depending on dynamic state — packet ordering, credit balances, token
//! lifecycles, cache-coherence timing.

use std::fmt;

use crate::instr::{Instr, Reg};
use crate::offload::{InstrRole, NsuInstr, OffloadBlock};
use crate::program::{Item, Program, TripCount};

/// One finding, anchored to a block and (when it names one instruction) an
/// item index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionDiag {
    /// `OffloadBlock::id` of the offending block.
    pub block: usize,
    /// The block's item range, for locating it in a disassembly.
    pub start: usize,
    pub end: usize,
    /// Item index of the offending instruction, when the finding is about
    /// one instruction rather than the block as a whole.
    pub item: Option<usize>,
    pub detail: String,
}

impl PartitionDiag {
    /// The location part of the diagnostic ("block 2 (items 4..9) item 6"),
    /// without the detail — for error types that carry the two separately.
    pub fn location(&self) -> String {
        let mut s = format!("block {} (items {}..{})", self.block, self.start, self.end);
        if let Some(i) = self.item {
            s.push_str(&format!(" item {i}"));
        }
        s
    }
}

impl fmt::Display for PartitionDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.location(), self.detail)
    }
}

/// Compact register set, local to the verifier (deliberately not shared
/// with the compiler's analysis — the point is an independent derivation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Bits(u64);

impl Bits {
    fn set(&mut self, r: Reg) {
        self.0 |= 1 << r.0;
    }

    fn clear(&mut self, r: Reg) {
        self.0 &= !(1 << r.0);
    }

    fn has(self, r: Reg) -> bool {
        self.0 & (1 << r.0) != 0
    }

    fn regs(self) -> impl Iterator<Item = Reg> {
        (0..64u8).map(Reg).filter(move |r| self.has(*r))
    }

    fn names(self) -> String {
        let v: Vec<String> = self.regs().map(|r| r.to_string()).collect();
        v.join(", ")
    }
}

/// Verify every block of a kernel against `program`, including cross-block
/// structure (unique ids, disjoint item ranges, disjoint NSU code regions).
pub fn verify_blocks(program: &Program, blocks: &[OffloadBlock]) -> Vec<PartitionDiag> {
    let mut diags = Vec::new();
    for (i, b) in blocks.iter().enumerate() {
        if blocks[..i].iter().any(|o| o.id == b.id) {
            diags.push(diag(b, None, format!("duplicate block id {}", b.id)));
        }
        if let Some(o) = blocks[..i]
            .iter()
            .find(|o| o.start < b.end && b.start < o.end)
        {
            diags.push(diag(
                b,
                None,
                format!(
                    "item range overlaps block {} (items {}..{})",
                    o.id, o.start, o.end
                ),
            ));
        }
        if let Some(o) = blocks[..i].iter().find(|o| {
            (o.nsu_pc < b.nsu_pc + b.nsu_code_bytes() as u64)
                && (b.nsu_pc < o.nsu_pc + o.nsu_code_bytes() as u64)
        }) {
            diags.push(diag(
                b,
                None,
                format!(
                    "NSU code region 0x{:x}..0x{:x} overlaps block {} at 0x{:x}",
                    b.nsu_pc,
                    b.nsu_pc + b.nsu_code_bytes() as u64,
                    o.id,
                    o.nsu_pc
                ),
            ));
        }
        diags.extend(verify_block(program, b));
    }
    diags
}

/// Verify one block. An empty result means every annotation checks out.
pub fn verify_block(program: &Program, block: &OffloadBlock) -> Vec<PartitionDiag> {
    let mut diags = Vec::new();

    // Structural sanity first; the dataflow checks index freely into the
    // range and would panic on a malformed one.
    if block.start >= block.end || block.end > program.items.len() {
        diags.push(diag(
            block,
            None,
            format!(
                "invalid item range (program has {} items)",
                program.items.len()
            ),
        ));
        return diags;
    }
    for idx in block.start..block.end {
        if !matches!(program.items[idx], Item::Op(_)) {
            diags.push(diag(
                block,
                Some(idx),
                "block spans a loop or barrier boundary (§3.1: one basic block only)".into(),
            ));
            return diags;
        }
    }
    if block.roles.len() != block.end - block.start {
        diags.push(diag(
            block,
            None,
            format!(
                "{} roles annotated for {} instructions",
                block.roles.len(),
                block.end - block.start
            ),
        ));
        return diags;
    }
    if block.n_loads() > u8::MAX as usize || block.n_stores() > u8::MAX as usize {
        diags.push(diag(
            block,
            None,
            format!(
                "{} loads / {} stores exceed the u8 CMD-packet fields",
                block.n_loads(),
                block.n_stores()
            ),
        ));
    }

    // Shape legality: the role must be expressible for the instruction —
    // this is where a load misannotated as `Store` (a WTA for an RDF) or a
    // memory op marked as ALU work is caught.
    let mut shape_bad = vec![false; block.end - block.start];
    for idx in block.start..block.end {
        let i = op_at(program, idx);
        let role = block.roles[idx - block.start];
        let legal = match i {
            Instr::Ld { .. } => role == InstrRole::Load,
            Instr::St { .. } => role == InstrRole::Store,
            Instr::Alu { .. } => matches!(role, InstrRole::AddrCalc | InstrRole::AtNsu),
        };
        if !legal {
            shape_bad[idx - block.start] = true;
            diags.push(diag(
                block,
                Some(idx),
                format!(
                    "{} annotated {:?} — misclassified across the RDF/WTA split",
                    shape_name(i),
                    role
                ),
            ));
        }
        if i.is_mem() && !i.is_global_mem() {
            diags.push(diag(
                block,
                Some(idx),
                "shared/const memory access inside an offload block (§3.1)".into(),
            ));
        }
    }

    // Independent role derivation from the address-demand slice, diffed
    // against the annotation (skipping items already flagged for shape).
    let expected = expected_roles(program, block.start, block.end);
    for idx in block.start..block.end {
        let (got, want) = (block.roles[idx - block.start], expected[idx - block.start]);
        if got != want && !shape_bad[idx - block.start] {
            diags.push(diag(
                block,
                Some(idx),
                format!("role annotated {got:?} but the address-demand slice requires {want:?}"),
            ));
        }
    }

    // ACK-boundary safety under the *annotated* roles: GPU-side work (all
    // address generation) must never read a register the NSU writes — that
    // value only reaches the GPU with the ACK, after the block retires.
    let mut nsu_written = Bits::default();
    for idx in block.start..block.end {
        let i = op_at(program, idx);
        match block.roles[idx - block.start] {
            InstrRole::Load | InstrRole::Store => {
                if let Some(a) = i.addr_reg() {
                    if nsu_written.has(a) {
                        diags.push(diag(
                            block,
                            Some(idx),
                            format!(
                                "address register {a} is NSU-written inside the block — \
                                 the GPU cannot generate this address before the ACK"
                            ),
                        ));
                    }
                }
                if matches!(block.roles[idx - block.start], InstrRole::Load) {
                    if let Some(d) = i.dst() {
                        nsu_written.set(d);
                    }
                }
            }
            InstrRole::AddrCalc => {
                for s in i.srcs().into_iter().filter(|s| nsu_written.has(*s)) {
                    diags.push(diag(
                        block,
                        Some(idx),
                        format!(
                            "GPU-side address calculation reads NSU-written {s} \
                             before the ACK boundary"
                        ),
                    ));
                }
            }
            InstrRole::AtNsu => {
                if let Some(d) = i.dst() {
                    nsu_written.set(d);
                }
            }
        }
    }

    // Live-set recomputation from the derived roles.
    let (want_in, nsu_defined) = expected_live_in(program, block.start, block.end, &expected);
    let want_out = expected_live_out(program, block, nsu_defined, want_in);
    let mut got_in = Bits::default();
    for r in &block.live_in {
        got_in.set(*r);
    }
    let mut got_out = Bits::default();
    for r in &block.live_out {
        got_out.set(*r);
    }
    let missing_in = Bits(want_in.0 & !got_in.0);
    if missing_in != Bits::default() {
        diags.push(diag(
            block,
            None,
            format!(
                "live-in is missing {} — the NSU would read stale register state",
                missing_in.names()
            ),
        ));
    }
    let spurious_in = Bits(got_in.0 & !want_in.0);
    if spurious_in != Bits::default() {
        diags.push(diag(
            block,
            None,
            format!(
                "live-in transfers {} which no NSU-side instruction reads",
                spurious_in.names()
            ),
        ));
    }
    let missing_out = Bits(want_out.0 & !got_out.0);
    if missing_out != Bits::default() {
        diags.push(diag(
            block,
            None,
            format!(
                "live-out is missing {} — the GPU would resume with stale values",
                missing_out.names()
            ),
        ));
    }
    let spurious_out = Bits(got_out.0 & !want_out.0);
    if spurious_out != Bits::default() {
        diags.push(diag(
            block,
            None,
            format!(
                "live-out returns {} which nothing outside the block reads \
                 (wasted ACK bytes, Eq. 1 score skew)",
                spurious_out.names()
            ),
        ));
    }

    // NSU code stream: the faithful translation of the annotated roles,
    // with transfer counts matching the annotated live sets.
    diags.extend(verify_nsu_code(program, block));

    if block.indirect && (block.end - block.start != 1 || block.n_loads() != 1) {
        diags.push(diag(
            block,
            None,
            "indirect flag set but the block is not a single load (§4.4)".into(),
        ));
    }

    diags
}

fn diag(block: &OffloadBlock, item: Option<usize>, detail: String) -> PartitionDiag {
    PartitionDiag {
        block: block.id,
        start: block.start,
        end: block.end,
        item,
        detail,
    }
}

fn op_at(program: &Program, idx: usize) -> &Instr {
    match &program.items[idx] {
        Item::Op(i) => i,
        _ => unreachable!("range checked to be ops"),
    }
}

fn shape_name(i: &Instr) -> &'static str {
    match i {
        Instr::Ld { .. } => "load",
        Instr::St { .. } => "store",
        Instr::Alu { .. } => "ALU op",
    }
}

/// Re-derive instruction roles from scratch: a backward pass tracking only
/// the set of registers demanded *as memory addresses*. An ALU result in
/// that set must execute on the GPU (`AddrCalc`); every other ALU op is
/// NSU-side. Value demand never flows into address demand, so one set
/// suffices (the compiler's two-set formulation agrees on roles).
fn expected_roles(program: &Program, start: usize, end: usize) -> Vec<InstrRole> {
    let mut roles = vec![InstrRole::AtNsu; end - start];
    let mut addr_demand = Bits::default();
    for idx in (start..end).rev() {
        let i = op_at(program, idx);
        roles[idx - start] = match i {
            Instr::Ld { dst, addr, .. } => {
                addr_demand.clear(*dst);
                addr_demand.set(*addr);
                InstrRole::Load
            }
            Instr::St { addr, .. } => {
                addr_demand.set(*addr);
                InstrRole::Store
            }
            Instr::Alu { dst, .. } => {
                if addr_demand.has(*dst) {
                    addr_demand.clear(*dst);
                    for s in i.srcs() {
                        addr_demand.set(s);
                    }
                    InstrRole::AddrCalc
                } else {
                    InstrRole::AtNsu
                }
            }
        };
    }
    roles
}

/// Forward pass: registers NSU-side work reads before NSU-side work defines
/// them (= the CMD transfer set), plus the full set of NSU definitions.
fn expected_live_in(
    program: &Program,
    start: usize,
    end: usize,
    roles: &[InstrRole],
) -> (Bits, Bits) {
    let mut live_in = Bits::default();
    let mut defined = Bits::default();
    for idx in start..end {
        let i = op_at(program, idx);
        match roles[idx - start] {
            InstrRole::Load => defined.set(i.dst().expect("load defines")),
            InstrRole::Store => {
                for s in i.value_srcs().into_iter().filter(|s| !defined.has(*s)) {
                    live_in.set(s);
                }
            }
            InstrRole::AtNsu => {
                for s in i.srcs().into_iter().filter(|s| !defined.has(*s)) {
                    live_in.set(s);
                }
                if let Some(d) = i.dst() {
                    defined.set(d);
                }
            }
            InstrRole::AddrCalc => {}
        }
    }
    (live_in, defined)
}

/// NSU definitions that something outside the block may read before a
/// definite redefinition: code after the block, next-trip code before the
/// block for every enclosing loop, and — for NSU-defined live-ins
/// (accumulators) — the block's own next-trip read around the innermost
/// backedge.
fn expected_live_out(
    program: &Program,
    block: &OffloadBlock,
    defined: Bits,
    live_in: Bits,
) -> Bits {
    let loops = enclosing_loops(program, block.start, block.end);
    let mut out = Bits::default();
    'regs: for d in defined.regs() {
        if scan_range(program, block.end, program.items.len(), d) == Scan::Use {
            out.set(d);
            continue;
        }
        for &(b, _) in &loops {
            if scan_range(program, b + 1, block.start, d) == Scan::Use {
                out.set(d);
                continue 'regs;
            }
        }
        // Accumulator pattern: the block both reads d (live-in) and defines
        // it. On the next trip of the innermost enclosing loop the CMD
        // transfer re-reads d from the GPU register file, which only holds
        // the fresh value if the ACK carried it back — unless the GPU
        // itself redefines d somewhere along the backedge path.
        if live_in.has(d) {
            if let Some(&(b, e)) = loops.first() {
                let tail = scan_range(program, block.end, e, d);
                let head = scan_range(program, b + 1, block.start, d);
                if tail != Scan::Killed && head != Scan::Killed {
                    out.set(d);
                }
            }
        }
    }
    out
}

/// Enclosing loops of `[start, end)` as `(begin_idx, end_idx)` pairs,
/// innermost first.
fn enclosing_loops(program: &Program, start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut stack = Vec::new();
    let mut found = Vec::new();
    for (i, item) in program.items.iter().enumerate() {
        match item {
            Item::LoopBegin(_) => stack.push(i),
            Item::LoopEnd => {
                if let Some(b) = stack.pop() {
                    if b < start && i >= end {
                        found.push((b, i));
                    }
                }
            }
            _ => {}
        }
    }
    found // closed innermost-first by construction
}

/// What a linear scan of `items[s..e)` finds for register `d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scan {
    /// A read of `d` reachable before any definite redefinition.
    Use,
    /// A redefinition that definitely executes on this path before any use.
    Killed,
    /// Neither.
    Neither,
}

/// Linear scan with loop awareness: a redefinition inside a loop that may
/// run zero trips (`TripCount` minimum of 0) does not kill `d` for the code
/// after that loop — the conservative reading the runtime semantics demand.
fn scan_range(program: &Program, s: usize, e: usize, d: Reg) -> Scan {
    // Minimum trip counts of loops entered (and not yet exited) in-scan.
    let mut open: Vec<u32> = Vec::new();
    // Depth (in `open`) at which a pending redefinition of `d` sits.
    let mut kill_depth: Option<usize> = None;
    for idx in s..e.min(program.items.len()) {
        match &program.items[idx] {
            Item::LoopBegin(t) => open.push(min_trips(t)),
            Item::LoopEnd => {
                if let Some(min) = open.pop() {
                    if kill_depth == Some(open.len() + 1) {
                        // The loop holding the only redefinition closed: if
                        // it can run zero trips the kill never happened.
                        kill_depth = if min == 0 { None } else { Some(open.len()) };
                    }
                }
            }
            Item::Bar => {}
            Item::Op(i) => {
                if kill_depth.is_none() {
                    if i.srcs().contains(&d) {
                        return Scan::Use;
                    }
                    if i.dst() == Some(d) {
                        kill_depth = Some(open.len());
                    }
                }
            }
        }
    }
    if kill_depth.is_some() {
        Scan::Killed
    } else {
        Scan::Neither
    }
}

fn min_trips(t: &TripCount) -> u32 {
    match *t {
        TripCount::Const(n) => n,
        TripCount::PerWarp { base, .. } => base,
    }
}

/// The NSU code a block's roles translate to, checked instruction by
/// instruction against the stored stream.
fn verify_nsu_code(program: &Program, block: &OffloadBlock) -> Vec<PartitionDiag> {
    let mut diags = Vec::new();
    let mut expected = vec![NsuInstr::Begin {
        regs_in: block.live_in.len() as u8,
    }];
    for idx in block.start..block.end {
        let i = op_at(program, idx);
        match block.roles[idx - block.start] {
            InstrRole::AddrCalc => {}
            InstrRole::Load => {
                if let Some(d) = i.dst() {
                    expected.push(NsuInstr::Ld { dst: d });
                }
            }
            InstrRole::Store => {
                if let Instr::St { val, .. } = i {
                    expected.push(NsuInstr::St { src: *val });
                }
            }
            InstrRole::AtNsu => {
                if matches!(i, Instr::Alu { .. }) {
                    expected.push(NsuInstr::Alu(i.clone()));
                }
            }
        }
    }
    expected.push(NsuInstr::End {
        regs_out: block.live_out.len() as u8,
    });
    if block.nsu_code != expected {
        let at = block
            .nsu_code
            .iter()
            .zip(&expected)
            .position(|(got, want)| got != want)
            .unwrap_or_else(|| block.nsu_code.len().min(expected.len()));
        diags.push(diag(
            block,
            None,
            format!(
                "NSU code diverges from the role translation at slot {at} \
                 (stored {} instrs, roles imply {})",
                block.nsu_code.len(),
                expected.len()
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Operand};

    fn prog(items: Vec<Item>) -> Program {
        let mut p = Program::new("t", 1);
        p.items = items;
        p
    }

    /// Fig. 3(a): LD F1,[R9]; MUL F2,F0,F1; ADD R10,R11,R7; ST [R10],F2 —
    /// with a correct hand-built block.
    fn fig3() -> (Program, OffloadBlock) {
        let p = prog(vec![
            Item::Op(Instr::ld(Reg(1), Reg(9))),
            Item::Op(Instr::alu(
                AluOp::FMul,
                Reg(2),
                Operand::Reg(Reg(0)),
                Operand::Reg(Reg(1)),
            )),
            Item::Op(Instr::alu(
                AluOp::IAdd,
                Reg(10),
                Operand::Reg(Reg(11)),
                Operand::Reg(Reg(7)),
            )),
            Item::Op(Instr::st(Reg(2), Reg(10))),
        ]);
        let mul = match &p.items[1] {
            Item::Op(i) => i.clone(),
            _ => unreachable!(),
        };
        let b = OffloadBlock {
            id: 0,
            start: 0,
            end: 4,
            roles: vec![
                InstrRole::Load,
                InstrRole::AtNsu,
                InstrRole::AddrCalc,
                InstrRole::Store,
            ],
            live_in: vec![Reg(0)],
            live_out: vec![],
            nsu_code: vec![
                NsuInstr::Begin { regs_in: 1 },
                NsuInstr::Ld { dst: Reg(1) },
                NsuInstr::Alu(mul),
                NsuInstr::St { src: Reg(2) },
                NsuInstr::End { regs_out: 0 },
            ],
            nsu_pc: 0xd00,
            score: 100,
            indirect: false,
        };
        (p, b)
    }

    #[test]
    fn correct_block_is_clean() {
        let (p, b) = fig3();
        assert_eq!(verify_block(&p, &b), vec![]);
        assert_eq!(verify_blocks(&p, &[b]), vec![]);
    }

    #[test]
    fn corrupt_live_out_is_caught_by_name() {
        let (p, mut b) = fig3();
        b.live_out.push(Reg(2)); // nothing outside reads R2
        let diags = verify_block(&p, &b);
        assert!(
            diags
                .iter()
                .any(|d| d.detail.contains("live-out") && d.detail.contains("R2") && d.block == 0),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_live_in_is_caught() {
        let (p, mut b) = fig3();
        b.live_in.clear(); // the NSU MUL reads R0 from the GPU
        b.nsu_code[0] = NsuInstr::Begin { regs_in: 0 };
        let diags = verify_block(&p, &b);
        assert!(
            diags
                .iter()
                .any(|d| d.detail.contains("live-in is missing R0")),
            "{diags:?}"
        );
    }

    #[test]
    fn flipped_role_is_caught() {
        let (p, mut b) = fig3();
        b.roles[1] = InstrRole::AddrCalc; // the MUL is data compute
        let diags = verify_block(&p, &b);
        assert!(
            diags.iter().any(|d| d.item == Some(1)
                && d.detail.contains("AddrCalc")
                && d.detail.contains("AtNsu")),
            "{diags:?}"
        );
        // …and the flip also makes GPU-side work read the load result.
        assert!(
            diags.iter().any(|d| d.detail.contains("NSU-written R1")),
            "{diags:?}"
        );
    }

    #[test]
    fn load_as_store_is_rdf_wta_misclassification() {
        let (p, mut b) = fig3();
        b.roles[0] = InstrRole::Store;
        let diags = verify_block(&p, &b);
        assert!(
            diags
                .iter()
                .any(|d| d.item == Some(0) && d.detail.contains("RDF/WTA")),
            "{diags:?}"
        );
    }

    #[test]
    fn accumulator_backedge_requires_live_out() {
        // LoopBegin; LD R1; FADD R0 += R1; LoopEnd — no use after the loop,
        // but the next trip's CMD re-reads R0: it must come back in the ACK.
        let p = prog(vec![
            Item::Op(Instr::mov(Reg(0), Operand::Imm(0))),
            Item::Op(Instr::mov(Reg(9), Operand::Imm(0x40))),
            Item::LoopBegin(TripCount::Const(4)),
            Item::Op(Instr::ld(Reg(1), Reg(9))),
            Item::Op(Instr::alu(
                AluOp::FAdd,
                Reg(0),
                Operand::Reg(Reg(0)),
                Operand::Reg(Reg(1)),
            )),
            Item::LoopEnd,
        ]);
        let fadd = match &p.items[4] {
            Item::Op(i) => i.clone(),
            _ => unreachable!(),
        };
        let b = OffloadBlock {
            id: 0,
            start: 3,
            end: 5,
            roles: vec![InstrRole::Load, InstrRole::AtNsu],
            live_in: vec![Reg(0)],
            live_out: vec![], // wrong: stale accumulator on the GPU
            nsu_code: vec![
                NsuInstr::Begin { regs_in: 1 },
                NsuInstr::Ld { dst: Reg(1) },
                NsuInstr::Alu(fadd),
                NsuInstr::End { regs_out: 0 },
            ],
            nsu_pc: 0xd00,
            score: 1,
            indirect: false,
        };
        let diags = verify_block(&p, &b);
        assert!(
            diags
                .iter()
                .any(|d| d.detail.contains("live-out is missing R0")),
            "{diags:?}"
        );
    }

    #[test]
    fn zero_trip_loop_does_not_kill() {
        // After the block, R2 is redefined only inside a loop that may run
        // zero trips, then read — the original value can still escape.
        let p = prog(vec![
            Item::Op(Instr::mov(Reg(9), Operand::Imm(0x40))),
            Item::Op(Instr::ld(Reg(2), Reg(9))),
            Item::LoopBegin(TripCount::PerWarp { base: 0, spread: 4 }),
            Item::Op(Instr::mov(Reg(2), Operand::Imm(7))),
            Item::LoopEnd,
            Item::Op(Instr::st(Reg(2), Reg(9))),
        ]);
        assert_eq!(scan_range(&p, 2, 6, Reg(2)), Scan::Use);
        // A guaranteed-trip loop does kill.
        let p2 = prog(vec![
            Item::Op(Instr::mov(Reg(9), Operand::Imm(0x40))),
            Item::Op(Instr::ld(Reg(2), Reg(9))),
            Item::LoopBegin(TripCount::Const(4)),
            Item::Op(Instr::mov(Reg(2), Operand::Imm(7))),
            Item::LoopEnd,
            Item::Op(Instr::st(Reg(2), Reg(9))),
        ]);
        assert_eq!(scan_range(&p2, 2, 6, Reg(2)), Scan::Killed);
    }

    #[test]
    fn overlapping_blocks_and_code_regions_reported() {
        let (p, b) = fig3();
        let mut b2 = b.clone();
        b2.id = 1;
        let diags = verify_blocks(&p, &[b, b2]);
        assert!(
            diags.iter().any(|d| d.detail.contains("overlaps block 0")),
            "{diags:?}"
        );
    }

    #[test]
    fn spanning_a_loop_boundary_is_structural() {
        let (mut p, mut b) = fig3();
        p.items.push(Item::LoopBegin(TripCount::Const(2)));
        p.items.push(Item::Op(Instr::mov(Reg(5), Operand::Imm(1))));
        p.items.push(Item::LoopEnd);
        b.end = 6; // now covers the LoopBegin
        let diags = verify_block(&p, &b);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].detail.contains("basic block"), "{diags:?}");
    }

    #[test]
    fn corrupted_nsu_code_detected() {
        let (p, mut b) = fig3();
        b.nsu_code.remove(2); // drop the ALU translation
        let diags = verify_block(&p, &b);
        assert!(
            diags.iter().any(|d| d.detail.contains("NSU code diverges")),
            "{diags:?}"
        );
    }
}
