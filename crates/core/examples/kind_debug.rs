//! Diagnostic: per-packet-kind GPU-link traffic for one workload/config.
use ndp_common::config::SystemConfig;
use ndp_common::packet::Packet;
use ndp_core::System;
use ndp_workloads::{workload, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or("KMN".into());
    let w = workload(&name).expect("workload name");
    let mut cfg: SystemConfig = SystemConfig::naive_ndp();
    cfg.gpu.num_sms = 8;
    let p = w.build(&Scale {
        warps: 128,
        iters: 8,
    });
    let sys = System::new(cfg, &p);
    let r = sys
        .run_with_kind_stats(30_000_000)
        .expect("no protocol violation");
    println!("cycles {} link bytes {}", r.0.cycles, r.0.gpu_link_bytes);
    for (i, n) in Packet::KIND_NAMES.iter().enumerate() {
        if r.1[i] > 0 {
            println!("  {:12} {:>10} B", n, r.1[i]);
        }
    }
}
