//! Experiment drivers: run workload × configuration matrices in parallel
//! and extract each figure's series. The actual printing lives in the
//! `ndp-bench` harness binaries.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use ndp_common::config::SystemConfig;
use ndp_common::error::SimError;
use ndp_compiler::{compile, CompilerConfig};
use ndp_workloads::{Scale, Workload, WORKLOADS};

use crate::checkpoint;
use crate::result::RunResult;
use crate::system::System;

/// Safety cap: no evaluation run should need more cycles than this.
pub const DEFAULT_MAX_CYCLES: u64 = 40_000_000;

/// Run one workload under one configuration. Protocol violations panic
/// here: experiment matrices have no error channel per cell, and a violated
/// invariant means the simulator itself is broken.
pub fn run_workload(w: Workload, cfg: SystemConfig, scale: &Scale, max_cycles: u64) -> RunResult {
    let program = w.build(scale);
    // `NDP_RESUME` continues an interrupted run from its checkpoint
    // instead of starting fresh; fingerprint checks guarantee the file
    // matches this exact (workload, config) cell.
    let sys = match checkpoint::resume_path(w.name(), checkpoint::config_fingerprint(&cfg)) {
        Some(path) => {
            let kernel = Arc::new(compile(&program, &CompilerConfig::default()));
            match System::restore_from_file(cfg.clone(), kernel, &path) {
                Ok(sys) => sys,
                // A kernel-fingerprint mismatch means the snapshot was taken
                // at a different problem scale (same workload and config cell
                // name); that is a stale cell, not corruption — start fresh.
                Err(SimError::BadCheckpoint {
                    check: "kernel", ..
                }) => System::new(cfg, &program),
                Err(e) => panic!("{}: resume from {}: {e}", w.name(), path.display()),
            }
        }
        None => System::new(cfg, &program),
    };
    let mut r = sys
        .run(max_cycles)
        .unwrap_or_else(|e| panic!("{}/{:?}: {e}", w.name(), "experiment"));
    r.workload = w.name().to_string();
    r
}

/// A configuration × workload result matrix.
pub struct Matrix {
    pub configs: Vec<String>,
    pub workloads: Vec<Workload>,
    /// `results[config][workload]`.
    pub results: Vec<Vec<RunResult>>,
}

impl Matrix {
    pub fn config_index(&self, name: &str) -> Option<usize> {
        self.configs.iter().position(|c| c == name)
    }

    /// Speedups of `config` over `baseline`, per workload.
    pub fn speedups(&self, config: &str, baseline: &str) -> Vec<f64> {
        let c = self.config_index(config).expect("unknown config");
        let b = self.config_index(baseline).expect("unknown baseline");
        (0..self.workloads.len())
            .map(|w| self.results[c][w].speedup_over(&self.results[b][w]))
            .collect()
    }
}

/// Run the full matrix, parallelized over (config, workload) pairs with a
/// simple work-stealing pool (std threads only).
pub fn run_matrix(
    configs: &[(&str, SystemConfig)],
    workloads: &[Workload],
    scale: &Scale,
    max_cycles: u64,
) -> Matrix {
    let jobs: Mutex<VecDeque<(usize, usize)>> = Mutex::new(
        (0..configs.len())
            .flat_map(|c| (0..workloads.len()).map(move |w| (c, w)))
            .collect(),
    );
    let results: Vec<Vec<Mutex<Option<RunResult>>>> = (0..configs.len())
        .map(|_| (0..workloads.len()).map(|_| Mutex::new(None)).collect())
        .collect();
    let nthreads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(configs.len() * workloads.len());
    std::thread::scope(|scope| {
        for _ in 0..nthreads {
            scope.spawn(|| loop {
                let job = jobs.lock().expect("pool lock").pop_front();
                let Some((c, w)) = job else { break };
                let r = run_workload(workloads[w], configs[c].1.clone(), scale, max_cycles);
                *results[c][w].lock().expect("slot lock") = Some(r);
            });
        }
    });
    Matrix {
        configs: configs.iter().map(|(n, _)| n.to_string()).collect(),
        workloads: workloads.to_vec(),
        results: results
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|m| m.into_inner().expect("lock").expect("job ran"))
                    .collect()
            })
            .collect(),
    }
}

/// The §6 configurations (Figs. 7 and 8).
pub fn fig7_configs() -> Vec<(&'static str, SystemConfig)> {
    vec![
        ("Baseline", SystemConfig::baseline()),
        ("Baseline_MoreCore", SystemConfig::baseline_more_core()),
        ("NaiveNDP", SystemConfig::naive_ndp()),
    ]
}

/// The §7 configurations (Fig. 9): static ratios, dynamic, dynamic+cache.
pub fn fig9_configs() -> Vec<(&'static str, SystemConfig)> {
    vec![
        ("Baseline", SystemConfig::baseline()),
        ("Baseline_MoreCore", SystemConfig::baseline_more_core()),
        ("NDP(0.2)", SystemConfig::ndp_static(0.2)),
        ("NDP(0.4)", SystemConfig::ndp_static(0.4)),
        ("NDP(0.6)", SystemConfig::ndp_static(0.6)),
        ("NDP(0.8)", SystemConfig::ndp_static(0.8)),
        ("NDP(1.0)", SystemConfig::ndp_static(1.0)),
        ("NDP(Dyn)", SystemConfig::ndp_dynamic()),
        ("NDP(Dyn)_Cache", SystemConfig::ndp_dynamic_cache()),
    ]
}

/// The Fig. 10 energy configurations.
pub fn fig10_configs() -> Vec<(&'static str, SystemConfig)> {
    vec![
        ("Baseline", SystemConfig::baseline()),
        ("Baseline_MoreCore", SystemConfig::baseline_more_core()),
        ("NDP(Dyn)", SystemConfig::ndp_dynamic()),
        ("NDP(Dyn)_Cache", SystemConfig::ndp_dynamic_cache()),
    ]
}

/// All ten workloads (Table 1 order).
pub fn all_workloads() -> Vec<Workload> {
    WORKLOADS.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_matrix_runs_in_parallel() {
        let mut base = SystemConfig::baseline();
        base.gpu.num_sms = 4;
        let mut ndp = SystemConfig::naive_ndp();
        ndp.gpu.num_sms = 4;
        let scale = Scale {
            warps: 32,
            iters: 2,
        };
        let m = run_matrix(
            &[("Baseline", base), ("NaiveNDP", ndp)],
            &[Workload::Vadd, Workload::Sp],
            &scale,
            2_000_000,
        );
        assert_eq!(m.results.len(), 2);
        assert_eq!(m.results[0].len(), 2);
        for row in &m.results {
            for r in row {
                assert!(!r.timed_out, "{} timed out", r.workload);
                assert!(r.cycles > 0);
            }
        }
        let sp = m.speedups("NaiveNDP", "Baseline");
        assert_eq!(sp.len(), 2);
        assert!(sp.iter().all(|s| *s > 0.0));
    }
}
