//! Full-system simulator and offload-decision machinery — the paper's
//! primary contribution assembled from the substrate crates.
//!
//! * [`system::System`] wires 64 SMs + sliced L2 + 8 GPU links + 8 HMC
//!   stacks + the 3-D hypercube memory network + 8 NSUs into one
//!   cycle-stepped simulation.
//! * [`offload::OffloadController`] makes per-instance offload decisions:
//!   never / always / static ratio (§7.1), hill-climbing dynamic ratio
//!   (Algorithm 1, §7.2), and the cache-locality-aware gate (§7.3).
//! * [`experiments`] regenerates every table and figure of the evaluation.
//! * [`fabric_model`] lifts the executable fabric pipeline into a static
//!   graph for ndp-lint's Pass 2 checks; `System` construction runs both
//!   static verification passes and rejects ill-formed machines.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod experiments;
pub mod fabric_model;
pub mod fig5;
pub mod offload;
pub mod result;
pub mod system;
pub mod table;
pub mod trace;

pub use fabric_model::fabric_graph;
pub use offload::OffloadController;
pub use result::RunResult;
pub use system::System;
