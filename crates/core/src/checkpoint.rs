//! Versioned, checksummed full-system checkpoints.
//!
//! This module owns the *container* format; the component state inside it
//! is written by [`crate::System::snapshot`] and read back by
//! [`crate::System::try_restore`] through each component's `snap`/`restore`
//! codec (`ndp_common::snap`).
//!
//! ## File layout
//!
//! ```text
//! magic        u64   "NDPCKPT\0" (little-endian)
//! schema       u32   SCHEMA_VERSION — bumped on any payload layout change
//! config_fp    u64   FNV-1a of the SystemConfig debug rendering
//! kernel_fp    u64   FNV-1a of the compiled kernel (program + blocks)
//! cycle        u64   simulated cycle the snapshot was taken at
//! payload_len  u64   exact byte length of the payload that follows
//! checksum     u64   FNV-1a of the payload bytes
//! payload      [u8]  section-tagged component state (System::snapshot)
//! ```
//!
//! Every rejection path — wrong magic, unknown schema, fingerprint
//! mismatch, truncation, trailing bytes, checksum failure, or a decode
//! error inside the payload — surfaces as a typed
//! [`SimError::BadCheckpoint`] naming the failed check; corrupt input is
//! never a panic and never a silently-wrong resume.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use ndp_common::config::SystemConfig;
use ndp_common::error::SimError;
use ndp_common::ids::Cycle;
use ndp_common::snap::{fnv1a, SnapReader, SnapWriter};
use ndp_compiler::CompiledKernel;

/// File magic, read/written as a little-endian `u64`.
pub const MAGIC: u64 = u64::from_le_bytes(*b"NDPCKPT\0");

/// Payload schema version. Bump whenever any component's `snap` layout
/// changes; old files are then rejected with a `schema` check failure
/// instead of being misdecoded.
pub const SCHEMA_VERSION: u32 = 1;

/// File extension used for per-workload checkpoints when
/// `NDP_CHECKPOINT_PATH` / `NDP_RESUME` name a directory.
pub const EXTENSION: &str = "ndpckpt";

/// Fixed header size in bytes (magic + schema + 5 × u64 fields).
pub const HEADER_BYTES: usize = 8 + 4 + 8 * 5;

/// Parsed checkpoint header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    pub schema: u32,
    pub config_fp: u64,
    pub kernel_fp: u64,
    pub cycle: Cycle,
    pub payload_len: u64,
    pub checksum: u64,
}

/// Shorthand for the typed rejection error.
pub fn bad(check: &'static str, detail: impl Into<String>) -> SimError {
    SimError::BadCheckpoint {
        check,
        detail: detail.into(),
    }
}

/// Fingerprint of a system configuration: FNV-1a over its debug rendering.
/// Guards a resume against a config that would rebuild the machine with
/// different capacities, timings or policies than the snapshot assumed.
pub fn config_fingerprint(cfg: &SystemConfig) -> u64 {
    fnv1a(format!("{cfg:?}").as_bytes())
}

/// Fingerprint of a compiled kernel: FNV-1a over the program text and its
/// offload-block partition. Guards a resume against restoring warp state
/// into a different program.
pub fn kernel_fingerprint(kernel: &CompiledKernel) -> u64 {
    fnv1a(format!("{:?}|{:?}", kernel.program, kernel.blocks).as_bytes())
}

impl Header {
    /// Serialize the header for `payload`.
    pub fn write(&self, w: &mut SnapWriter) {
        w.u64(MAGIC);
        w.u32(self.schema);
        w.u64(self.config_fp);
        w.u64(self.kernel_fp);
        w.u64(self.cycle);
        w.u64(self.payload_len);
        w.u64(self.checksum);
    }

    /// Parse and structurally validate a header (magic and schema). The
    /// fingerprint and checksum checks need the caller's config/kernel and
    /// the payload, so they live in [`open`].
    pub fn read(r: &mut SnapReader<'_>) -> Result<Header, SimError> {
        let magic = r.u64().map_err(|e| bad("magic", e.0))?;
        if magic != MAGIC {
            return Err(bad(
                "magic",
                format!("not a checkpoint file (magic {magic:#018x})"),
            ));
        }
        let schema = r.u32().map_err(|e| bad("schema", e.0))?;
        if schema != SCHEMA_VERSION {
            return Err(bad(
                "schema",
                format!("checkpoint schema v{schema}, this build reads v{SCHEMA_VERSION}"),
            ));
        }
        let header = Header {
            schema,
            config_fp: r.u64().map_err(|e| bad("header", e.0))?,
            kernel_fp: r.u64().map_err(|e| bad("header", e.0))?,
            cycle: r.u64().map_err(|e| bad("header", e.0))?,
            payload_len: r.u64().map_err(|e| bad("header", e.0))?,
            checksum: r.u64().map_err(|e| bad("header", e.0))?,
        };
        Ok(header)
    }
}

/// Validate `bytes` as a checkpoint for exactly this (config, kernel)
/// pair: magic, schema, both fingerprints, payload length, and checksum.
/// Returns the header and the verified payload slice.
pub fn open<'a>(
    bytes: &'a [u8],
    cfg: &SystemConfig,
    kernel: &CompiledKernel,
) -> Result<(Header, &'a [u8]), SimError> {
    let mut r = SnapReader::new(bytes);
    let header = Header::read(&mut r)?;
    let want_cfg = config_fingerprint(cfg);
    if header.config_fp != want_cfg {
        return Err(bad(
            "config",
            format!(
                "checkpoint was taken under config {:#018x}, this run has {want_cfg:#018x}",
                header.config_fp
            ),
        ));
    }
    let want_kernel = kernel_fingerprint(kernel);
    if header.kernel_fp != want_kernel {
        return Err(bad(
            "kernel",
            format!(
                "checkpoint was taken for kernel {:#018x}, this run compiles {want_kernel:#018x}",
                header.kernel_fp
            ),
        ));
    }
    let payload = &bytes[r.position()..];
    if payload.len() as u64 != header.payload_len {
        return Err(bad(
            "length",
            format!(
                "header promises {} payload bytes, file carries {}",
                header.payload_len,
                payload.len()
            ),
        ));
    }
    let sum = fnv1a(payload);
    if sum != header.checksum {
        return Err(bad(
            "checksum",
            format!(
                "payload hashes to {sum:#018x}, header records {:#018x}",
                header.checksum
            ),
        ));
    }
    Ok((header, payload))
}

/// Seal a payload into a complete checkpoint file image.
pub fn seal(
    cfg: &SystemConfig,
    kernel: &CompiledKernel,
    cycle: Cycle,
    payload: Vec<u8>,
) -> Vec<u8> {
    let mut w = SnapWriter::new();
    Header {
        schema: SCHEMA_VERSION,
        config_fp: config_fingerprint(cfg),
        kernel_fp: kernel_fingerprint(kernel),
        cycle,
        payload_len: payload.len() as u64,
        checksum: fnv1a(&payload),
    }
    .write(&mut w);
    let mut out = w.into_bytes();
    out.extend_from_slice(&payload);
    out
}

/// Write `bytes` to `path` atomically: a dotted temp file in the same
/// directory, flushed, then renamed over the target. A reader (or a resume
/// after a kill mid-save) only ever sees the previous complete file or the
/// new complete file, never a torn one.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "checkpoint path has no file name",
        )
    })?;
    let tmp_name = format!(".{}.tmp{}", name.to_string_lossy(), std::process::id());
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };
    fs::write(&tmp, bytes)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Resolve where a run should save (or look for) its checkpoint: a
/// directory gets one file per (workload, config) cell —
/// `<dir>/<workload>-<config_fp>.ndpckpt`, the sweep/`--resume-dir` form,
/// where matrix runs execute each workload under many configurations —
/// while anything else is used verbatim (the single-run form).
pub fn file_for(path: &Path, workload: &str, config_fp: u64) -> PathBuf {
    if path.is_dir() {
        path.join(format!("{workload}-{config_fp:016x}.{EXTENSION}"))
    } else {
        path.to_path_buf()
    }
}

/// Periodic-checkpoint policy, armed by `NDP_CHECKPOINT_EVERY` (cycles)
/// plus `NDP_CHECKPOINT_PATH` (file, or directory for per-workload files).
/// Saves land on the first 256-cycle check boundary at or after each
/// multiple of `every` — the same boundaries the drain/watchdog checks run
/// on, so a per-cycle and an event-driven run checkpoint at identical
/// cycles.
pub struct AutoCheckpoint {
    every: u64,
    path: PathBuf,
    next_at: Cycle,
}

impl AutoCheckpoint {
    /// Read the policy from the environment. `NDP_CHECKPOINT_EVERY` without
    /// a path is a fatal misconfiguration (matching the loud
    /// `parse_or_die` policy); a path without `EVERY` disables periodic
    /// saves.
    pub fn from_env(workload: &str, config_fp: u64, now: Cycle) -> Option<AutoCheckpoint> {
        let every = ndp_common::env::parse_or_die::<u64>("NDP_CHECKPOINT_EVERY").unwrap_or(0);
        if every == 0 {
            return None;
        }
        let Some(path) = ndp_common::env::string("NDP_CHECKPOINT_PATH") else {
            panic!("NDP_CHECKPOINT_EVERY is set but NDP_CHECKPOINT_PATH is not");
        };
        Some(AutoCheckpoint {
            every,
            path: file_for(Path::new(&path), workload, config_fp),
            // Resumed runs pick up the cadence mid-stream instead of
            // re-saving at cycles the interrupted run already covered.
            next_at: (now / every + 1) * every,
        })
    }

    /// If a save is due at `now`, advance the cadence and return the
    /// target path.
    pub fn due(&mut self, now: Cycle) -> Option<&Path> {
        if now < self.next_at {
            return None;
        }
        self.next_at = (now / self.every + 1) * self.every;
        Some(&self.path)
    }
}

/// Resolve `NDP_RESUME` for one (workload, config) cell: `None` when
/// unset, or when it names a directory with no checkpoint for this cell
/// (that run starts fresh — the sweep form resumes whichever cells were
/// interrupted).
pub fn resume_path(workload: &str, config_fp: u64) -> Option<PathBuf> {
    let raw = ndp_common::env::string("NDP_RESUME")?;
    let path = Path::new(&raw);
    if path.is_dir() {
        let f = file_for(path, workload, config_fp);
        f.exists().then_some(f)
    } else {
        Some(path.to_path_buf())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_and_kernel() -> (SystemConfig, CompiledKernel) {
        let p = ndp_workloads::Workload::Vadd.build(&ndp_workloads::Scale { warps: 4, iters: 1 });
        let k = ndp_compiler::compile(&p, &ndp_compiler::CompilerConfig::default());
        (SystemConfig::baseline(), k)
    }

    #[test]
    fn seal_then_open_round_trips() {
        let (cfg, k) = cfg_and_kernel();
        let bytes = seal(&cfg, &k, 512, vec![1, 2, 3, 4]);
        assert_eq!(bytes.len(), HEADER_BYTES + 4);
        let (h, payload) = open(&bytes, &cfg, &k).expect("valid checkpoint");
        assert_eq!(h.cycle, 512);
        assert_eq!(payload, &[1, 2, 3, 4]);
    }

    #[test]
    fn open_rejects_garbage_and_mismatches() {
        let (cfg, k) = cfg_and_kernel();
        let check = |bytes: &[u8], want: &str| {
            match open(bytes, &cfg, &k) {
                Err(SimError::BadCheckpoint { check, .. }) => assert_eq!(check, want),
                other => panic!("expected BadCheckpoint[{want}], got {other:?}"),
            };
        };
        check(b"not a checkpoint at all....", "magic");
        check(&[], "magic");

        let good = seal(&cfg, &k, 0, vec![9; 32]);
        let mut v = good.clone();
        v[8] ^= 0xff; // schema field
        check(&v, "schema");
        let mut v = good.clone();
        v[12] ^= 0x01; // config fingerprint
        check(&v, "config");
        let mut v = good.clone();
        v[20] ^= 0x01; // kernel fingerprint
        check(&v, "kernel");
        let mut v = good.clone();
        v.truncate(good.len() - 1); // truncated payload
        check(&v, "length");
        let mut v = good.clone();
        v.push(0); // trailing junk
        check(&v, "length");
        let mut v = good.clone();
        *v.last_mut().unwrap() ^= 0x80; // payload corruption
        check(&v, "checksum");

        // A different config is rejected by fingerprint.
        let mut other = cfg.clone();
        other.gpu.num_sms += 1;
        match open(&good, &other, &k) {
            Err(SimError::BadCheckpoint { check, .. }) => assert_eq!(check, "config"),
            other => panic!("expected BadCheckpoint[config], got {other:?}"),
        }
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("ndpckpt-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("a.ndpckpt");
        write_atomic(&target, b"first").unwrap();
        write_atomic(&target, b"second").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"second");
        // No temp droppings left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn directory_paths_resolve_per_workload() {
        let dir = std::env::temp_dir().join(format!("ndpckpt-dir-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(
            file_for(&dir, "VADD", 0xabcd),
            dir.join("VADD-000000000000abcd.ndpckpt"),
            "directory form is per-(workload, config) cell"
        );
        let file = dir.join("single.ndpckpt");
        assert_eq!(
            file_for(&file, "VADD", 0xabcd),
            file,
            "file form is verbatim"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
