//! Plain-text table rendering for the figure/table harness binaries.

/// Render a table with a header row; columns are right-aligned except the
/// first.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i == 0 {
                line.push_str(&format!("{:<w$}", c, w = widths[i]));
            } else {
                line.push_str(&format!("  {:>w$}", c, w = widths[i]));
            }
        }
        line.push('\n');
        line
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Format a ratio as `1.234`.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = render(
            &["wl", "speedup"],
            &[vec!["VADD".into(), f3(1.25)], vec!["KMN".into(), f3(1.668)]],
        );
        assert!(t.contains("VADD"));
        assert!(t.contains("1.668"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        render(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.179), "17.9%");
    }
}
